//! Query compilation: parsed AST → MD-join algebra plan.
//!
//! The compilation scheme is the paper's: the group clause defines a
//! base-values table; every aggregation context — the group itself or a
//! grouping variable — becomes one MD-join over the (WHERE-filtered) source
//! table; conditions that reference earlier aggregates read them as base
//! columns (exactly Example 3.2's θ₂). The resulting chain is handed to the
//! optimizer, which coalesces independent stages into single scans.

use crate::ast::{GroupClause, PExpr, Query, SelectItem, Shape};
use crate::error::{Result, SqlError};
use mdj_agg::{AggInput, AggSpec, Registry};
use mdj_algebra::{BaseShape, Plan};
use mdj_core::basevalues::{cube_match_theta, cuboid_theta};
use mdj_expr::builder::{and_all, col_b, col_r};
use mdj_expr::{BinOp, Expr};
use mdj_storage::{Catalog, Relation, Row, Schema};

/// A compiled query: the (unoptimized) plan, the select-list output columns
/// in order, an optional post-filter (HAVING) over the plan's output, and
/// presentation clauses (ORDER BY / LIMIT).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub plan: Plan,
    pub output_cols: Vec<String>,
    pub having: Option<Expr>,
    pub order_by: Vec<crate::ast::OrderKey>,
    pub limit: Option<usize>,
    /// A faster physical alternative for `ANALYZE BY` cuboid-family queries:
    /// the Theorem 4.1 per-cuboid expansion (hash probes) or, for fully
    /// distributive cubes, the Theorem 4.5 roll-up chain — instead of the
    /// generic plan's wildcard `ALL`-θ MD-join. `query()` takes this path;
    /// `query_unoptimized()` executes the generic plan, so the two can be
    /// cross-checked.
    pub fast_cube: Option<FastCube>,
}

/// The ingredients of the fast cuboid-family path (see [`CompiledQuery::fast_cube`]).
#[derive(Debug, Clone)]
pub struct FastCube {
    /// The (WHERE-filtered) detail source.
    pub source: Plan,
    pub dims: Vec<String>,
    pub aggs: Vec<AggSpec>,
    pub shape: mdj_cube::sets::SetShape,
}

/// Alias for an aggregate in a scope (`avg(X.sale)` → `avg_X_sale`).
fn scoped_alias(func: &str, scope: Option<&str>, column: Option<&str>) -> String {
    let col = column.unwrap_or("star");
    match scope {
        Some(s) => format!("{func}_{s}_{col}"),
        None => format!("{func}_{col}"),
    }
}

fn agg_spec(func: &str, column: Option<&str>, alias: String) -> AggSpec {
    match column {
        Some(c) => AggSpec::on_column(func, c).with_alias(alias),
        None => AggSpec::new(
            if func == "count" { "count(*)" } else { func },
            AggInput::Star,
        )
        .with_alias(alias),
    }
}

/// A `?` placeholder reached compilation without a bound value: the query
/// must go through `SqlEngine::prepare` + `execute_prepared`.
fn unbound_param(i: usize) -> SqlError {
    SqlError::Bind(format!(
        "unbound parameter ?{} — prepare the statement and execute it with values",
        i + 1
    ))
}

fn binop(op: &str) -> Result<BinOp> {
    Ok(match op {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Mod,
        "=" => BinOp::Eq,
        "<>" => BinOp::Ne,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "AND" => BinOp::And,
        "OR" => BinOp::Or,
        other => return Err(SqlError::Compile(format!("unknown operator `{other}`"))),
    })
}

/// How bare / qualified / aggregate references resolve in one context.
struct ResolveCtx<'a> {
    /// Grouping attributes (base columns).
    attrs: &'a [String],
    /// Name of the grouping variable whose condition we are compiling
    /// (its columns are the detail side). `None` outside var conditions.
    current_var: Option<&'a str>,
    /// The source table name (whose columns are detail columns).
    from: &'a str,
    /// Aggregates already computed (scope → available) — referenced via base
    /// columns. Checked so `avg(X.sale)` can't read a later variable.
    available_scopes: &'a [String],
    /// All aggregate aliases demanded so far; resolution may add group-scope
    /// aggregates discovered inside conditions.
    demanded: &'a mut Vec<(Option<String>, AggSpec)>,
}

fn resolve(e: &PExpr, ctx: &mut ResolveCtx<'_>) -> Result<Expr> {
    match e {
        PExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
        PExpr::Param(i) => Err(unbound_param(*i)),
        PExpr::Ident(name) => {
            if ctx.attrs.contains(name) {
                Ok(col_b(name.clone()))
            } else if ctx.current_var.is_some() {
                // Inside a var condition a bare non-attribute name is a
                // detail column of the variable's range.
                Ok(col_r(name.clone()))
            } else {
                Ok(col_r(name.clone()))
            }
        }
        PExpr::Qualified(q, name) => {
            if Some(q.as_str()) == ctx.current_var || q == ctx.from {
                Ok(col_r(name.clone()))
            } else if ctx.attrs.contains(q) {
                Err(SqlError::Compile(format!(
                    "`{q}.{name}`: `{q}` is a grouping attribute, not a relation"
                )))
            } else {
                Err(SqlError::Compile(format!(
                    "`{q}.{name}`: grouping variable `{q}` columns are only \
                     readable inside its own condition or via aggregates"
                )))
            }
        }
        PExpr::AggCall {
            func,
            scope,
            column,
        } => {
            // An aggregate in expression position reads a base column
            // produced by an earlier MD-join.
            if let Some(s) = scope {
                let ok = ctx.available_scopes.iter().any(|a| a == s);
                if !ok {
                    return Err(SqlError::Compile(format!(
                        "aggregate over grouping variable `{s}` referenced \
                         before `{s}` is computed"
                    )));
                }
            }
            let alias = scoped_alias(func, scope.as_deref(), column.as_deref());
            let key = (
                scope.clone(),
                agg_spec(func, column.as_deref(), alias.clone()),
            );
            if !ctx
                .demanded
                .iter()
                .any(|(sc, sp)| sc == &key.0 && sp.output_name() == key.1.output_name())
            {
                ctx.demanded.push(key);
            }
            Ok(col_b(alias))
        }
        PExpr::Binary { op, lhs, rhs } => {
            let op = binop(op)?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(resolve(lhs, ctx)?),
                rhs: Box::new(resolve(rhs, ctx)?),
            })
        }
        PExpr::Not(inner) => Ok(Expr::Not(Box::new(resolve(inner, ctx)?))),
    }
}

/// Resolve a WHERE predicate (detail columns only, no aggregates).
fn resolve_where(e: &PExpr, from: &str) -> Result<Expr> {
    match e {
        PExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
        PExpr::Param(i) => Err(unbound_param(*i)),
        PExpr::Ident(name) => Ok(col_r(name.clone())),
        PExpr::Qualified(q, name) if q == from => Ok(col_r(name.clone())),
        PExpr::Qualified(q, name) => Err(SqlError::Compile(format!(
            "WHERE cannot reference `{q}.{name}`"
        ))),
        PExpr::AggCall { func, .. } => Err(SqlError::Compile(format!(
            "aggregate `{func}` not allowed in WHERE"
        ))),
        PExpr::Binary { op, lhs, rhs } => Ok(Expr::Binary {
            op: binop(op)?,
            lhs: Box::new(resolve_where(lhs, from)?),
            rhs: Box::new(resolve_where(rhs, from)?),
        }),
        PExpr::Not(inner) => Ok(Expr::Not(Box::new(resolve_where(inner, from)?))),
    }
}

/// Resolve HAVING over the *result* schema: attrs and aggregate aliases are
/// plain (detail-side) columns of the final relation.
fn resolve_having(e: &PExpr) -> Result<Expr> {
    match e {
        PExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
        PExpr::Param(i) => Err(unbound_param(*i)),
        PExpr::Ident(name) => Ok(col_r(name.clone())),
        PExpr::Qualified(q, name) => Err(SqlError::Compile(format!(
            "HAVING cannot reference `{q}.{name}`"
        ))),
        PExpr::AggCall {
            func,
            scope,
            column,
        } => Ok(col_r(scoped_alias(
            func,
            scope.as_deref(),
            column.as_deref(),
        ))),
        PExpr::Binary { op, lhs, rhs } => Ok(Expr::Binary {
            op: binop(op)?,
            lhs: Box::new(resolve_having(lhs)?),
            rhs: Box::new(resolve_having(rhs)?),
        }),
        PExpr::Not(inner) => Ok(Expr::Not(Box::new(resolve_having(inner)?))),
    }
}

/// Compile a parsed query to a plan.
pub fn compile(q: &Query, _catalog: &Catalog, _registry: &Registry) -> Result<CompiledQuery> {
    let src = {
        let table = Plan::table(&q.from);
        match &q.where_clause {
            Some(w) => table.select(resolve_where(w, &q.from)?),
            None => table,
        }
    };

    match &q.group {
        GroupClause::None => compile_global(q, src),
        GroupClause::GroupBy { attrs, vars } => compile_group_by(q, src, attrs, vars),
        GroupClause::AnalyzeBy { shape, attrs } => compile_analyze_by(q, src, shape, attrs),
    }
}

/// No grouping: one global group (a one-row, zero-column base table).
fn compile_global(q: &Query, src: Plan) -> Result<CompiledQuery> {
    let mut aggs = Vec::new();
    let mut output_cols = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Column(c) => {
                return Err(SqlError::Compile(format!(
                    "column `{c}` requires a GROUP BY or ANALYZE BY clause"
                )))
            }
            SelectItem::Agg {
                func,
                scope,
                column,
                ..
            } => {
                if scope.is_some() {
                    return Err(SqlError::Compile(
                        "grouping variables require a GROUP BY clause".into(),
                    ));
                }
                let alias = item.output_name();
                aggs.push(agg_spec(func, column.as_deref(), alias.clone()));
                output_cols.push(alias);
            }
        }
    }
    reject_duplicate_outputs(&output_cols)?;
    let one_row = Relation::from_rows(Schema::new(vec![]), vec![Row::new(vec![])]);
    let plan = Plan::inline(one_row).md_join(src, aggs, Expr::always_true());
    let having = q.having.as_ref().map(resolve_having).transpose()?;
    let order_by = validated_order(q, &output_cols)?;
    Ok(CompiledQuery {
        plan,
        output_cols,
        having,
        order_by,
        limit: q.limit,
        fast_cube: None,
    })
}

/// Two select items resolving to the same output column would silently
/// shadow each other (the `demanded` dedup keys on output name, so
/// `sum(sale) as x, count(*) as x` would even drop the second aggregate):
/// reject with the typed error instead.
fn reject_duplicate_outputs(output_cols: &[String]) -> Result<()> {
    let mut seen = std::collections::HashSet::new();
    for name in output_cols {
        if !seen.insert(name.as_str()) {
            return Err(SqlError::DuplicateAlias(name.clone()));
        }
    }
    Ok(())
}

/// ORDER BY keys must name select-list output columns.
fn validated_order(q: &Query, output_cols: &[String]) -> Result<Vec<crate::ast::OrderKey>> {
    for key in &q.order_by {
        if !output_cols.contains(&key.column) {
            return Err(SqlError::Compile(format!(
                "ORDER BY column `{}` is not in the select list",
                key.column
            )));
        }
    }
    Ok(q.order_by.clone())
}

fn compile_group_by(
    q: &Query,
    src: Plan,
    attrs: &[String],
    vars: &[crate::ast::GroupingVar],
) -> Result<CompiledQuery> {
    // Pass 1: demanded aggregates from the select list.
    let mut demanded: Vec<(Option<String>, AggSpec)> = Vec::new();
    let mut output_cols = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Column(c) => {
                if !attrs.contains(c) {
                    return Err(SqlError::Compile(format!(
                        "select column `{c}` is not a grouping attribute"
                    )));
                }
                output_cols.push(c.clone());
            }
            SelectItem::Agg {
                func,
                scope,
                column,
                ..
            } => {
                if let Some(s) = scope {
                    if !vars.iter().any(|v| &v.name == s) {
                        return Err(SqlError::Compile(format!(
                            "unknown grouping variable `{s}`"
                        )));
                    }
                }
                let alias = item.output_name();
                let spec = agg_spec(func, column.as_deref(), alias.clone());
                if !demanded
                    .iter()
                    .any(|(sc, sp)| sc == scope && sp.output_name() == alias)
                {
                    demanded.push((scope.clone(), spec));
                }
                output_cols.push(alias);
            }
        }
    }

    reject_duplicate_outputs(&output_cols)?;

    // Pass 2: resolve each variable's θ in declaration order; resolution may
    // demand additional aggregates (from earlier scopes only).
    let group_theta_expr = if attrs.is_empty() {
        Expr::always_true()
    } else {
        let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
        cuboid_theta(&names)
    };
    let mut available: Vec<String> = Vec::new(); // scopes computed so far (group = "")
    let mut var_thetas: Vec<(String, Expr)> = Vec::new();
    for var in vars {
        let mut ctx = ResolveCtx {
            attrs,
            current_var: Some(&var.name),
            from: &q.from,
            available_scopes: &{
                let mut v = available.clone();
                // Group-scope aggregates are always available (the group block
                // is emitted first).
                v.push(String::new());
                v
            },
            demanded: &mut demanded,
        };
        // Group-scope aggs are referenced with scope None → allowed; var
        // scopes must be in `available`.
        let theta_own = resolve(&var.condition, &mut ctx)?;
        // The variable ranges over detail tuples satisfying its condition
        // *and* belonging to... no: EMF grouping variables are constrained
        // only by their such-that condition (which typically includes the
        // group equalities explicitly).
        var_thetas.push((var.name.clone(), theta_own));
        available.push(var.name.clone());
    }
    // HAVING may also demand aggregates.
    if let Some(h) = &q.having {
        collect_having_demands(h, vars, &mut demanded)?;
    }

    // Assemble: base → group block → one MD-join per variable.
    let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let mut plan = src.clone().group_by_base(&names);
    let group_aggs: Vec<AggSpec> = demanded
        .iter()
        .filter(|(sc, _)| sc.is_none())
        .map(|(_, sp)| sp.clone())
        .collect();
    if !group_aggs.is_empty() {
        plan = plan.md_join(src.clone(), group_aggs, group_theta_expr);
    }
    for (name, theta) in var_thetas {
        let var_aggs: Vec<AggSpec> = demanded
            .iter()
            .filter(|(sc, _)| sc.as_deref() == Some(name.as_str()))
            .map(|(_, sp)| sp.clone())
            .collect();
        if var_aggs.is_empty() {
            // A variable nobody aggregates is legal but useless; count(*) it
            // so the stage still materializes (and the user can see why).
            continue;
        }
        plan = plan.md_join(src.clone(), var_aggs, theta);
    }

    let having = q.having.as_ref().map(resolve_having).transpose()?;
    let order_by = validated_order(q, &output_cols)?;
    Ok(CompiledQuery {
        plan,
        output_cols,
        having,
        order_by,
        limit: q.limit,
        fast_cube: None,
    })
}

/// Pass over HAVING to demand aggregates it references (scope must exist).
fn collect_having_demands(
    e: &PExpr,
    vars: &[crate::ast::GroupingVar],
    demanded: &mut Vec<(Option<String>, AggSpec)>,
) -> Result<()> {
    match e {
        PExpr::AggCall {
            func,
            scope,
            column,
        } => {
            if let Some(s) = scope {
                if !vars.iter().any(|v| &v.name == s) {
                    return Err(SqlError::Compile(format!(
                        "unknown grouping variable `{s}` in HAVING"
                    )));
                }
            }
            let alias = scoped_alias(func, scope.as_deref(), column.as_deref());
            if !demanded
                .iter()
                .any(|(sc, sp)| sc == scope && sp.output_name() == alias)
            {
                demanded.push((scope.clone(), agg_spec(func, column.as_deref(), alias)));
            }
            Ok(())
        }
        PExpr::Binary { lhs, rhs, .. } => {
            collect_having_demands(lhs, vars, demanded)?;
            collect_having_demands(rhs, vars, demanded)
        }
        PExpr::Not(inner) => collect_having_demands(inner, vars, demanded),
        _ => Ok(()),
    }
}

fn compile_analyze_by(
    q: &Query,
    src: Plan,
    shape: &Shape,
    attrs: &[String],
) -> Result<CompiledQuery> {
    let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let base = match shape {
        Shape::Group => src.clone().group_by_base(&names),
        Shape::Cube => src.clone().cube_base(&names),
        Shape::Rollup => src.clone().base(BaseShape::Rollup(attrs.to_vec())),
        Shape::Unpivot => src.clone().base(BaseShape::Unpivot(attrs.to_vec())),
        Shape::GroupingSets(sets) => src
            .clone()
            .base(BaseShape::GroupingSets(attrs.to_vec(), sets.clone())),
        Shape::Table(t) => Plan::table(t).project(&names),
    };
    let theta = match shape {
        Shape::Group => cuboid_theta(&names),
        // Cube-family bases (and external tables, which may hold ALL
        // markers, per Example 2.4) use the ALL-wildcard θ.
        _ => cube_match_theta(&names),
    };
    let mut aggs = Vec::new();
    let mut output_cols = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Column(c) => {
                if !attrs.contains(c) {
                    return Err(SqlError::Compile(format!(
                        "select column `{c}` is not an ANALYZE BY attribute"
                    )));
                }
                output_cols.push(c.clone());
            }
            SelectItem::Agg {
                func,
                scope,
                column,
                ..
            } => {
                if scope.is_some() {
                    return Err(SqlError::Compile(
                        "grouping variables are not allowed with ANALYZE BY".into(),
                    ));
                }
                let alias = item.output_name();
                aggs.push(agg_spec(func, column.as_deref(), alias.clone()));
                output_cols.push(alias);
            }
        }
    }
    if aggs.is_empty() {
        return Err(SqlError::Compile(
            "ANALYZE BY requires at least one aggregate in the select list".into(),
        ));
    }
    reject_duplicate_outputs(&output_cols)?;
    let fast_shape = match shape {
        Shape::Cube => Some(mdj_cube::sets::SetShape::Cube),
        Shape::Rollup => Some(mdj_cube::sets::SetShape::Rollup),
        Shape::Unpivot => Some(mdj_cube::sets::SetShape::Unpivot),
        Shape::GroupingSets(sets) => {
            let masks: Vec<u32> = sets
                .iter()
                .map(|set| {
                    set.iter()
                        .map(|name| {
                            attrs
                                .iter()
                                .position(|a| a == name)
                                .map(|i| 1u32 << i)
                                .ok_or_else(|| {
                                    SqlError::Compile(format!(
                                        "grouping set member `{name}` not in dims"
                                    ))
                                })
                        })
                        .try_fold(0u32, |m, bit| bit.map(|b| m | b))
                })
                .collect::<Result<_>>()?;
            Some(mdj_cube::sets::SetShape::Explicit(masks))
        }
        // Plain GROUP shape is already hash-probed; external tables cannot
        // be enumerated into cuboids.
        Shape::Group | Shape::Table(_) => None,
    };
    let fast_cube = fast_shape.map(|shape| FastCube {
        source: src.clone(),
        dims: attrs.to_vec(),
        aggs: aggs.clone(),
        shape,
    });
    let plan = base.md_join(src, aggs, theta);
    let having = q.having.as_ref().map(resolve_having).transpose()?;
    let order_by = validated_order(q, &output_cols)?;
    Ok(CompiledQuery {
        plan,
        output_cols,
        having,
        order_by,
        limit: q.limit,
        fast_cube,
    })
}

/// Tiny helper re-exported for tests: conjunction of exprs.
pub fn conjoin(exprs: Vec<Expr>) -> Expr {
    and_all(exprs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_str(s: &str) -> Result<CompiledQuery> {
        let q = parse(s)?;
        compile(&q, &Catalog::new(), &Registry::standard())
    }

    #[test]
    fn duplicate_output_aliases_are_rejected() {
        // Explicit AS collision.
        let err =
            compile_str("select cust, sum(sale) as x, count(*) as x from Sales group by cust")
                .unwrap_err();
        assert!(
            matches!(err, SqlError::DuplicateAlias(ref n) if n == "x"),
            "{err}"
        );
        // Implicit collision: the same aggregate twice.
        let err =
            compile_str("select cust, sum(sale), sum(sale) from Sales group by cust").unwrap_err();
        assert!(matches!(err, SqlError::DuplicateAlias(ref n) if n == "sum_sale"));
        // Aggregate alias shadowing a grouping column.
        let err =
            compile_str("select cust, count(*) as cust from Sales group by cust").unwrap_err();
        assert!(matches!(err, SqlError::DuplicateAlias(ref n) if n == "cust"));
        // Global and ANALYZE BY paths reject too.
        assert!(matches!(
            compile_str("select sum(sale) as t, count(*) as t from Sales"),
            Err(SqlError::DuplicateAlias(_))
        ));
        assert!(matches!(
            compile_str(
                "select cust, sum(sale) as t, min(sale) as t from Sales analyze by cube(cust)"
            ),
            Err(SqlError::DuplicateAlias(_))
        ));
        // Distinct aliases for the same aggregate stay legal.
        assert!(compile_str(
            "select cust, sum(sale) as a, sum(sale) as b from Sales group by cust"
        )
        .is_ok());
    }

    #[test]
    fn group_by_compiles_to_single_md_join() {
        let c = compile_str("select cust, avg(sale), count(*) from Sales group by cust").unwrap();
        assert_eq!(c.plan.md_join_count(), 1);
        assert_eq!(c.output_cols, vec!["cust", "avg_sale", "count_star"]);
    }

    #[test]
    fn grouping_vars_compile_to_chain() {
        let c = compile_str(
            "select cust, avg(X.sale), avg(Y.sale) from Sales group by cust ; X, Y \
             such that X.cust = cust and X.state = 'NY', \
                       Y.cust = cust and Y.state = 'NJ'",
        )
        .unwrap();
        assert_eq!(c.plan.md_join_count(), 2);
        assert_eq!(c.output_cols, vec!["cust", "avg_X_sale", "avg_Y_sale"]);
    }

    #[test]
    fn later_var_may_read_earlier_aggregate() {
        let c = compile_str(
            "select prod, count(Z.*) from Sales group by prod ; X, Z \
             such that X.prod = prod, \
                       Z.prod = prod and Z.sale > avg(X.sale)",
        )
        .unwrap();
        // X block + Z block.
        assert_eq!(c.plan.md_join_count(), 2);
    }

    #[test]
    fn forward_reference_rejected() {
        let err = compile_str(
            "select prod, count(X.*) from Sales group by prod ; X, Z \
             such that X.prod = prod and X.sale > avg(Z.sale), \
                       Z.prod = prod",
        );
        assert!(matches!(err, Err(SqlError::Compile(_))));
    }

    #[test]
    fn group_aggregate_demanded_by_condition() {
        // avg(sale) appears only inside Z's condition → the group block must
        // still compute it.
        let c = compile_str(
            "select prod, count(Z.*) from Sales group by prod ; Z \
             such that Z.prod = prod and Z.sale > avg(sale)",
        )
        .unwrap();
        // Group block (for avg_sale) + Z block.
        assert_eq!(c.plan.md_join_count(), 2);
    }

    #[test]
    fn analyze_by_cube_theta_is_wildcard() {
        let c =
            compile_str("select prod, month, sum(sale) from Sales analyze by cube(prod, month)")
                .unwrap();
        match &c.plan {
            Plan::MdJoin { theta, .. } => {
                assert!(theta.to_string().contains("ALL"));
            }
            _ => panic!("expected MdJoin root"),
        }
    }

    #[test]
    fn analyze_by_table_projects_external_base() {
        let c = compile_str("select prod, month, sum(sale) from Sales analyze by T(prod, month)")
            .unwrap();
        match &c.plan {
            Plan::MdJoin { base, .. } => {
                assert!(matches!(base.as_ref(), Plan::Project { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn global_aggregate_without_grouping() {
        let c = compile_str("select count(*), sum(sale) from Sales").unwrap();
        assert_eq!(c.output_cols, vec!["count_star", "sum_sale"]);
        assert_eq!(c.plan.md_join_count(), 1);
    }

    #[test]
    fn bad_select_column_rejected() {
        assert!(matches!(
            compile_str("select state, count(*) from Sales group by cust"),
            Err(SqlError::Compile(_))
        ));
        assert!(matches!(
            compile_str("select cust from Sales"),
            Err(SqlError::Compile(_))
        ));
    }

    #[test]
    fn where_with_aggregate_rejected() {
        assert!(matches!(
            compile_str("select count(*) from Sales where avg(sale) > 1"),
            Err(SqlError::Compile(_))
        ));
    }

    #[test]
    fn having_demands_aggregates() {
        let c = compile_str("select cust from Sales group by cust having sum(sale) > 100").unwrap();
        // The group block is created solely for HAVING's sum.
        assert_eq!(c.plan.md_join_count(), 1);
        assert!(c.having.is_some());
    }
}
