//! SQL frontend errors.

use std::fmt;

pub type Result<T, E = SqlError> = std::result::Result<T, E>;

/// Errors from lexing, parsing, compiling, or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex {
        offset: usize,
        message: String,
    },
    /// Parse error with the offending token and what was expected.
    Parse {
        near: String,
        message: String,
    },
    /// Semantic error during compilation (unknown column/variable/etc.).
    Compile(String),
    /// Two select-list items resolve to the same output column name; the
    /// later one would silently shadow the earlier in the result schema.
    DuplicateAlias(String),
    /// Parameter-binding error: wrong arity, or a `?` placeholder reached
    /// execution unbound.
    Bind(String),
    /// Downstream failure (planning or execution).
    Algebra(mdj_algebra::AlgebraError),
    Agg(mdj_agg::AggError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            SqlError::Parse { near, message } => {
                write!(f, "parse error near `{near}`: {message}")
            }
            SqlError::Compile(m) => write!(f, "compile error: {m}"),
            SqlError::DuplicateAlias(name) => {
                write!(
                    f,
                    "compile error: duplicate output column `{name}` in select list"
                )
            }
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
            SqlError::Algebra(e) => write!(f, "{e}"),
            SqlError::Agg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {
    /// Chain into the planning/execution layers (see
    /// [`mdj_algebra::AlgebraError`], which chains further down).
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Algebra(e) => Some(e),
            SqlError::Agg(e) => Some(e),
            SqlError::Lex { .. } | SqlError::Parse { .. } | SqlError::Compile(_) => None,
            SqlError::DuplicateAlias(_) | SqlError::Bind(_) => None,
        }
    }
}

impl From<mdj_algebra::AlgebraError> for SqlError {
    fn from(e: mdj_algebra::AlgebraError) -> Self {
        SqlError::Algebra(e)
    }
}

impl From<mdj_agg::AggError> for SqlError {
    fn from(e: mdj_agg::AggError) -> Self {
        SqlError::Agg(e)
    }
}

impl From<mdj_storage::StorageError> for SqlError {
    fn from(e: mdj_storage::StorageError) -> Self {
        SqlError::Algebra(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SqlError::Parse {
            near: "CUBE".into(),
            message: "expected (".into(),
        };
        assert!(e.to_string().contains("CUBE"));
    }
}
