//! Tokenizer for the extended SQL surface.

use crate::error::{Result, SqlError};

/// A lexical token. Keywords are recognized case-insensitively and carried
/// as `Keyword` with an upper-cased lexeme; everything else alphanumeric is
/// an `Ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation / operators: ( ) , ; . * = <> < <= > >= + - / % ?
    Sym(String),
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ANALYZE", "CUBE", "ROLLUP", "UNPIVOT", "GROUPING",
    "SETS", "SUCH", "THAT", "AND", "OR", "NOT", "AS", "DISTINCT", "HAVING", "ORDER", "LIMIT",
    "ASC", "DESC", "BETWEEN",
];

/// Tokenize `input`. Strings use single quotes with `''` escaping.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        let ch = input[i..].chars().next().expect("in bounds");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|e| SqlError::Lex {
                        offset: start,
                        message: format!("bad float `{text}`: {e}"),
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|e| SqlError::Lex {
                        offset: start,
                        message: format!("bad int `{text}`: {e}"),
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym("<=".into()));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Sym("<>".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Sym("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Sym(">=".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(">".into()));
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Sym("<>".into()));
                i += 2;
            }
            '(' | ')' | ',' | ';' | '.' | '*' | '=' | '+' | '-' | '/' | '%' | '?' => {
                tokens.push(Token::Sym(c.to_string()));
                i += 1;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents() {
        let t = tokenize("Select prod FROM Sales").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("prod".into()));
        assert_eq!(t[2], Token::Keyword("FROM".into()));
        assert_eq!(t[3], Token::Ident("Sales".into()));
        assert_eq!(t[4], Token::Eof);
    }

    #[test]
    fn numbers_strings_symbols() {
        let t = tokenize("x >= 1.5 and s = 'NY''s' <> 3").unwrap();
        assert!(t.contains(&Token::Sym(">=".into())));
        assert!(t.contains(&Token::Float(1.5)));
        assert!(t.contains(&Token::Str("NY's".into())));
        assert!(t.contains(&Token::Sym("<>".into())));
        assert!(t.contains(&Token::Int(3)));
    }

    #[test]
    fn such_that_and_semicolons() {
        let t = tokenize("group by prod ; X such that X.prod = prod").unwrap();
        assert!(t.contains(&Token::Sym(";".into())));
        assert!(t.contains(&Token::Keyword("SUCH".into())));
        assert!(t.contains(&Token::Sym(".".into())));
    }

    #[test]
    fn star_and_call() {
        let t = tokenize("count(Z.*)").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("count".into()),
                Token::Sym("(".into()),
                Token::Ident("Z".into()),
                Token::Sym(".".into()),
                Token::Sym("*".into()),
                Token::Sym(")".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(matches!(tokenize("'open"), Err(SqlError::Lex { .. })));
        assert!(matches!(tokenize("a @ b"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn question_mark_is_a_placeholder_token() {
        let t = tokenize("sale > ?").unwrap();
        assert!(t.contains(&Token::Sym("?".into())));
    }

    #[test]
    fn bang_equals_is_not_equal() {
        let t = tokenize("a != b").unwrap();
        assert!(t.contains(&Token::Sym("<>".into())));
    }
}
