//! Property-based tests for the storage substrate.

use mdj_storage::{csv, partition, DataType, HashIndex, Relation, Row, Schema, SortedIndex, Value};
use proptest::prelude::*;
use std::ops::Bound;

/// Random typed values (no NaN: CSV text roundtrips shortest-repr floats
/// exactly, but NaN bit patterns are not preserved by parsing).
fn value_strategy(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int => prop_oneof![
            3 => any::<i64>().prop_map(Value::Int),
            1 => Just(Value::Null),
            1 => Just(Value::All),
        ]
        .boxed(),
        DataType::Float => prop_oneof![
            3 => proptest::num::f64::NORMAL.prop_map(Value::Float),
            1 => Just(Value::Float(0.0)),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Str => prop_oneof![
            // Includes commas/quotes/newlines to exercise CSV quoting.
            3 => "[a-zA-Z0-9 ,\"'\n]{0,12}".prop_map(Value::str),
            1 => Just(Value::Null),
            1 => Just(Value::All),
        ]
        .boxed(),
        DataType::Bool => prop_oneof![
            3 => any::<bool>().prop_map(Value::Bool),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Any => any::<i64>().prop_map(Value::Int).boxed(),
    }
}

fn relation_strategy() -> impl Strategy<Value = Relation> {
    let schema = Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Float),
        ("c", DataType::Str),
        ("d", DataType::Bool),
    ]);
    proptest::collection::vec(
        (
            value_strategy(DataType::Int),
            value_strategy(DataType::Float),
            value_strategy(DataType::Str),
            value_strategy(DataType::Bool),
        ),
        0..30,
    )
    .prop_map(move |rows| {
        Relation::from_rows(
            schema.clone(),
            rows.into_iter()
                .map(|(a, b, c, d)| Row::new(vec![a, b, c, d]))
                .collect(),
        )
    })
}

fn keyed_relation_strategy() -> impl Strategy<Value = Relation> {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    proptest::collection::vec((0i64..20, any::<i64>()), 0..50).prop_map(move |rows| {
        Relation::from_rows(
            schema.clone(),
            rows.into_iter()
                .map(|(k, v)| Row::from_values([k, v]))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV write → read is the identity on typed relations, including ALL,
    /// NULL, and strings needing quoting.
    #[test]
    fn csv_roundtrip(rel in relation_strategy()) {
        // The Str column may contain the literal cells "NULL"/"ALL", which
        // parse back as pseudo-values; skip those rare collisions.
        let collides = rel.iter().any(|r| {
            matches!(r[2].as_str(), Some("NULL") | Some("ALL"))
        });
        prop_assume!(!collides);
        let text = csv::write_string(&rel);
        let back = csv::read_str(&text, rel.schema()).unwrap();
        prop_assert_eq!(rel, back);
    }

    /// HashIndex lookups agree with a full scan.
    #[test]
    fn hash_index_equals_scan(rel in keyed_relation_strategy(), probe in 0i64..25) {
        let ix = HashIndex::build_on(&rel, &["k"]).unwrap();
        let mut via_index: Vec<usize> = ix.get(&[Value::Int(probe)]).to_vec();
        via_index.sort_unstable();
        let via_scan: Vec<usize> = rel
            .iter()
            .enumerate()
            .filter(|(_, r)| r[0] == Value::Int(probe))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }

    /// SortedIndex range lookups agree with a filter scan, for all bound
    /// combinations.
    #[test]
    fn sorted_index_range_equals_filter(rel in keyed_relation_strategy(), lo in 0i64..20, width in 0i64..10) {
        let hi = lo + width;
        let ix = SortedIndex::build_on(&rel, &["k"]).unwrap();
        type RangeCase = (Bound<Value>, Bound<Value>, Box<dyn Fn(i64) -> bool>);
        let cases: Vec<RangeCase> = vec![
            (
                Bound::Included(Value::Int(lo)),
                Bound::Included(Value::Int(hi)),
                Box::new(move |k| k >= lo && k <= hi),
            ),
            (
                Bound::Excluded(Value::Int(lo)),
                Bound::Unbounded,
                Box::new(move |k| k > lo),
            ),
            (
                Bound::Unbounded,
                Bound::Excluded(Value::Int(hi)),
                Box::new(move |k| k < hi),
            ),
        ];
        for (l, u, pred) in cases {
            let mut via_index: Vec<usize> = ix
                .range_first(as_ref(&l), as_ref(&u))
                .to_vec();
            via_index.sort_unstable();
            let via_scan: Vec<usize> = rel
                .iter()
                .enumerate()
                .filter(|(_, r)| pred(r[0].as_int().unwrap()))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// Chunk and hash partitions cover every row exactly once.
    #[test]
    fn partitions_cover_exactly(rel in keyed_relation_strategy(), m in 1usize..8) {
        let chunks = partition::chunk(&rel, m);
        let total: usize = chunks.iter().map(Relation::len).sum();
        prop_assert_eq!(total, rel.len());
        let union = chunks
            .iter()
            .skip(1)
            .fold(chunks[0].clone(), |acc, c| acc.union(c).unwrap());
        if !rel.is_empty() {
            prop_assert!(union.same_multiset(&rel));
        }
        let buckets = partition::by_hash(&rel, &["k"], m).unwrap();
        let total: usize = buckets.iter().map(Relation::len).sum();
        prop_assert_eq!(total, rel.len());
        // Same key never lands in two buckets.
        for key in 0i64..20 {
            let hit = buckets
                .iter()
                .filter(|b| b.iter().any(|r| r[0] == Value::Int(key)))
                .count();
            prop_assert!(hit <= 1, "key {key} in {hit} buckets");
        }
    }

    /// distinct_on yields unique keys that all exist in the input.
    #[test]
    fn distinct_on_is_sound(rel in keyed_relation_strategy()) {
        let d = rel.distinct_on(&["k"]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in d.iter() {
            prop_assert!(seen.insert(row[0].clone()), "duplicate key");
            prop_assert!(rel.iter().any(|r| r[0] == row[0]));
        }
        // Cardinality equals the number of distinct keys in the input.
        let expect: std::collections::HashSet<_> = rel.iter().map(|r| r[0].clone()).collect();
        prop_assert_eq!(d.len(), expect.len());
    }

    /// sort_by is a permutation and orders keys.
    #[test]
    fn sort_by_is_ordered_permutation(rel in keyed_relation_strategy()) {
        let mut sorted = rel.clone();
        sorted.sort_by(&["k"]).unwrap();
        prop_assert!(sorted.same_multiset(&rel));
        for pair in sorted.rows().windows(2) {
            prop_assert!(pair[0][0] <= pair[1][0]);
        }
    }
}

fn as_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}
