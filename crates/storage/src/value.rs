//! Typed values, including the `ALL` pseudo-value used by data-cube base tables.
//!
//! `ALL` follows Gray et al. \[GBLP96\] as adopted by the MD-join paper: a cube
//! base-values table merges the 2^n group-bys of a cube into one relation by
//! filling rolled-up dimensions with `ALL`. `ALL` is an ordinary value for
//! equality/hashing purposes (it only equals itself), which is exactly what the
//! MD-join needs: θ-conditions on cube tables compare dimension attributes of `B`
//! against detail attributes of `R`, and rows with `ALL` use θ-conditions that do
//! not mention the rolled-up dimension at all.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Exact numeric comparison of an `i64` against an `f64`.
///
/// The obvious `(a as f64).total_cmp(&b)` is lossy above 2⁵³ where the cast
/// rounds: `(i64::MAX as f64)` equals 2⁶³, so `i64::MAX` would spuriously
/// compare `Equal` to a float that is strictly greater than it. Predicates
/// must be exact — the scalar interpreter and the batch kernels both route
/// through this function so they cannot diverge on extreme magnitudes.
///
/// Semantics:
/// * NaN: falls back to `total_cmp` through the cast. A NaN never compares
///   `Equal` to an integer either way; this just preserves `total_cmp`'s
///   sign-based placement of NaN so `<`/`>` predicates keep their behavior.
/// * Finite `b` outside `i64`'s range compares by sign of the overflow.
/// * Otherwise the integral part of `b` (exactly representable as `i64`)
///   compares in integer arithmetic; an integral tie is broken by the sign of
///   `b`'s fractional remainder. Note `-0.0` compares `Equal` to `0` — this
///   is a *numeric* comparison, unlike `total_cmp`'s bit-level total order.
pub fn cmp_int_float(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        return (a as f64).total_cmp(&b);
    }
    // 2⁶³ is exactly representable; any finite float ≥ 2⁶³ or < -2⁶³ lies
    // outside i64's range (-2⁶³ itself is i64::MIN). Floats at these
    // magnitudes are spaced ≥ 1024 apart, so everything in between truncates
    // to an in-range integer.
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    if b >= TWO_63 {
        return Ordering::Less;
    }
    if b < -TWO_63 {
        return Ordering::Greater;
    }
    let bt = b.trunc();
    match a.cmp(&(bt as i64)) {
        Ordering::Equal if b == bt => Ordering::Equal,
        // `a` equals `b`'s integral part: the fractional remainder decides.
        Ordering::Equal if b > bt => Ordering::Less,
        Ordering::Equal => Ordering::Greater,
        other => other,
    }
}

/// A dynamically typed value stored in a [`crate::Relation`].
///
/// Floats are wrapped so that `Value` can implement `Eq`/`Hash`/`Ord` (required
/// for group keys and index keys): equality and hashing use the IEEE bit pattern,
/// ordering uses `f64::total_cmp`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. Equal to itself for grouping purposes (like SQL `GROUP BY`),
    /// but all comparison *predicates* involving NULL evaluate to false.
    Null,
    /// The `ALL` pseudo-value marking a rolled-up cube dimension.
    All,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Interned immutable string (cheap to clone).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value is the `ALL` pseudo-value.
    pub fn is_all(&self) -> bool {
        matches!(self, Value::All)
    }

    /// Extract an `i64`, coercing from `Float`/`Bool` when lossless in spirit.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Extract an `f64`, coercing from `Int`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric comparison usable by predicates: `Int` and `Float` compare by
    /// numeric value; other types compare only within their own type. Returns
    /// `None` for NULL operands or incomparable types (predicate → false),
    /// mirroring SQL three-valued logic collapsed to two values.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some(cmp_int_float(*a, *b)),
            (Value::Float(a), Value::Int(b)) => Some(cmp_int_float(*b, *a).reverse()),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::All, Value::All) => Some(Ordering::Equal),
            _ => None,
        }
    }

    /// Equality as used by θ-condition `=` predicates: numeric cross-type
    /// equality allowed, NULL never equal.
    pub fn sql_eq(&self, other: &Value) -> bool {
        matches!(self.sql_cmp(other), Some(Ordering::Equal))
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::All => "all",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::All, Value::All) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null | Value::All => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order for sorting relations and building sorted indexes.
    /// Order across types: Null < All < Bool < Int/Float (numeric) < Str.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::All => 1,
                Value::Bool(_) => 2,
                Value::Int(_) | Value::Float(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::All => write!(f, "ALL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn all_equals_only_itself() {
        assert_eq!(Value::All, Value::All);
        assert_ne!(Value::All, Value::Null);
        assert_ne!(Value::All, Value::Int(0));
        assert_ne!(Value::All, Value::str("ALL"));
    }

    #[test]
    fn null_groups_with_null_but_never_sql_eq() {
        assert_eq!(Value::Null, Value::Null);
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
    }

    #[test]
    fn cross_type_numeric_sql_eq() {
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).sql_eq(&Value::Float(3.5)));
        assert_eq!(
            Value::Float(2.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn cross_type_comparison_is_exact_above_2_53() {
        // (2⁵³+1 as f64) rounds to 2⁵³, so the lossy cast called these Equal.
        let p53 = 1i64 << 53;
        assert_eq!(cmp_int_float(p53 + 1, p53 as f64), Ordering::Greater);
        assert_eq!(cmp_int_float(-(p53 + 1), -(p53 as f64)), Ordering::Less);
        // (i64::MAX as f64) == 2⁶³ > i64::MAX: the cast called these Equal too.
        assert_eq!(cmp_int_float(i64::MAX, i64::MAX as f64), Ordering::Less);
        assert_eq!(cmp_int_float(i64::MIN, i64::MIN as f64), Ordering::Equal);
        assert!(!Value::Int(i64::MAX).sql_eq(&Value::Float(i64::MAX as f64)));
        assert_eq!(
            Value::Float(i64::MAX as f64).sql_cmp(&Value::Int(i64::MAX)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn cmp_int_float_edge_cases() {
        assert_eq!(cmp_int_float(0, -0.0), Ordering::Equal);
        assert_eq!(cmp_int_float(0, -0.5), Ordering::Greater);
        assert_eq!(cmp_int_float(-1, -0.5), Ordering::Less);
        assert_eq!(cmp_int_float(3, 3.5), Ordering::Less);
        assert_eq!(cmp_int_float(-3, -3.5), Ordering::Greater);
        assert_eq!(cmp_int_float(5, f64::INFINITY), Ordering::Less);
        assert_eq!(cmp_int_float(5, f64::NEG_INFINITY), Ordering::Greater);
        // NaN keeps total_cmp's placement (never Equal).
        assert_eq!(cmp_int_float(5, f64::NAN), Ordering::Less);
        assert_eq!(cmp_int_float(5, -f64::NAN), Ordering::Greater);
        assert!(!Value::Int(5).sql_eq(&Value::Float(f64::NAN)));
    }

    #[test]
    fn plain_eq_is_structural_not_numeric() {
        // Grouping semantics: Int(3) and Float(3.0) are distinct group keys.
        assert_ne!(Value::Int(3), Value::Float(3.0));
    }

    #[test]
    fn float_eq_and_hash_use_bits() {
        let a = Value::Float(0.1 + 0.2);
        let b = Value::Float(0.1 + 0.2);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let nan1 = Value::Float(f64::NAN);
        let nan2 = Value::Float(f64::NAN);
        assert_eq!(nan1, nan2); // same bit pattern
    }

    #[test]
    fn total_order_is_transitive_across_types() {
        let mut vs = [
            Value::str("z"),
            Value::Int(5),
            Value::Null,
            Value::Float(1.5),
            Value::All,
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::All);
        assert_eq!(vs[2], Value::Bool(true));
        assert_eq!(vs[5], Value::str("z"));
    }

    #[test]
    fn numeric_coercion_in_total_order() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.5).cmp(&Value::Int(3)), Ordering::Greater);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(42i64), Value::Int(42));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("NY"), Value::str("NY"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::str("x").as_float(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::All.to_string(), "ALL");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("CA").to_string(), "CA");
    }
}
