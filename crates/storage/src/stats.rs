//! Scan and probe accounting.
//!
//! The paper's optimizations are about work avoided: fewer scans of `R`
//! (Theorems 4.1/4.3), fewer tuples scanned (Theorem 4.2 / Observation 4.1),
//! fewer base-table rows probed per detail tuple (Section 4.5). The benchmark
//! harness reports these counters next to wall-clock time so the *shape* of
//! each optimization is visible independent of machine speed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-worker accounting for the morsel-driven parallel executor: how many
/// morsels a worker processed, how many tuples those covered, how many of its
/// tasks were stolen from other workers' queues, and how many partial-state
/// merges it performed. Imbalances between workers make scheduling skew
/// visible; a non-zero steal count is the signature of work stealing
/// rebalancing a skewed load.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Worker index within its pool.
    pub worker: usize,
    /// Morsels this worker executed (own + stolen).
    pub morsels: u64,
    /// Tuples covered by those morsels.
    pub tuples: u64,
    /// Aggregate-state updates this worker applied. Tuples measure how much
    /// input a worker consumed; updates measure how much *work* it did — under
    /// a skewed fan-out the two diverge, and the largest per-worker update
    /// count is the schedule's makespan in machine-independent units.
    pub updates: u64,
    /// Morsels obtained by stealing from another worker's queue.
    pub steals: u64,
    /// Partial aggregate-state merges performed during the merge phase.
    pub merges: u64,
}

impl WorkerStats {
    pub fn new(worker: usize) -> Self {
        WorkerStats {
            worker,
            ..Default::default()
        }
    }
}

impl std::fmt::Display for WorkerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {}: morsels={} tuples={} updates={} steals={} merges={}",
            self.worker, self.morsels, self.tuples, self.updates, self.steals, self.merges
        )
    }
}

/// Thread-safe operation counters. Cheap relaxed atomics; shareable across the
/// parallel evaluators.
#[derive(Debug, Default)]
pub struct ScanStats {
    /// Number of full or partial passes over a detail relation.
    scans: AtomicU64,
    /// Total detail tuples read.
    tuples_scanned: AtomicU64,
    /// Total base-table rows examined by θ (inner-loop work of Algorithm 3.1).
    probes: AtomicU64,
    /// Aggregate-state updates applied.
    updates: AtomicU64,
    /// Cooperative cancellation/deadline polls performed by the governor.
    cancel_polls: AtomicU64,
    /// Morsels re-executed after a caught worker panic.
    morsel_retries: AtomicU64,
    /// Bytes charged against the memory budget (cumulative, never released).
    bytes_charged: AtomicU64,
    /// Times a budget breach was answered by re-planning into Theorem 4.1
    /// partitioned evaluation instead of aborting.
    degradations: AtomicU64,
    /// Columnar batches processed by the vectorized executor.
    batches: AtomicU64,
    /// Batches (or batch sub-steps) that fell back to the scalar interpreter
    /// because the expression shape or column data had no typed kernel.
    batch_fallbacks: AtomicU64,
    /// Per-reason breakdown of batch fallbacks: θ shape with no batch form.
    fallback_theta: AtomicU64,
    /// Per-reason breakdown: prefilter expression with no batch form.
    fallback_prefilter: AtomicU64,
    /// Per-reason breakdown: probe-key expression unevaluable on this chunk's
    /// columns (untyped column, non-batchable shape).
    fallback_key: AtomicU64,
    /// Per-reason breakdown: aggregate input column with no typed kernel
    /// representation (mixed types, booleans, `ALL`).
    fallback_agg: AtomicU64,
    /// Condition/aggregate sets executed by the fused generalized (Theorem
    /// 4.3) batch executor.
    gen_sets: AtomicU64,
    /// Of those, sets delegated wholly to the scalar tuple-at-a-time path
    /// (per-set fallback; the other sets in the same scan stay batched).
    gen_set_fallbacks: AtomicU64,
    /// Bytes written to spill run files by spill-degradation.
    bytes_spilled: AtomicU64,
    /// Spill partitions (run files) written.
    spill_partitions: AtomicU64,
    /// Bytes read back from spill run files.
    spill_read_bytes: AtomicU64,
    /// `Auto` batch-coverage decisions made (one per Auto-planned run).
    auto_decisions: AtomicU64,
    /// Modeled batch coverage of the most recent `Auto` decision, in per-mille
    /// of per-tuple work units (latest value, not a sum).
    auto_coverage_permille: AtomicU64,
    /// Whether the most recent `Auto` decision chose the vectorized plan.
    auto_batched: AtomicU64,
    /// Queries answered verbatim from a materialized cuboid-cache entry.
    cache_hits: AtomicU64,
    /// Queries answered by Theorem 4.5 roll-up from a *finer* cached cuboid.
    cache_rollup_hits: AtomicU64,
    /// Cacheable queries that found no usable entry and executed from scratch.
    cache_misses: AtomicU64,
    /// Cache entries dropped because an ingest batch could not maintain them
    /// incrementally (non-distributive aggregates, or a stale source).
    cache_invalidations: AtomicU64,
    /// Ingest batches folded into a table (and into live cache entries).
    ingest_batches: AtomicU64,
    /// Bytes read from paged-table data files (buffer-pool misses and
    /// direct page reads). The disk-resident complement of `bytes_spilled`.
    bytes_read: AtomicU64,
    /// Pages read from paged-table data files (buffer-pool misses count
    /// once per miss; hits are free).
    pages_read: AtomicU64,
    /// Frames evicted from the buffer pool to admit new pages.
    pool_evictions: AtomicU64,
    /// Per-worker morsel accounting, appended once per worker per parallel
    /// run (guarded by a mutex: workers report once at exit, not per tuple).
    workers: Mutex<Vec<WorkerStats>>,
}

impl ScanStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_scan(&self) {
        self.scans.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_tuples(&self, n: u64) {
        self.tuples_scanned.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_probes(&self, n: u64) {
        self.probes.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_updates(&self, n: u64) {
        self.updates.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_cancel_poll(&self) {
        self.cancel_polls.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_morsel_retry(&self) {
        self.morsel_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bytes_charged(&self, n: u64) {
        self.bytes_charged.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_batch_fallback(&self) {
        self.batch_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Attribute one batch fallback to a diagnosable cause. Independent of
    /// [`Self::record_batch_fallback`] (which stays one-per-batch): a single
    /// batch can hit several causes, each recorded once.
    pub fn record_fallback_reason(&self, reason: FallbackReason) {
        let counter = match reason {
            FallbackReason::Theta => &self.fallback_theta,
            FallbackReason::Prefilter => &self.fallback_prefilter,
            FallbackReason::Key => &self.fallback_key,
            FallbackReason::Agg => &self.fallback_agg,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one condition/aggregate set handled by the fused generalized
    /// executor; `scalar` marks a per-set fallback to the tuple-at-a-time
    /// path.
    pub fn record_gen_set(&self, scalar: bool) {
        self.gen_sets.fetch_add(1, Ordering::Relaxed);
        if scalar {
            self.gen_set_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one spill partition written: `n` bytes landed in a run file.
    pub fn record_spill_partition(&self, n: u64) {
        self.spill_partitions.fetch_add(1, Ordering::Relaxed);
        self.bytes_spilled.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_spill_read_bytes(&self, n: u64) {
        self.spill_read_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one `Auto` plan decision: the modeled batch coverage (‰ of
    /// per-tuple work units with a typed kernel) and whether the vectorized
    /// evaluator was chosen. Coverage and choice keep the latest value so
    /// explain output reflects the decision that produced the run.
    pub fn record_auto_decision(&self, coverage_permille: u64, batched: bool) {
        self.auto_decisions.fetch_add(1, Ordering::Relaxed);
        self.auto_coverage_permille
            .store(coverage_permille, Ordering::Relaxed);
        self.auto_batched.store(batched as u64, Ordering::Relaxed);
    }

    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_rollup_hit(&self) {
        self.cache_rollup_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_invalidations(&self, n: u64) {
        self.cache_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_ingest_batch(&self) {
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one page read from a paged table's data file (`n` bytes).
    pub fn record_page_read(&self, n: u64) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_pool_eviction(&self) {
        self.pool_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Append one worker's morsel accounting (called once per worker at the
    /// end of a parallel run). A poisoned mutex is recovered: stats recording
    /// must never add a second failure to an already-failing run.
    pub fn record_worker(&self, worker: WorkerStats) {
        self.workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(worker);
    }

    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    pub fn tuples_scanned(&self) -> u64 {
        self.tuples_scanned.load(Ordering::Relaxed)
    }

    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    pub fn cancel_polls(&self) -> u64 {
        self.cancel_polls.load(Ordering::Relaxed)
    }

    pub fn morsel_retries(&self) -> u64 {
        self.morsel_retries.load(Ordering::Relaxed)
    }

    pub fn bytes_charged(&self) -> u64 {
        self.bytes_charged.load(Ordering::Relaxed)
    }

    pub fn degradations(&self) -> u64 {
        self.degradations.load(Ordering::Relaxed)
    }

    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    pub fn batch_fallbacks(&self) -> u64 {
        self.batch_fallbacks.load(Ordering::Relaxed)
    }

    pub fn fallback_theta(&self) -> u64 {
        self.fallback_theta.load(Ordering::Relaxed)
    }

    pub fn fallback_prefilter(&self) -> u64 {
        self.fallback_prefilter.load(Ordering::Relaxed)
    }

    pub fn fallback_key(&self) -> u64 {
        self.fallback_key.load(Ordering::Relaxed)
    }

    pub fn fallback_agg(&self) -> u64 {
        self.fallback_agg.load(Ordering::Relaxed)
    }

    pub fn gen_sets(&self) -> u64 {
        self.gen_sets.load(Ordering::Relaxed)
    }

    pub fn gen_set_fallbacks(&self) -> u64 {
        self.gen_set_fallbacks.load(Ordering::Relaxed)
    }

    pub fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled.load(Ordering::Relaxed)
    }

    pub fn spill_partitions(&self) -> u64 {
        self.spill_partitions.load(Ordering::Relaxed)
    }

    pub fn spill_read_bytes(&self) -> u64 {
        self.spill_read_bytes.load(Ordering::Relaxed)
    }

    pub fn auto_decisions(&self) -> u64 {
        self.auto_decisions.load(Ordering::Relaxed)
    }

    pub fn auto_coverage_permille(&self) -> u64 {
        self.auto_coverage_permille.load(Ordering::Relaxed)
    }

    pub fn auto_batched(&self) -> bool {
        self.auto_batched.load(Ordering::Relaxed) != 0
    }

    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    pub fn cache_rollup_hits(&self) -> u64 {
        self.cache_rollup_hits.load(Ordering::Relaxed)
    }

    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    pub fn cache_invalidations(&self) -> u64 {
        self.cache_invalidations.load(Ordering::Relaxed)
    }

    pub fn ingest_batches(&self) -> u64 {
        self.ingest_batches.load(Ordering::Relaxed)
    }

    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    pub fn pool_evictions(&self) -> u64 {
        self.pool_evictions.load(Ordering::Relaxed)
    }

    /// Per-worker morsel accounting recorded so far.
    pub fn workers(&self) -> Vec<WorkerStats> {
        self.workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.scans.store(0, Ordering::Relaxed);
        self.tuples_scanned.store(0, Ordering::Relaxed);
        self.probes.store(0, Ordering::Relaxed);
        self.updates.store(0, Ordering::Relaxed);
        self.cancel_polls.store(0, Ordering::Relaxed);
        self.morsel_retries.store(0, Ordering::Relaxed);
        self.bytes_charged.store(0, Ordering::Relaxed);
        self.degradations.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batch_fallbacks.store(0, Ordering::Relaxed);
        self.fallback_theta.store(0, Ordering::Relaxed);
        self.fallback_prefilter.store(0, Ordering::Relaxed);
        self.fallback_key.store(0, Ordering::Relaxed);
        self.fallback_agg.store(0, Ordering::Relaxed);
        self.gen_sets.store(0, Ordering::Relaxed);
        self.gen_set_fallbacks.store(0, Ordering::Relaxed);
        self.bytes_spilled.store(0, Ordering::Relaxed);
        self.spill_partitions.store(0, Ordering::Relaxed);
        self.spill_read_bytes.store(0, Ordering::Relaxed);
        self.auto_decisions.store(0, Ordering::Relaxed);
        self.auto_coverage_permille.store(0, Ordering::Relaxed);
        self.auto_batched.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_rollup_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_invalidations.store(0, Ordering::Relaxed);
        self.ingest_batches.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.pages_read.store(0, Ordering::Relaxed);
        self.pool_evictions.store(0, Ordering::Relaxed);
        self.workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    /// Snapshot as a plain struct for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            scans: self.scans(),
            tuples_scanned: self.tuples_scanned(),
            probes: self.probes(),
            updates: self.updates(),
            cancel_polls: self.cancel_polls(),
            morsel_retries: self.morsel_retries(),
            bytes_charged: self.bytes_charged(),
            degradations: self.degradations(),
            batches: self.batches(),
            batch_fallbacks: self.batch_fallbacks(),
            fallback_theta: self.fallback_theta(),
            fallback_prefilter: self.fallback_prefilter(),
            fallback_key: self.fallback_key(),
            fallback_agg: self.fallback_agg(),
            gen_sets: self.gen_sets(),
            gen_set_fallbacks: self.gen_set_fallbacks(),
            bytes_spilled: self.bytes_spilled(),
            spill_partitions: self.spill_partitions(),
            spill_read_bytes: self.spill_read_bytes(),
            auto_decisions: self.auto_decisions(),
            auto_coverage_permille: self.auto_coverage_permille(),
            auto_batched: self.auto_batched(),
            cache_hits: self.cache_hits(),
            cache_rollup_hits: self.cache_rollup_hits(),
            cache_misses: self.cache_misses(),
            cache_invalidations: self.cache_invalidations(),
            ingest_batches: self.ingest_batches(),
            bytes_read: self.bytes_read(),
            pages_read: self.pages_read(),
            pool_evictions: self.pool_evictions(),
            workers: self.workers(),
        }
    }
}

/// Why a vectorized batch (or one of its sub-steps) had to delegate to the
/// scalar interpreter. Recorded per batch per cause so coverage gaps are
/// diagnosable from `EXPLAIN ANALYZE` instead of showing up as an opaque
/// fallback count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// θ (or its bound-per-base-row form) has no batch evaluation.
    Theta,
    /// The Theorem 4.2 prefilter has no batch evaluation.
    Prefilter,
    /// A hash-probe key expression could not evaluate over this chunk's
    /// columns (untyped column, non-batchable shape).
    Key,
    /// An aggregate input column had no typed kernel representation.
    Agg,
}

/// A point-in-time copy of [`ScanStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub scans: u64,
    pub tuples_scanned: u64,
    pub probes: u64,
    pub updates: u64,
    /// Cancellation/deadline polls performed by the query governor.
    pub cancel_polls: u64,
    /// Morsels re-executed after a caught worker panic.
    pub morsel_retries: u64,
    /// Bytes charged against the memory budget (cumulative).
    pub bytes_charged: u64,
    /// Budget breaches answered by Theorem 4.1 re-partitioning.
    pub degradations: u64,
    /// Columnar batches processed by the vectorized executor (0 for scalar
    /// evaluation).
    pub batches: u64,
    /// Batches that fell back to the scalar interpreter for some sub-step.
    pub batch_fallbacks: u64,
    /// Fallbacks caused by an un-batchable θ shape.
    pub fallback_theta: u64,
    /// Fallbacks caused by an un-batchable prefilter.
    pub fallback_prefilter: u64,
    /// Fallbacks caused by an unevaluable probe-key expression.
    pub fallback_key: u64,
    /// Fallbacks caused by an untyped aggregate input column.
    pub fallback_agg: u64,
    /// Condition/aggregate sets executed by the fused generalized executor.
    pub gen_sets: u64,
    /// Of those, sets delegated wholly to the scalar path.
    pub gen_set_fallbacks: u64,
    /// Bytes written to spill run files (0 when nothing spilled).
    pub bytes_spilled: u64,
    /// Spill partitions (run files) written.
    pub spill_partitions: u64,
    /// Bytes read back from spill run files.
    pub spill_read_bytes: u64,
    /// `Auto` batch-coverage decisions made (one per Auto-planned run).
    pub auto_decisions: u64,
    /// Modeled batch coverage (‰ of per-tuple work units) behind the most
    /// recent `Auto` decision.
    pub auto_coverage_permille: u64,
    /// Whether the most recent `Auto` decision chose the vectorized plan.
    pub auto_batched: bool,
    /// Queries answered verbatim from a materialized cuboid-cache entry.
    pub cache_hits: u64,
    /// Queries answered by Theorem 4.5 roll-up from a finer cached cuboid.
    pub cache_rollup_hits: u64,
    /// Cacheable queries that executed from scratch (no usable entry).
    pub cache_misses: u64,
    /// Cache entries dropped by ingest instead of maintained incrementally.
    pub cache_invalidations: u64,
    /// Ingest batches folded into a table.
    pub ingest_batches: u64,
    /// Bytes read from paged-table data files.
    pub bytes_read: u64,
    /// Pages read from paged-table data files (buffer-pool misses).
    pub pages_read: u64,
    /// Buffer-pool frames evicted to admit new pages.
    pub pool_evictions: u64,
    /// Per-worker morsel/steal/merge counters from parallel runs (empty for
    /// serial evaluation).
    pub workers: Vec<WorkerStats>,
}

impl StatsSnapshot {
    /// True if any governor counter is non-zero (the governor was active).
    pub fn governor_active(&self) -> bool {
        self.cancel_polls > 0
            || self.morsel_retries > 0
            || self.bytes_charged > 0
            || self.degradations > 0
    }

    /// True if the run spilled partitions to disk (or read them back).
    pub fn spill_active(&self) -> bool {
        self.bytes_spilled > 0 || self.spill_partitions > 0 || self.spill_read_bytes > 0
    }

    /// True if any batch fallback has an attributed cause.
    pub fn fallback_reasons_active(&self) -> bool {
        self.fallback_theta > 0
            || self.fallback_prefilter > 0
            || self.fallback_key > 0
            || self.fallback_agg > 0
    }

    /// True if the cuboid cache or the ingest path touched this query.
    pub fn cache_active(&self) -> bool {
        self.cache_hits > 0
            || self.cache_rollup_hits > 0
            || self.cache_misses > 0
            || self.cache_invalidations > 0
            || self.ingest_batches > 0
    }

    /// True if the run touched the paged table store (disk-resident scans).
    pub fn paged_active(&self) -> bool {
        self.bytes_read > 0 || self.pages_read > 0 || self.pool_evictions > 0
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scans={} tuples={} probes={} updates={}",
            self.scans, self.tuples_scanned, self.probes, self.updates
        )?;
        if self.batches > 0 {
            write!(
                f,
                "\n  vectorized: batches={} fallbacks={}",
                self.batches, self.batch_fallbacks
            )?;
            if self.fallback_reasons_active() {
                write!(
                    f,
                    "\n  fallback reasons: theta={} prefilter={} key={} agg={}",
                    self.fallback_theta,
                    self.fallback_prefilter,
                    self.fallback_key,
                    self.fallback_agg
                )?;
            }
        }
        if self.gen_sets > 0 {
            write!(
                f,
                "\n  generalized: sets={} scalar_sets={}",
                self.gen_sets, self.gen_set_fallbacks
            )?;
        }
        if self.auto_decisions > 0 {
            write!(
                f,
                "\n  auto: coverage={}‰ plan={}",
                self.auto_coverage_permille,
                if self.auto_batched {
                    "vectorized"
                } else {
                    "scalar"
                }
            )?;
        }
        if self.governor_active() {
            write!(
                f,
                "\n  governor: cancel_polls={} retries={} bytes_charged={} degradations={}",
                self.cancel_polls, self.morsel_retries, self.bytes_charged, self.degradations
            )?;
        }
        if self.spill_active() {
            write!(
                f,
                "\n  spill: partitions={} bytes_spilled={} read_bytes={}",
                self.spill_partitions, self.bytes_spilled, self.spill_read_bytes
            )?;
        }
        if self.cache_active() {
            write!(
                f,
                "\n  cache: hits={} rollup_hits={} misses={} invalidations={} ingest_batches={}",
                self.cache_hits,
                self.cache_rollup_hits,
                self.cache_misses,
                self.cache_invalidations,
                self.ingest_batches
            )?;
        }
        if self.paged_active() {
            write!(
                f,
                "\n  paged: pages_read={} bytes_read={} pool_evictions={}",
                self.pages_read, self.bytes_read, self.pool_evictions
            )?;
        }
        for w in &self.workers {
            write!(f, "\n  {w}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Table statistics (catalog-resident min/max/NDV)
// ---------------------------------------------------------------------------

/// Bits in a [`NdvSketch`] bitmap: 4096 bits = 512 bytes per column. Linear
/// counting stays within a few percent up to ~NDV ≈ m·ln m ≈ 34k distinct
/// values per column, plenty for the cost model's selectivity guesses.
const NDV_SKETCH_BITS: usize = 4096;

/// A linear-counting NDV sketch (Whang et al.): hash each value into a fixed
/// bitmap and estimate distinct count from the fraction of bits still zero.
/// Unlike a `HashSet`, folding an ingest batch in never reallocates, and two
/// sketches over disjoint row sets merge by OR — exactly the shape the
/// incremental ingest path needs.
#[derive(Clone, PartialEq, Eq)]
pub struct NdvSketch {
    bits: [u64; NDV_SKETCH_BITS / 64],
}

impl Default for NdvSketch {
    fn default() -> Self {
        NdvSketch {
            bits: [0u64; NDV_SKETCH_BITS / 64],
        }
    }
}

impl std::fmt::Debug for NdvSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NdvSketch(~{})", self.estimate())
    }
}

impl NdvSketch {
    /// FNV-1a over a type tag plus the value's canonical bytes, so `Int(1)`
    /// and `Float(1.0)` count as distinct values (they compare unequal as
    /// group keys too).
    fn hash_value(v: &crate::value::Value) -> u64 {
        use crate::value::Value;
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        match v {
            Value::Null => eat(0),
            Value::All => eat(1),
            Value::Int(i) => {
                eat(2);
                i.to_le_bytes().into_iter().for_each(&mut eat);
            }
            Value::Float(x) => {
                eat(3);
                x.to_bits().to_le_bytes().into_iter().for_each(&mut eat);
            }
            Value::Str(s) => {
                eat(4);
                s.as_bytes().iter().copied().for_each(&mut eat);
            }
            Value::Bool(b) => {
                eat(5);
                eat(*b as u8);
            }
        }
        h
    }

    /// Record one value.
    pub fn insert(&mut self, v: &crate::value::Value) {
        let bit = (Self::hash_value(v) % NDV_SKETCH_BITS as u64) as usize;
        self.bits[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Linear-counting estimate of the number of distinct values recorded.
    pub fn estimate(&self) -> u64 {
        let m = NDV_SKETCH_BITS as f64;
        let zeros = self
            .bits
            .iter()
            .map(|w| w.count_zeros() as u64)
            .sum::<u64>() as f64;
        if zeros == 0.0 {
            // Saturated: every bit set. Report the sketch's credible ceiling.
            return (m * m.ln()).round() as u64;
        }
        (m * (m / zeros).ln()).round() as u64
    }
}

/// Per-column statistics: value bounds, null count, and an NDV estimate.
/// String columns additionally carry the table's string dictionary, which
/// doubles as an exact NDV count and as the intern pool the ingest path grows
/// so appended rows share `Arc<str>` allocations with resident rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name (unqualified, as in the table schema).
    pub name: String,
    /// Smallest non-NULL, non-ALL value seen (`Value`'s total order).
    pub min: Option<crate::value::Value>,
    /// Largest non-NULL, non-ALL value seen.
    pub max: Option<crate::value::Value>,
    /// Number of SQL NULLs in the column.
    pub null_count: u64,
    /// Distinct strings, for `Str` columns (exact NDV + intern pool).
    dict: Option<std::collections::HashSet<std::sync::Arc<str>>>,
    sketch: NdvSketch,
}

impl ColumnStats {
    fn new(name: &str, dtype: crate::schema::DataType) -> Self {
        ColumnStats {
            name: name.to_string(),
            min: None,
            max: None,
            null_count: 0,
            dict: matches!(dtype, crate::schema::DataType::Str)
                .then(std::collections::HashSet::new),
            sketch: NdvSketch::default(),
        }
    }

    /// Fold one value into the column's bounds, null count, and NDV state.
    /// For dictionary columns the value is first interned: if an equal string
    /// is already resident its `Arc` replaces the incoming one, otherwise the
    /// dictionary grows.
    fn fold(&mut self, v: &mut crate::value::Value) {
        use crate::value::Value;
        if let (Some(dict), Value::Str(s)) = (self.dict.as_mut(), &mut *v) {
            match dict.get(s.as_ref()) {
                Some(resident) => *s = resident.clone(),
                None => {
                    dict.insert(s.clone());
                }
            }
        }
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        if v.is_all() {
            return;
        }
        let v = &*v;
        self.sketch.insert(v);
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Estimated number of distinct non-NULL values (exact for `Str` columns,
    /// linear-counting estimate otherwise).
    pub fn ndv(&self) -> u64 {
        match &self.dict {
            Some(d) => d.len() as u64,
            None => self.sketch.estimate(),
        }
    }

    /// Number of distinct strings resident in the dictionary (`Str` columns).
    pub fn dict_len(&self) -> Option<usize> {
        self.dict.as_ref().map(|d| d.len())
    }
}

/// Catalog-resident statistics for one table: row count plus per-column
/// [`ColumnStats`]. Computed in one pass at `register` time and *folded
/// forward* on every ingest batch — never recomputed from scratch — so the
/// cost model reads bounds/NDV that are exactly as fresh as the data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    rows: u64,
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// One-pass statistics over a relation (used at catalog registration).
    pub fn compute(rel: &crate::relation::Relation) -> Self {
        let mut s = TableStats {
            rows: 0,
            columns: rel
                .schema()
                .fields()
                .iter()
                .map(|f| ColumnStats::new(&f.name, f.dtype))
                .collect(),
        };
        // Folding borrows values mutably only to intern strings; stats
        // computation never changes what a value *is*.
        let mut rows: Vec<crate::row::Row> = rel.rows().to_vec();
        s.fold_rows(&mut rows);
        s
    }

    /// Fold an ingest batch into the statistics, interning string values
    /// against the dictionary in place (the caller appends the same rows to
    /// the relation afterwards, so resident and incoming strings share
    /// allocations).
    pub fn fold_rows(&mut self, rows: &mut [crate::row::Row]) {
        for row in rows.iter_mut() {
            self.rows += 1;
            for (i, col) in self.columns.iter_mut().enumerate() {
                if let Some(v) = row.values_mut().get_mut(i) {
                    col.fold(v);
                }
            }
        }
    }

    /// Total rows folded into these statistics.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Per-column statistics, in schema order.
    pub fn columns(&self) -> &[ColumnStats] {
        &self.columns
    }

    /// Statistics for the named column.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ScanStats::new();
        s.record_scan();
        s.record_scan();
        s.record_tuples(100);
        s.record_probes(300);
        s.record_updates(50);
        assert_eq!(s.scans(), 2);
        assert_eq!(s.tuples_scanned(), 100);
        assert_eq!(s.probes(), 300);
        assert_eq!(s.updates(), 50);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_summed() {
        let s = ScanStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.record_probes(1);
                    }
                });
            }
        });
        assert_eq!(s.probes(), 8000);
    }

    #[test]
    fn snapshot_displays() {
        let s = ScanStats::new();
        s.record_tuples(7);
        assert!(s.snapshot().to_string().contains("tuples=7"));
    }

    #[test]
    fn batch_counters_accumulate_and_display() {
        let s = ScanStats::new();
        assert!(!s.snapshot().to_string().contains("vectorized:"));
        s.record_batch();
        s.record_batch();
        s.record_batch_fallback();
        let snap = s.snapshot();
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batch_fallbacks, 1);
        // Batch activity alone is not governor activity.
        assert!(!snap.governor_active());
        assert!(snap
            .to_string()
            .contains("vectorized: batches=2 fallbacks=1"));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn fallback_reasons_accumulate_and_display() {
        let s = ScanStats::new();
        s.record_batch();
        s.record_batch_fallback();
        // No attributed cause yet: the breakdown line stays hidden.
        assert!(!s.snapshot().to_string().contains("fallback reasons:"));
        s.record_fallback_reason(FallbackReason::Theta);
        s.record_fallback_reason(FallbackReason::Theta);
        s.record_fallback_reason(FallbackReason::Prefilter);
        s.record_fallback_reason(FallbackReason::Key);
        s.record_fallback_reason(FallbackReason::Agg);
        let snap = s.snapshot();
        assert_eq!(snap.fallback_theta, 2);
        assert_eq!(snap.fallback_prefilter, 1);
        assert_eq!(snap.fallback_key, 1);
        assert_eq!(snap.fallback_agg, 1);
        assert!(snap.fallback_reasons_active());
        assert!(snap
            .to_string()
            .contains("fallback reasons: theta=2 prefilter=1 key=1 agg=1"));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn generalized_set_counters_accumulate_and_display() {
        let s = ScanStats::new();
        assert!(!s.snapshot().to_string().contains("generalized:"));
        s.record_gen_set(false);
        s.record_gen_set(false);
        s.record_gen_set(true);
        let snap = s.snapshot();
        assert_eq!(snap.gen_sets, 3);
        assert_eq!(snap.gen_set_fallbacks, 1);
        assert!(snap
            .to_string()
            .contains("generalized: sets=3 scalar_sets=1"));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn auto_decision_keeps_latest_and_displays() {
        let s = ScanStats::new();
        assert!(!s.snapshot().to_string().contains("auto:"));
        s.record_auto_decision(500, false);
        s.record_auto_decision(857, true);
        let snap = s.snapshot();
        assert_eq!(snap.auto_decisions, 2);
        assert_eq!(snap.auto_coverage_permille, 857);
        assert!(snap.auto_batched);
        assert!(snap
            .to_string()
            .contains("auto: coverage=857‰ plan=vectorized"));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn spill_counters_accumulate_and_display() {
        let s = ScanStats::new();
        assert!(!s.snapshot().spill_active());
        assert!(!s.snapshot().to_string().contains("spill:"));
        s.record_spill_partition(700);
        s.record_spill_partition(324);
        s.record_spill_read_bytes(1024);
        let snap = s.snapshot();
        assert!(snap.spill_active());
        // Spilling alone is not governor activity (and vice versa).
        assert!(!snap.governor_active());
        assert_eq!(snap.spill_partitions, 2);
        assert_eq!(snap.bytes_spilled, 1024);
        assert_eq!(snap.spill_read_bytes, 1024);
        assert!(snap
            .to_string()
            .contains("spill: partitions=2 bytes_spilled=1024 read_bytes=1024"));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn cache_counters_accumulate_and_display() {
        let s = ScanStats::new();
        assert!(!s.snapshot().cache_active());
        assert!(!s.snapshot().to_string().contains("cache:"));
        s.record_cache_hit();
        s.record_cache_hit();
        s.record_cache_rollup_hit();
        s.record_cache_miss();
        s.record_cache_invalidations(3);
        s.record_ingest_batch();
        let snap = s.snapshot();
        assert!(snap.cache_active());
        // Cache activity alone is neither governor nor spill activity.
        assert!(!snap.governor_active());
        assert!(!snap.spill_active());
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_rollup_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_invalidations, 3);
        assert_eq!(snap.ingest_batches, 1);
        assert!(snap
            .to_string()
            .contains("cache: hits=2 rollup_hits=1 misses=1 invalidations=3 ingest_batches=1"));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn governor_counters_accumulate_and_display() {
        let s = ScanStats::new();
        assert!(!s.snapshot().governor_active());
        assert!(!s.snapshot().to_string().contains("governor:"));
        s.record_cancel_poll();
        s.record_morsel_retry();
        s.record_bytes_charged(1024);
        s.record_degradation();
        let snap = s.snapshot();
        assert!(snap.governor_active());
        assert_eq!(snap.cancel_polls, 1);
        assert_eq!(snap.morsel_retries, 1);
        assert_eq!(snap.bytes_charged, 1024);
        assert_eq!(snap.degradations, 1);
        assert!(snap
            .to_string()
            .contains("governor: cancel_polls=1 retries=1 bytes_charged=1024 degradations=1"));
        s.reset();
        assert!(!s.snapshot().governor_active());
    }
}
