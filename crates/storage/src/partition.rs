//! Partitioning helpers for Theorem 4.1 (`MD(B,R,l,θ) = ⋃ᵢ MD(Bᵢ,R,l,θ)`).
//!
//! Three partitioners cover the paper's uses:
//!
//! * [`chunk`] — arbitrary equal-size partitioning, valid for *any* θ (Thm 4.1
//!   places no restriction on how `B` is split). Used by in-memory evaluation.
//! * [`by_hash`] — hash partitioning on key columns; pairs with Observation 4.1
//!   when θ has the matching equality conjuncts, so each `Bᵢ` only needs the
//!   corresponding `Rᵢ` slice.
//! * [`by_ranges`] — range partitioning on one column (the paper's example:
//!   month 1–3, 4–8, 9–12), likewise pushable to `R` by Observation 4.1.

use crate::relation::Relation;
use crate::value::Value;

/// Split into `m` near-equal chunks preserving row order. Always a valid
/// Theorem 4.1 partition. Returns fewer than `m` parts when `|B| < m`, and a
/// single empty part for an empty input so callers always get ≥1 part.
pub fn chunk(relation: &Relation, m: usize) -> Vec<Relation> {
    let m = m.max(1);
    let n = relation.len();
    if n == 0 {
        return vec![Relation::empty(relation.schema().clone())];
    }
    let m = m.min(n);
    let base = n / m;
    let extra = n % m;
    let mut parts = Vec::with_capacity(m);
    let mut start = 0;
    for i in 0..m {
        let size = base + usize::from(i < extra);
        let rows = relation.rows()[start..start + size].to_vec();
        parts.push(Relation::from_rows(relation.schema().clone(), rows));
        start += size;
    }
    parts
}

/// Hash-partition on the named key columns into `m` buckets.
pub fn by_hash(relation: &Relation, names: &[&str], m: usize) -> crate::Result<Vec<Relation>> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let m = m.max(1);
    let idx = relation.schema().indices_of(names)?;
    let mut parts: Vec<Relation> = (0..m)
        .map(|_| Relation::empty(relation.schema().clone()))
        .collect();
    for row in relation.iter() {
        let mut h = DefaultHasher::new();
        row.key(&idx).hash(&mut h);
        let bucket = (h.finish() % m as u64) as usize;
        parts[bucket].push_unchecked(row.clone());
    }
    Ok(parts)
}

/// An inclusive range over one column's values, used by [`by_ranges`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRange {
    pub lo: Value,
    pub hi: Value,
}

impl ValueRange {
    pub fn new(lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        ValueRange {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Whether `v` lies in `[lo, hi]` under the total order of [`Value`].
    pub fn contains(&self, v: &Value) -> bool {
        *v >= self.lo && *v <= self.hi
    }
}

/// Range-partition on a named column. Rows matching no range are dropped (the
/// caller chooses ranges covering the domain when a full partition is needed).
/// Ranges must be disjoint for the result to be a partition; [`ranges_are_disjoint`]
/// checks this.
pub fn by_ranges(
    relation: &Relation,
    name: &str,
    ranges: &[ValueRange],
) -> crate::Result<Vec<Relation>> {
    let col = relation.schema().index_of(name)?;
    let mut parts: Vec<Relation> = ranges
        .iter()
        .map(|_| Relation::empty(relation.schema().clone()))
        .collect();
    for row in relation.iter() {
        if let Some(i) = ranges.iter().position(|rg| rg.contains(&row[col])) {
            parts[i].push_unchecked(row.clone());
        }
    }
    Ok(parts)
}

/// Check that the given ranges are pairwise disjoint (so range partitioning
/// yields a true partition).
pub fn ranges_are_disjoint(ranges: &[ValueRange]) -> bool {
    for (i, a) in ranges.iter().enumerate() {
        for b in ranges.iter().skip(i + 1) {
            let overlap = a.lo <= b.hi && b.lo <= a.hi;
            if overlap {
                return false;
            }
        }
    }
    true
}

/// Partition on the distinct values of one column: one part per value, in
/// first-appearance order, with the list of values alongside. This is the
/// partition used by the Ross–Srivastava cube algorithm (`σ_{Dᵢ=z}` for every
/// value `z` of dimension `Dᵢ`).
pub fn by_distinct_values(
    relation: &Relation,
    name: &str,
) -> crate::Result<Vec<(Value, Relation)>> {
    let col = relation.schema().index_of(name)?;
    let mut order: Vec<Value> = Vec::new();
    let mut parts: std::collections::HashMap<Value, Relation> = std::collections::HashMap::new();
    for row in relation.iter() {
        let v = row[col].clone();
        parts
            .entry(v.clone())
            .or_insert_with(|| {
                order.push(v.clone());
                Relation::empty(relation.schema().clone())
            })
            .push_unchecked(row.clone());
    }
    Ok(order
        .into_iter()
        .map(|v| {
            let part = parts.remove(&v).expect("value recorded in order");
            (v, part)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::{DataType, Schema};

    fn rel(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("m", DataType::Int)]);
        Relation::from_rows(
            schema,
            (0..n).map(|i| Row::from_values([i, i % 12 + 1])).collect(),
        )
    }

    #[test]
    fn chunk_covers_all_rows() {
        let r = rel(10);
        let parts = chunk(&r, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, 10);
        assert_eq!(parts[0].len(), 4); // 4,3,3
    }

    #[test]
    fn chunk_more_parts_than_rows() {
        let r = rel(2);
        let parts = chunk(&r, 5);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn chunk_empty_relation_yields_one_empty_part() {
        let r = rel(0);
        let parts = chunk(&r, 4);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }

    #[test]
    fn hash_partition_is_a_partition() {
        let r = rel(100);
        let parts = by_hash(&r, &["k"], 7).unwrap();
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, 100);
        // Same key always lands in the same bucket.
        let parts2 = by_hash(&r, &["k"], 7).unwrap();
        for (a, b) in parts.iter().zip(&parts2) {
            assert!(a.same_multiset(b));
        }
    }

    #[test]
    fn range_partition_months() {
        let r = rel(24);
        let ranges = [
            ValueRange::new(1i64, 3i64),
            ValueRange::new(4i64, 8i64),
            ValueRange::new(9i64, 12i64),
        ];
        assert!(ranges_are_disjoint(&ranges));
        let parts = by_ranges(&r, "m", &ranges).unwrap();
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, 24);
        assert_eq!(parts[0].len(), 6); // months 1..=3 appear twice each
    }

    #[test]
    fn overlapping_ranges_detected() {
        let ranges = [ValueRange::new(1i64, 5i64), ValueRange::new(5i64, 9i64)];
        assert!(!ranges_are_disjoint(&ranges));
    }

    #[test]
    fn distinct_value_partition() {
        let r = rel(24);
        let parts = by_distinct_values(&r, "m").unwrap();
        assert_eq!(parts.len(), 12);
        for (v, p) in &parts {
            assert_eq!(p.len(), 2);
            assert!(p.iter().all(|row| row[1] == *v));
        }
    }
}
