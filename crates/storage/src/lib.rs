//! # mdj-storage
//!
//! Relational substrate for the MD-join reproduction (Chatziantoniou & Johnson,
//! ICDE 2001). Everything here is built from scratch: typed values (including the
//! `ALL` pseudo-value of Gray et al. used by data cubes), schemas, rows, in-memory
//! relations, hash and sorted (clustered) indexes, partitioning helpers, a tiny
//! catalog, CSV I/O, and scan accounting used by the benchmark harness.
//!
//! The substrate is deliberately row-oriented and in-memory: the paper's
//! optimizations are about *plan shape* (number of scans, tuples touched, probes
//! per tuple), which this substrate measures directly via [`stats::ScanStats`].

pub mod catalog;
mod codec;
pub mod columnar;
pub mod csv;
pub mod error;
pub mod hash;
pub mod index;
pub mod pager;
pub mod partition;
pub mod relation;
pub mod row;
pub mod schema;
pub mod spill;
pub mod stats;
pub mod value;

pub use catalog::{Catalog, IngestOutcome};
pub use columnar::{Column, ColumnarChunk};
pub use error::{Result, StorageError};
pub use hash::{KeyBuildHasher, KeyHasher};
pub use index::{HashIndex, SortedIndex};
pub use pager::{
    BufferPool, KeyBounds, PageMeta, PagedStore, PagedTable, PagerBootReport, PagerFaults,
    PinnedPage, PoolChargeFailed, PoolChargeHook,
};
pub use relation::Relation;
pub use row::Row;
pub use schema::{DataType, Field, Schema};
pub use spill::{read_run, sweep_orphans, write_run, RunFile, RunWriter, SweepReport};
pub use stats::{
    ColumnStats, FallbackReason, NdvSketch, ScanStats, StatsSnapshot, TableStats, WorkerStats,
};
pub use value::cmp_int_float;
pub use value::Value;
