//! Persistent paged table store: the disk-resident backend for §4's
//! clustered-index analysis.
//!
//! The paper's cost model (Theorem 4.2 pushdown, Observation 4.1 range
//! scans) assumes the detail relation lives on disk behind a clustered
//! index. This module supplies that setting: tables are stored as runs of
//! checksummed pages in clustered-key order, a durable manifest makes the
//! set of sealed pages crash-consistent, and a byte-budgeted buffer pool
//! with pin counts mediates every read.
//!
//! ## Page format (version 1)
//!
//! ```text
//! magic    b"MDJP"
//! version  u32 LE (= 1)
//! page_no  u64 LE
//! rows     u32 LE
//! payload  per row, per value: tag u8 + payload (same codec as spill runs)
//! trailer  checksum u64 LE (FNV-1a64 over all prior bytes)
//! ```
//!
//! Pages target a fixed byte size but are sealed on row boundaries, so a
//! single row larger than the target makes one oversized page rather than
//! splitting a row. The per-page min/max of the clustered key lives in the
//! *manifest*, so Theorem 4.2 pruning decides which pages to read without
//! touching the data file at all.
//!
//! ## Manifest and crash consistency
//!
//! `MANIFEST` (magic `MDJM`) records, per table, the schema, clustered key,
//! sealed byte length of the data file, and every page's `{offset, len,
//! rows, min, max}`, plus a monotone generation number and a trailing
//! checksum. Checkpoints are atomic: write `MANIFEST.tmp` + fsync, rename
//! the current manifest to `MANIFEST.prev`, rename the tmp into place, and
//! fsync the directory. Data pages are written and fsynced *before* the
//! manifest commits, so on reopen:
//!
//! * a leftover `MANIFEST.tmp` is never trusted and is removed;
//! * a corrupt or missing `MANIFEST` falls back to `MANIFEST.prev` (the
//!   last sealed generation);
//! * any data-file bytes beyond the manifest's sealed length are a torn
//!   append from a crashed writer and are truncated away;
//! * a data file *shorter* than its sealed length loses the pages that no
//!   longer fit (salvage keeps the prefix that does).
//!
//! Everything discarded is tallied in [`PagerBootReport`], mirroring the
//! spill layer's `sweep_orphans` contract. Checksums are verified on every
//! page fetch, so bit rot inside the sealed region still surfaces as
//! [`StorageError::PageCorrupt`] rather than wrong rows.
//!
//! ## Buffer pool invariants
//!
//! * a pinned frame is never evicted;
//! * eviction is strict LRU over unpinned frames (last-use tick order);
//! * residency never exceeds the byte budget, and each resident frame may
//!   additionally be charged to a shared [`PoolChargeHook`] (the engine's
//!   `MemoryPool`) whose grant is released on eviction or pool drop;
//! * when neither eviction nor the hook can make room the fetch fails with
//!   [`StorageError::PoolExhausted`] — never a panic, never silent
//!   truncation.

use crate::codec::{self, CorruptKind, Cursor};
use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::Schema;
use crate::stats::ScanStats;
use crate::value::{cmp_int_float, Value};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrder};
use std::sync::{Arc, Mutex, RwLock};

/// Page magic: "MD-Join Page".
const PAGE_MAGIC: [u8; 4] = *b"MDJP";
/// Manifest magic: "MD-Join Manifest".
const MANIFEST_MAGIC: [u8; 4] = *b"MDJM";
/// Current page/manifest format version.
pub const PAGER_FORMAT_VERSION: u32 = 1;

/// Manifest file names inside a data directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const MANIFEST_PREV: &str = "MANIFEST.prev";

/// Fixed page framing: magic + version + page_no + row count.
const PAGE_HEADER_BYTES: usize = 4 + 4 + 8 + 4;
const PAGE_TRAILER_BYTES: usize = 8;

/// Smallest accepted page-size target. Below this the framing overhead
/// dominates and page counts explode; the differential fuzz sweep uses
/// 256 B as its smallest size.
pub const MIN_PAGE_BYTES: u64 = 64;

fn io_err(path: &Path, detail: impl fmt::Display) -> StorageError {
    StorageError::PagerIo {
        path: path.display().to_string(),
        detail: detail.to_string(),
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StorageError {
    StorageError::PageCorrupt {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// Crash-simulation hooks for the write path. The engine's `FaultInjector`
/// implements this; an unarmed store uses the inert default. A triggered
/// site behaves like a process death at that instant: the write stops
/// mid-page (torn bytes stay on disk) and no in-memory state is updated.
pub trait PagerFaults: Send + Sync + fmt::Debug {
    /// Fail (and tear) the next page or manifest write.
    fn fail_page_write(&self) -> bool {
        false
    }
    /// Fail the next fsync, before durability is established.
    fn fail_fsync(&self) -> bool {
        false
    }
}

/// Inert default faults.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl PagerFaults for NoFaults {}

/// Admission hook charging buffer-pool residency to a shared budget (the
/// engine's `MemoryPool`). The returned opaque grant releases the charge
/// when dropped, i.e. on eviction or pool teardown.
pub trait PoolChargeHook: Send + Sync + fmt::Debug {
    fn reserve(&self, bytes: u64) -> std::result::Result<Box<dyn Any + Send>, PoolChargeFailed>;
}

/// Why a [`PoolChargeHook`] refused a reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolChargeFailed {
    pub needed: u64,
    pub available: u64,
    pub capacity: u64,
}

/// Total order on clustered-key values used for initial sort order and
/// per-page min/max tracking. Ranks: Null < All < numeric < Str < Bool;
/// numerics compare exactly (`i64`↔`f64` via [`cmp_int_float`]), floats by
/// `total_cmp` so NaN has a stable position.
pub fn key_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::All => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Bool(_) => 4,
        }
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.total_cmp(y),
        (Value::Int(x), Value::Float(y)) => {
            if y.is_nan() {
                Ordering::Less
            } else {
                cmp_int_float(*x, *y)
            }
        }
        (Value::Float(x), Value::Int(y)) => {
            if x.is_nan() {
                Ordering::Greater
            } else {
                cmp_int_float(*y, *x).reverse()
            }
        }
        (Value::Str(x), Value::Str(y)) => (**x).cmp(&**y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

/// Sealed-page metadata, persisted in the manifest so pruning never reads
/// the data file.
#[derive(Debug, Clone, PartialEq)]
pub struct PageMeta {
    /// Byte offset of the page inside the table's data file.
    pub offset: u64,
    /// Total page length in bytes (header + payload + checksum).
    pub len: u32,
    /// Rows in the page.
    pub rows: u32,
    /// Min/max clustered key among rows with non-NULL keys; `Value::Null`
    /// when the page has none (such a page can never satisfy a key
    /// comparison, so any bound prunes it).
    pub min_key: Value,
    pub max_key: Value,
}

/// A half-open/closed interval over the clustered key, extracted by the
/// executor from θ's detail-only conjuncts (Theorem 4.2). `None` on a side
/// means unbounded. Pruning is *sound, not complete*: a kept page may still
/// contain no matching rows (θ is re-evaluated per row), but a pruned page
/// provably cannot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeyBounds {
    /// Lower bound `(value, inclusive)`.
    pub lo: Option<(Value, bool)>,
    /// Upper bound `(value, inclusive)`.
    pub hi: Option<(Value, bool)>,
}

impl KeyBounds {
    pub fn is_unbounded(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Tighten with another lower bound (keep the stricter one).
    pub fn and_lo(&mut self, v: Value, inclusive: bool) {
        let stricter = match &self.lo {
            None => true,
            Some((cur, cur_incl)) => match v.sql_cmp(cur) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => *cur_incl && !inclusive,
                _ => false,
            },
        };
        if stricter {
            self.lo = Some((v, inclusive));
        }
    }

    /// Tighten with another upper bound (keep the stricter one).
    pub fn and_hi(&mut self, v: Value, inclusive: bool) {
        let stricter = match &self.hi {
            None => true,
            Some((cur, cur_incl)) => match v.sql_cmp(cur) {
                Some(Ordering::Less) => true,
                Some(Ordering::Equal) => *cur_incl && !inclusive,
                _ => false,
            },
        };
        if stricter {
            self.hi = Some((v, inclusive));
        }
    }

    /// Whether a page with this metadata may contain a matching row.
    pub fn admits_page(&self, meta: &PageMeta) -> bool {
        if self.is_unbounded() {
            return true;
        }
        // No non-NULL keys: a comparison predicate is never true on NULL,
        // so any bound rules the whole page out.
        if meta.min_key == Value::Null || meta.rows == 0 {
            return false;
        }
        if let Some((b, incl)) = &self.hi {
            // All keys ≥ min_key; if even min_key is past the upper bound
            // no row qualifies. Incomparable (None) keeps the page.
            match meta.min_key.sql_cmp(b) {
                Some(Ordering::Greater) => return false,
                Some(Ordering::Equal) if !incl => return false,
                _ => {}
            }
        }
        if let Some((b, incl)) = &self.lo {
            match meta.max_key.sql_cmp(b) {
                Some(Ordering::Less) => return false,
                Some(Ordering::Equal) if !incl => return false,
                _ => {}
            }
        }
        true
    }
}

/// What boot recovery found and discarded when opening a data directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagerBootReport {
    /// Tables loaded from the manifest.
    pub tables: u64,
    /// Torn-append bytes truncated from data-file tails.
    pub orphan_bytes: u64,
    /// Data files that had a torn tail.
    pub torn_tables: u64,
    /// Sealed pages dropped because their data file was short or missing.
    pub lost_pages: u64,
    /// `MANIFEST` was unreadable; state came from `MANIFEST.prev`.
    pub manifest_fallback: bool,
    /// Leftover `MANIFEST.tmp` files removed (never trusted).
    pub tmp_removed: u64,
}

impl PagerBootReport {
    /// Whether recovery had to discard or repair anything.
    pub fn recovered_anything(&self) -> bool {
        self.orphan_bytes != 0
            || self.torn_tables != 0
            || self.lost_pages != 0
            || self.manifest_fallback
            || self.tmp_removed != 0
    }
}

/// Encode one sealed page.
fn encode_page(page_no: u64, rows: &[Row]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(PAGE_HEADER_BYTES + 16 * rows.len());
    buf.extend_from_slice(&PAGE_MAGIC);
    buf.extend_from_slice(&PAGER_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&page_no.to_le_bytes());
    buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        for v in row.values() {
            codec::encode_value(&mut buf, v);
        }
    }
    let sum = codec::fnv1a(codec::FNV_OFFSET, &buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Decode and fully validate one page read back from `path`.
fn decode_page(
    data: &[u8],
    path: &Path,
    meta: &PageMeta,
    page_no: u64,
    arity: usize,
) -> Result<Vec<Row>> {
    if data.len() < PAGE_HEADER_BYTES + PAGE_TRAILER_BYTES {
        return Err(corrupt(
            path,
            format!("page {page_no} too short ({} bytes)", data.len()),
        ));
    }
    let (payload, trailer) = data.split_at(data.len() - PAGE_TRAILER_BYTES);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let actual = codec::fnv1a(codec::FNV_OFFSET, payload);
    if stored != actual {
        return Err(corrupt(
            path,
            format!(
                "page {page_no} checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ),
        ));
    }
    let mut c = Cursor::new(payload, path, CorruptKind::Page);
    if c.take(4)? != PAGE_MAGIC {
        return Err(corrupt(path, format!("page {page_no}: bad magic")));
    }
    let version = c.u32()?;
    if version != PAGER_FORMAT_VERSION {
        return Err(corrupt(
            path,
            format!("page {page_no}: unsupported version {version}"),
        ));
    }
    let stored_no = c.u64()?;
    if stored_no != page_no {
        return Err(corrupt(
            path,
            format!("page {page_no}: header says page {stored_no} (misdirected read)"),
        ));
    }
    let n_rows = c.u32()?;
    if n_rows != meta.rows {
        return Err(corrupt(
            path,
            format!("page {page_no}: {n_rows} rows, manifest says {}", meta.rows),
        ));
    }
    let mut rows = Vec::with_capacity(n_rows as usize);
    for _ in 0..n_rows {
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(c.value()?);
        }
        rows.push(Row::new(vals));
    }
    if c.pos != payload.len() {
        return Err(corrupt(
            path,
            format!("page {page_no}: trailing garbage inside sealed payload"),
        ));
    }
    Ok(rows)
}

/// Pack rows into sealed pages. Pages close on row boundaries when adding
/// the next row would exceed `page_bytes`; a single oversized row still
/// becomes one (oversized) page.
fn build_pages(
    rows: &[Row],
    key_col: usize,
    page_bytes: u64,
    first_page_no: u64,
    base_offset: u64,
) -> (Vec<PageMeta>, Vec<u8>) {
    let mut metas = Vec::new();
    let mut bytes = Vec::new();
    let mut offset = base_offset;
    let mut page_no = first_page_no;
    let mut current: Vec<Row> = Vec::new();
    let mut current_payload = 0usize;
    let frame = PAGE_HEADER_BYTES + PAGE_TRAILER_BYTES;

    let seal = |current: &mut Vec<Row>,
                page_no: &mut u64,
                offset: &mut u64,
                bytes: &mut Vec<u8>,
                metas: &mut Vec<PageMeta>| {
        if current.is_empty() {
            return;
        }
        let mut min_key = Value::Null;
        let mut max_key = Value::Null;
        for r in current.iter() {
            let k = &r.values()[key_col];
            if matches!(k, Value::Null) {
                continue;
            }
            if min_key == Value::Null || key_cmp(k, &min_key) == Ordering::Less {
                min_key = k.clone();
            }
            if max_key == Value::Null || key_cmp(k, &max_key) == Ordering::Greater {
                max_key = k.clone();
            }
        }
        let page = encode_page(*page_no, current);
        metas.push(PageMeta {
            offset: *offset,
            len: page.len() as u32,
            rows: current.len() as u32,
            min_key,
            max_key,
        });
        *offset += page.len() as u64;
        *page_no += 1;
        bytes.extend_from_slice(&page);
        current.clear();
    };

    let mut row_buf = Vec::new();
    for row in rows {
        row_buf.clear();
        for v in row.values() {
            codec::encode_value(&mut row_buf, v);
        }
        let next = frame + current_payload + row_buf.len();
        if !current.is_empty() && next as u64 > page_bytes {
            seal(
                &mut current,
                &mut page_no,
                &mut offset,
                &mut bytes,
                &mut metas,
            );
            current_payload = 0;
        }
        current_payload += row_buf.len();
        current.push(row.clone());
    }
    seal(
        &mut current,
        &mut page_no,
        &mut offset,
        &mut bytes,
        &mut metas,
    );
    (metas, bytes)
}

/// Per-table durable metadata as stored in the manifest.
#[derive(Debug, Clone)]
struct TableMeta {
    name: String,
    schema: Schema,
    key_col: usize,
    page_bytes: u64,
    /// Sealed length of the data file; bytes beyond this are torn garbage.
    data_len: u64,
    pages: Vec<PageMeta>,
}

fn encode_manifest(generation: u64, tables: &[TableMeta]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&PAGER_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for t in tables {
        buf.extend_from_slice(&(t.name.len() as u32).to_le_bytes());
        buf.extend_from_slice(t.name.as_bytes());
        codec::encode_schema(&mut buf, &t.schema);
        buf.extend_from_slice(&(t.key_col as u32).to_le_bytes());
        buf.extend_from_slice(&t.page_bytes.to_le_bytes());
        buf.extend_from_slice(&t.data_len.to_le_bytes());
        buf.extend_from_slice(&(t.pages.len() as u64).to_le_bytes());
        for p in &t.pages {
            buf.extend_from_slice(&p.offset.to_le_bytes());
            buf.extend_from_slice(&p.len.to_le_bytes());
            buf.extend_from_slice(&p.rows.to_le_bytes());
            codec::encode_value(&mut buf, &p.min_key);
            codec::encode_value(&mut buf, &p.max_key);
        }
    }
    let sum = codec::fnv1a(codec::FNV_OFFSET, &buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_manifest(data: &[u8], path: &Path) -> Result<(u64, Vec<TableMeta>)> {
    if data.len() < 4 + 4 + 8 + 4 + 8 {
        return Err(corrupt(
            path,
            format!("manifest too short ({} bytes)", data.len()),
        ));
    }
    let (payload, trailer) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let actual = codec::fnv1a(codec::FNV_OFFSET, payload);
    if stored != actual {
        return Err(corrupt(
            path,
            format!("manifest checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"),
        ));
    }
    let mut c = Cursor::new(payload, path, CorruptKind::Page);
    if c.take(4)? != MANIFEST_MAGIC {
        return Err(corrupt(path, "bad manifest magic"));
    }
    let version = c.u32()?;
    if version != PAGER_FORMAT_VERSION {
        return Err(corrupt(
            path,
            format!("unsupported manifest version {version}"),
        ));
    }
    let generation = c.u64()?;
    let n_tables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(1024));
    for _ in 0..n_tables {
        let name_len = c.u32()? as usize;
        let name = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| corrupt(path, "table name is not UTF-8"))?
            .to_string();
        let schema = c.schema()?;
        let key_col = c.u32()? as usize;
        if key_col >= schema.len() {
            return Err(corrupt(
                path,
                format!("table `{name}`: key column {key_col} out of range"),
            ));
        }
        let page_bytes = c.u64()?;
        let data_len = c.u64()?;
        let n_pages = c.u64()? as usize;
        let mut pages = Vec::with_capacity(n_pages.min(1 << 20));
        let mut expect_offset = 0u64;
        for _ in 0..n_pages {
            let offset = c.u64()?;
            let len = c.u32()?;
            let rows = c.u32()?;
            let min_key = c.value()?;
            let max_key = c.value()?;
            if offset != expect_offset {
                return Err(corrupt(
                    path,
                    format!("table `{name}`: page offsets are not contiguous"),
                ));
            }
            expect_offset = offset + len as u64;
            pages.push(PageMeta {
                offset,
                len,
                rows,
                min_key,
                max_key,
            });
        }
        if expect_offset != data_len {
            return Err(corrupt(
                path,
                format!(
                    "table `{name}`: pages cover {expect_offset} bytes but data_len is {data_len}"
                ),
            ));
        }
        tables.push(TableMeta {
            name,
            schema,
            key_col,
            page_bytes,
            data_len,
            pages,
        });
    }
    if c.pos != payload.len() {
        return Err(corrupt(path, "trailing garbage after manifest tables"));
    }
    Ok((generation, tables))
}

/// Process-wide unique table ids (buffer-pool frame keys).
static TABLE_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct TableState {
    pages: Vec<PageMeta>,
    row_count: u64,
    data_len: u64,
}

/// One disk-resident table: a data file of sealed pages plus its metadata.
/// Reads validate magic, version, page number, row count, and checksum on
/// every fetch.
#[derive(Debug)]
pub struct PagedTable {
    table_id: u64,
    name: String,
    schema: Schema,
    key_col: usize,
    page_bytes: u64,
    path: PathBuf,
    state: RwLock<TableState>,
}

impl PagedTable {
    fn new(dir: &Path, meta: TableMeta) -> PagedTable {
        let row_count = meta.pages.iter().map(|p| p.rows as u64).sum();
        PagedTable {
            table_id: TABLE_ID.fetch_add(1, AtomicOrder::Relaxed),
            path: dir.join(format!("{}.pages", meta.name)),
            name: meta.name,
            schema: meta.schema,
            key_col: meta.key_col,
            page_bytes: meta.page_bytes,
            state: RwLock::new(TableState {
                pages: meta.pages,
                row_count,
                data_len: meta.data_len,
            }),
        }
    }

    fn meta(&self) -> TableMeta {
        let st = self.state.read().unwrap();
        TableMeta {
            name: self.name.clone(),
            schema: self.schema.clone(),
            key_col: self.key_col,
            page_bytes: self.page_bytes,
            data_len: st.data_len,
            pages: st.pages.clone(),
        }
    }

    /// Stable process-wide id used as the buffer-pool frame key.
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Index of the clustered-key column.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Name of the clustered-key column.
    pub fn key_name(&self) -> &str {
        &self.schema.fields()[self.key_col].name
    }

    /// Target page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    pub fn page_count(&self) -> usize {
        self.state.read().unwrap().pages.len()
    }

    pub fn row_count(&self) -> u64 {
        self.state.read().unwrap().row_count
    }

    /// Sealed data-file length in bytes.
    pub fn data_len(&self) -> u64 {
        self.state.read().unwrap().data_len
    }

    /// Snapshot of all sealed-page metadata.
    pub fn page_metas(&self) -> Vec<PageMeta> {
        self.state.read().unwrap().pages.clone()
    }

    /// Metadata of one page.
    pub fn page_meta(&self, page_no: usize) -> Result<PageMeta> {
        self.state
            .read()
            .unwrap()
            .pages
            .get(page_no)
            .cloned()
            .ok_or_else(|| io_err(&self.path, format!("page {page_no} out of range")))
    }

    /// Page numbers whose key range intersects `bounds` (Theorem 4.2
    /// pruning on manifest metadata only — no I/O).
    pub fn pruned_pages(&self, bounds: &KeyBounds) -> Vec<usize> {
        let st = self.state.read().unwrap();
        st.pages
            .iter()
            .enumerate()
            .filter(|(_, m)| bounds.admits_page(m))
            .map(|(i, _)| i)
            .collect()
    }

    /// Read and fully validate one page from disk, bypassing any pool.
    /// Returns the decoded rows and the page's on-disk byte length.
    pub fn read_page(&self, page_no: usize) -> Result<(Vec<Row>, u64)> {
        let meta = self.page_meta(page_no)?;
        let mut file = fs::File::open(&self.path).map_err(|e| io_err(&self.path, e))?;
        file.seek(SeekFrom::Start(meta.offset))
            .map_err(|e| io_err(&self.path, e))?;
        let mut data = vec![0u8; meta.len as usize];
        file.read_exact(&mut data).map_err(|e| {
            corrupt(
                &self.path,
                format!("page {page_no}: short read ({e}) — torn or truncated file"),
            )
        })?;
        let rows = decode_page(&data, &self.path, &meta, page_no as u64, self.schema.len())?;
        Ok((rows, meta.len as u64))
    }

    /// Sequentially read the whole table back into a validated in-memory
    /// relation (string values are interned by `push`). Used to materialize
    /// catalog tables at boot; pass `stats` to account the I/O.
    pub fn read_all(&self, stats: Option<&ScanStats>) -> Result<Relation> {
        let mut rel = Relation::empty(self.schema.clone());
        for page_no in 0..self.page_count() {
            let (rows, bytes) = self.read_page(page_no)?;
            if let Some(s) = stats {
                s.record_page_read(bytes);
            }
            for row in rows {
                rel.push(row).map_err(|e| {
                    corrupt(
                        &self.path,
                        format!("page {page_no}: decoded row violates schema: {e}"),
                    )
                })?;
            }
        }
        Ok(rel)
    }
}

#[derive(Debug)]
struct StoreState {
    generation: u64,
    tables: BTreeMap<String, Arc<PagedTable>>,
}

/// A data directory holding paged tables plus the durable manifest.
#[derive(Debug)]
pub struct PagedStore {
    dir: PathBuf,
    faults: Arc<dyn PagerFaults>,
    state: Mutex<StoreState>,
}

fn valid_table_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Write `bytes` honoring the fault hooks: a triggered write fault tears
/// the write mid-way (half the bytes land) and errors, like a crash.
fn faulty_write(
    file: &mut fs::File,
    path: &Path,
    bytes: &[u8],
    faults: &dyn PagerFaults,
) -> Result<()> {
    if faults.fail_page_write() {
        let half = bytes.len() / 2;
        let _ = file.write_all(&bytes[..half]);
        let _ = file.flush();
        return Err(io_err(path, "injected page write failure (torn write)"));
    }
    file.write_all(bytes).map_err(|e| io_err(path, e))
}

fn faulty_sync(file: &fs::File, path: &Path, faults: &dyn PagerFaults) -> Result<()> {
    if faults.fail_fsync() {
        return Err(io_err(path, "injected fsync failure"));
    }
    file.sync_all().map_err(|e| io_err(path, e))
}

fn fsync_dir(dir: &Path) -> Result<()> {
    let d = fs::File::open(dir).map_err(|e| io_err(dir, e))?;
    d.sync_all().map_err(|e| io_err(dir, e))
}

impl PagedStore {
    /// Open (or initialize) a data directory with inert fault hooks.
    pub fn open(dir: &Path) -> Result<(Arc<PagedStore>, PagerBootReport)> {
        Self::open_with_faults(dir, Arc::new(NoFaults))
    }

    /// Open (or initialize) a data directory, running boot recovery:
    /// remove untrusted `MANIFEST.tmp`, fall back to `MANIFEST.prev` if the
    /// manifest is corrupt, truncate torn data-file tails, salvage short
    /// files, and re-checkpoint the repaired state.
    pub fn open_with_faults(
        dir: &Path,
        faults: Arc<dyn PagerFaults>,
    ) -> Result<(Arc<PagedStore>, PagerBootReport)> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut report = PagerBootReport::default();

        // A leftover tmp means a checkpoint died before its rename: the
        // current MANIFEST (or prev) is still the authoritative sealed
        // generation, so the tmp is discarded unread.
        let tmp = dir.join(MANIFEST_TMP);
        if tmp.exists() {
            fs::remove_file(&tmp).map_err(|e| io_err(&tmp, e))?;
            report.tmp_removed += 1;
        }

        let manifest_path = dir.join(MANIFEST_FILE);
        let prev_path = dir.join(MANIFEST_PREV);
        let primary = match fs::read(&manifest_path) {
            Ok(data) => decode_manifest(&data, &manifest_path)
                .map(Some)
                .or(Ok(None)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(&manifest_path, e)),
        }?;
        let (generation, metas) = match primary {
            Some(ok) => ok,
            None => match fs::read(&prev_path) {
                Ok(data) => {
                    let fallback = decode_manifest(&data, &prev_path)?;
                    report.manifest_fallback = true;
                    fallback
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Fresh directory (or both manifests lost): empty store.
                    if manifest_path.exists() {
                        report.manifest_fallback = true;
                    }
                    (0, Vec::new())
                }
                Err(e) => return Err(io_err(&prev_path, e)),
            },
        };

        let mut tables = BTreeMap::new();
        for mut meta in metas {
            let path = dir.join(format!("{}.pages", meta.name));
            let file_len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            match file_len.cmp(&meta.data_len) {
                Ordering::Greater => {
                    // Torn append from a crashed writer: everything beyond
                    // the sealed length is garbage.
                    report.orphan_bytes += file_len - meta.data_len;
                    report.torn_tables += 1;
                    let f = fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| io_err(&path, e))?;
                    f.set_len(meta.data_len).map_err(|e| io_err(&path, e))?;
                    f.sync_all().map_err(|e| io_err(&path, e))?;
                }
                Ordering::Less => {
                    // Sealed data lost (short or missing file): salvage the
                    // page prefix that still fits.
                    let keep = meta
                        .pages
                        .iter()
                        .take_while(|p| p.offset + p.len as u64 <= file_len)
                        .count();
                    report.lost_pages += (meta.pages.len() - keep) as u64;
                    meta.pages.truncate(keep);
                    meta.data_len = meta
                        .pages
                        .last()
                        .map(|p| p.offset + p.len as u64)
                        .unwrap_or(0);
                    if path.exists() {
                        let f = fs::OpenOptions::new()
                            .write(true)
                            .open(&path)
                            .map_err(|e| io_err(&path, e))?;
                        f.set_len(meta.data_len).map_err(|e| io_err(&path, e))?;
                        f.sync_all().map_err(|e| io_err(&path, e))?;
                    }
                }
                Ordering::Equal => {}
            }
            let name = meta.name.clone();
            tables.insert(name, Arc::new(PagedTable::new(dir, meta)));
        }
        report.tables = tables.len() as u64;

        let store = Arc::new(PagedStore {
            dir: dir.to_path_buf(),
            faults,
            state: Mutex::new(StoreState { generation, tables }),
        });
        // Seal the repaired state (also writes the initial manifest for a
        // fresh directory) so a second crash-free open is a no-op.
        store.checkpoint()?;
        Ok((store, report))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current sealed manifest generation.
    pub fn generation(&self) -> u64 {
        self.state.lock().unwrap().generation
    }

    pub fn table_names(&self) -> Vec<String> {
        self.state.lock().unwrap().tables.keys().cloned().collect()
    }

    pub fn table(&self, name: &str) -> Option<Arc<PagedTable>> {
        self.state.lock().unwrap().tables.get(name).cloned()
    }

    /// Atomically commit the current state as a new manifest generation.
    fn checkpoint(&self) -> Result<()> {
        let (generation, metas) = {
            let st = self.state.lock().unwrap();
            (
                st.generation + 1,
                st.tables.values().map(|t| t.meta()).collect::<Vec<_>>(),
            )
        };
        let bytes = encode_manifest(generation, &metas);
        let tmp = self.dir.join(MANIFEST_TMP);
        let manifest = self.dir.join(MANIFEST_FILE);
        let prev = self.dir.join(MANIFEST_PREV);
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            faulty_write(&mut f, &tmp, &bytes, &*self.faults)?;
            faulty_sync(&f, &tmp, &*self.faults)?;
        }
        if manifest.exists() {
            fs::rename(&manifest, &prev).map_err(|e| io_err(&manifest, e))?;
        }
        fs::rename(&tmp, &manifest).map_err(|e| io_err(&tmp, e))?;
        fsync_dir(&self.dir)?;
        self.state.lock().unwrap().generation = generation;
        Ok(())
    }

    /// Create a table from an in-memory relation, clustering its rows by
    /// `key_col` (stable sort under [`key_cmp`]) and sealing them into
    /// pages of ~`page_bytes` each. Durable once this returns.
    pub fn create_table(
        &self,
        name: &str,
        rel: &Relation,
        key_col: &str,
        page_bytes: u64,
    ) -> Result<Arc<PagedTable>> {
        if !valid_table_name(name) {
            return Err(io_err(&self.dir, format!("invalid table name `{name}`")));
        }
        if page_bytes < MIN_PAGE_BYTES {
            return Err(io_err(
                &self.dir,
                format!("page size {page_bytes} below minimum {MIN_PAGE_BYTES}"),
            ));
        }
        if self.table(name).is_some() {
            return Err(io_err(&self.dir, format!("table `{name}` already exists")));
        }
        let key = rel.schema().index_of(key_col)?;
        let mut rows: Vec<Row> = rel.rows().to_vec();
        rows.sort_by(|a, b| key_cmp(&a.values()[key], &b.values()[key]));
        let (pages, bytes) = build_pages(&rows, key, page_bytes, 0, 0);

        let path = self.dir.join(format!("{name}.pages"));
        {
            let mut file = fs::File::create(&path).map_err(|e| io_err(&path, e))?;
            faulty_write(&mut file, &path, &bytes, &*self.faults)?;
            faulty_sync(&file, &path, &*self.faults)?;
        }
        let data_len = bytes.len() as u64;
        let table = Arc::new(PagedTable::new(
            &self.dir,
            TableMeta {
                name: name.to_string(),
                schema: rel.schema().clone(),
                key_col: key,
                page_bytes,
                data_len,
                pages,
            },
        ));
        self.state
            .lock()
            .unwrap()
            .tables
            .insert(name.to_string(), Arc::clone(&table));
        if let Err(e) = self.checkpoint() {
            // Manifest never sealed the table: undo the in-memory insert so
            // state matches what a reopen would see.
            self.state.lock().unwrap().tables.remove(name);
            return Err(e);
        }
        Ok(table)
    }

    /// Append a batch as newly sealed pages in arrival order (matching the
    /// in-memory catalog's append semantics — per-page min/max keeps
    /// pruning sound without a global re-sort). Pages are written and
    /// fsynced before the manifest commits; a crash in between leaves a
    /// torn tail that boot recovery truncates.
    pub fn append(&self, name: &str, rows: &[Row]) -> Result<u64> {
        let table = self
            .table(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))?;
        if rows.is_empty() {
            return Ok(0);
        }
        for row in rows {
            if row.values().len() != table.schema.len() {
                return Err(StorageError::ArityMismatch {
                    expected: table.schema.len(),
                    got: row.values().len(),
                });
            }
        }
        let (data_len, first_page_no) = {
            let st = table.state.read().unwrap();
            (st.data_len, st.pages.len() as u64)
        };
        let (new_pages, bytes) = build_pages(
            rows,
            table.key_col,
            table.page_bytes,
            first_page_no,
            data_len,
        );
        {
            let mut file = fs::OpenOptions::new()
                .write(true)
                .open(&table.path)
                .map_err(|e| io_err(&table.path, e))?;
            file.seek(SeekFrom::Start(data_len))
                .map_err(|e| io_err(&table.path, e))?;
            faulty_write(&mut file, &table.path, &bytes, &*self.faults)?;
            // Trim any garbage tail left by an earlier failed append that
            // wrote further than this one.
            file.set_len(data_len + bytes.len() as u64)
                .map_err(|e| io_err(&table.path, e))?;
            faulty_sync(&file, &table.path, &*self.faults)?;
        }
        let appended = new_pages.len() as u64;
        {
            let mut st = table.state.write().unwrap();
            st.row_count += rows.len() as u64;
            st.data_len += bytes.len() as u64;
            st.pages.extend(new_pages);
        }
        if let Err(e) = self.checkpoint() {
            // Roll the in-memory state back to the sealed generation.
            let mut st = table.state.write().unwrap();
            st.row_count -= rows.len() as u64;
            st.data_len -= bytes.len() as u64;
            let keep = st.pages.len() - appended as usize;
            st.pages.truncate(keep);
            return Err(e);
        }
        Ok(appended)
    }
}

type FrameKey = (u64, usize);

#[derive(Debug)]
struct Frame {
    rows: Arc<Vec<Row>>,
    bytes: u64,
    pins: u32,
    /// Last-use tick; smallest unpinned tick is the LRU eviction victim.
    tick: u64,
    /// Opaque grant charging this frame to the shared memory pool;
    /// dropping it releases the charge.
    #[allow(dead_code)]
    grant: Option<Box<dyn Any + Send>>,
}

#[derive(Debug)]
struct PoolInner {
    frames: HashMap<FrameKey, Frame>,
    resident: u64,
    tick: u64,
}

/// Byte-budgeted buffer pool over [`PagedTable`] pages with pin counts and
/// strict-LRU eviction. See the module docs for the invariants.
#[derive(Debug)]
pub struct BufferPool {
    budget: u64,
    charge: Option<Arc<dyn PoolChargeHook>>,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    pub fn new(budget: u64) -> Arc<BufferPool> {
        Self::with_charge_hook(budget, None)
    }

    /// A pool that additionally charges every resident frame to `charge`
    /// (the engine's shared `MemoryPool`).
    pub fn with_charge_hook(
        budget: u64,
        charge: Option<Arc<dyn PoolChargeHook>>,
    ) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            budget,
            charge,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                resident: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently resident (pinned + cached).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().resident
    }

    pub fn resident_frames(&self) -> usize {
        self.inner.lock().unwrap().frames.len()
    }

    /// Total pin count across all frames; zero means fully drained.
    pub fn pinned_total(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.frames.values().map(|f| f.pins as u64).sum()
    }

    pub fn is_resident(&self, table: &PagedTable, page_no: usize) -> bool {
        self.inner
            .lock()
            .unwrap()
            .frames
            .contains_key(&(table.table_id, page_no))
    }

    /// Pin count of one page, if resident.
    pub fn pin_count(&self, table: &PagedTable, page_no: usize) -> Option<u32> {
        self.inner
            .lock()
            .unwrap()
            .frames
            .get(&(table.table_id, page_no))
            .map(|f| f.pins)
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(AtomicOrder::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(AtomicOrder::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(AtomicOrder::Relaxed)
    }

    /// Drop every unpinned frame (releasing their charge grants).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        let victims: Vec<FrameKey> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.pins == 0)
            .map(|(k, _)| *k)
            .collect();
        for k in victims {
            if let Some(f) = inner.frames.remove(&k) {
                inner.resident -= f.bytes;
            }
        }
    }

    /// Fetch a page through the pool, pinning it for the lifetime of the
    /// returned guard. A hit bumps recency; a miss reads from disk
    /// (checksum-verified), evicting LRU unpinned frames as needed. Records
    /// `pages_read`/`bytes_read` on misses and `pool_evictions` on
    /// evictions into `stats`.
    pub fn fetch(
        self: &Arc<Self>,
        table: &PagedTable,
        page_no: usize,
        stats: Option<&ScanStats>,
    ) -> Result<PinnedPage> {
        let key: FrameKey = (table.table_id, page_no);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.pins += 1;
            frame.tick = tick;
            self.hits.fetch_add(1, AtomicOrder::Relaxed);
            let rows = Arc::clone(&frame.rows);
            return Ok(PinnedPage {
                pool: Arc::clone(self),
                key,
                rows,
            });
        }

        let need = table.page_meta(page_no)?.len as u64;
        // Evict strict-LRU unpinned frames until the page fits the budget.
        while inner.resident + need > self.budget {
            let victim = inner
                .frames
                .iter()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.tick)
                .map(|(k, _)| *k);
            let Some(vkey) = victim else { break };
            let frame = inner.frames.remove(&vkey).expect("victim frame vanished");
            inner.resident -= frame.bytes;
            self.evictions.fetch_add(1, AtomicOrder::Relaxed);
            if let Some(s) = stats {
                s.record_pool_eviction();
            }
            // Dropping `frame` here releases its charge grant.
        }
        if inner.resident + need > self.budget {
            return Err(StorageError::PoolExhausted {
                needed: need,
                available: self.budget.saturating_sub(inner.resident),
                capacity: self.budget,
            });
        }
        let grant = match &self.charge {
            Some(hook) => Some(
                hook.reserve(need)
                    .map_err(|f| StorageError::PoolExhausted {
                        needed: f.needed,
                        available: f.available,
                        capacity: f.capacity,
                    })?,
            ),
            None => None,
        };
        // Disk read happens under the pool lock: serial-simple, and it
        // guarantees a page is decoded exactly once per residency.
        let (rows, bytes) = table.read_page(page_no)?;
        debug_assert_eq!(bytes, need);
        self.misses.fetch_add(1, AtomicOrder::Relaxed);
        if let Some(s) = stats {
            s.record_page_read(bytes);
        }
        let rows = Arc::new(rows);
        inner.frames.insert(
            key,
            Frame {
                rows: Arc::clone(&rows),
                bytes: need,
                pins: 1,
                tick,
                grant,
            },
        );
        inner.resident += need;
        Ok(PinnedPage {
            pool: Arc::clone(self),
            key,
            rows,
        })
    }
}

/// RAII pin on a resident page: dereferences to the decoded rows and
/// unpins on drop. While any pin is held the frame cannot be evicted.
#[derive(Debug)]
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    key: FrameKey,
    rows: Arc<Vec<Row>>,
}

impl PinnedPage {
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// `(table_id, page_no)` of the pinned frame.
    pub fn key(&self) -> (u64, usize) {
        self.key
    }
}

impl std::ops::Deref for PinnedPage {
    type Target = [Row];

    fn deref(&self) -> &[Row] {
        &self.rows
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock().unwrap();
        if let Some(frame) = inner.frames.get_mut(&self.key) {
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use std::sync::atomic::AtomicBool;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mdj-pager-unit-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("s", DataType::Str),
            ("x", DataType::Float),
        ]);
        let rows = (0..n)
            .map(|i| {
                Row::new(vec![
                    // Deliberately unsorted input: create_table must cluster.
                    Value::Int((n - 1 - i) % 17),
                    Value::str(format!("g{}", i % 5)),
                    Value::Float(i as f64 * 0.5),
                ])
            })
            .collect();
        Relation::from_rows(schema, rows)
    }

    fn open(dir: &Path) -> (Arc<PagedStore>, PagerBootReport) {
        PagedStore::open(dir).unwrap()
    }

    #[test]
    fn create_read_all_round_trips_in_clustered_order() {
        let dir = tmp_dir("roundtrip");
        let (store, report) = open(&dir);
        assert!(!report.recovered_anything());
        let rel = sales(100);
        let t = store.create_table("sales", &rel, "k", 256).unwrap();
        assert_eq!(t.row_count(), 100);
        assert!(
            t.page_count() > 1,
            "100 rows should span several 256 B pages"
        );
        let back = t.read_all(None).unwrap();
        assert_eq!(back.len(), 100);
        // Clustered order: keys must be non-decreasing.
        let k = |r: &Row| r.values()[0].clone();
        for w in back.rows().windows(2) {
            assert_ne!(key_cmp(&k(&w[0]), &k(&w[1])), Ordering::Greater);
        }
        // Same multiset as the input.
        assert!(back.same_multiset(&rel));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_serves_the_same_rows_without_reload() {
        let dir = tmp_dir("reopen");
        let expected = {
            let (store, _) = open(&dir);
            let t = store.create_table("sales", &sales(60), "k", 512).unwrap();
            t.read_all(None).unwrap()
        };
        let (store, report) = open(&dir);
        assert_eq!(report.tables, 1);
        assert!(!report.recovered_anything());
        let t = store.table("sales").unwrap();
        let back = t.read_all(None).unwrap();
        assert_eq!(back.rows(), expected.rows());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_persists_and_preserves_arrival_order() {
        let dir = tmp_dir("append");
        {
            let (store, _) = open(&dir);
            store.create_table("t", &sales(20), "k", 256).unwrap();
            let batch: Vec<Row> = vec![
                Row::new(vec![Value::Int(100), Value::str("new"), Value::Float(1.5)]),
                Row::new(vec![Value::Int(-5), Value::str("new"), Value::Float(2.5)]),
            ];
            let pages = store.append("t", &batch).unwrap();
            assert!(pages >= 1);
        }
        let (store, _) = open(&dir);
        let t = store.table("t").unwrap();
        assert_eq!(t.row_count(), 22);
        let back = t.read_all(None).unwrap();
        // Appends keep arrival order at the tail, matching the in-memory
        // catalog's append semantics.
        let tail = &back.rows()[20..];
        assert_eq!(tail[0].values()[0], Value::Int(100));
        assert_eq!(tail[1].values()[0], Value::Int(-5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_advances_and_survives() {
        let dir = tmp_dir("gen");
        let g1 = {
            let (store, _) = open(&dir);
            store.create_table("t", &sales(5), "k", 256).unwrap();
            store.generation()
        };
        let (store, _) = open(&dir);
        assert!(store.generation() > g1, "reopen checkpoint must advance");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp_dir("torn");
        {
            let (store, _) = open(&dir);
            store.create_table("t", &sales(30), "k", 512).unwrap();
        }
        // Simulate a writer crash after some page bytes but before the
        // manifest checkpoint: garbage beyond the sealed length.
        let data = dir.join("t.pages");
        let sealed = fs::metadata(&data).unwrap().len();
        let mut f = fs::OpenOptions::new().append(true).open(&data).unwrap();
        f.write_all(&[0xAB; 137]).unwrap();
        drop(f);

        let (store, report) = open(&dir);
        assert_eq!(report.torn_tables, 1);
        assert_eq!(report.orphan_bytes, 137);
        assert!(report.recovered_anything());
        assert_eq!(fs::metadata(&data).unwrap().len(), sealed);
        let t = store.table("t").unwrap();
        assert_eq!(t.read_all(None).unwrap().len(), 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_prev_generation() {
        let dir = tmp_dir("fallback");
        {
            let (store, _) = open(&dir);
            store.create_table("t", &sales(10), "k", 256).unwrap();
            // A second checkpoint guarantees MANIFEST.prev exists.
            store.append("t", sales(3).rows()).unwrap();
        }
        // Garble the primary manifest.
        let manifest = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&manifest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        fs::write(&manifest, &bytes).unwrap();

        let (store, report) = open(&dir);
        assert!(report.manifest_fallback);
        let t = store.table("t").unwrap();
        // prev was sealed before the append: 10 rows, not 13.
        assert_eq!(t.row_count(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_manifest_tmp_is_removed() {
        let dir = tmp_dir("tmp");
        {
            let (store, _) = open(&dir);
            store.create_table("t", &sales(5), "k", 256).unwrap();
        }
        fs::write(dir.join(MANIFEST_TMP), b"half-written checkpoint").unwrap();
        let (_store, report) = open(&dir);
        assert_eq!(report.tmp_removed, 1);
        assert!(!dir.join(MANIFEST_TMP).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_in_sealed_page_is_rejected_on_read() {
        let dir = tmp_dir("bitrot");
        let (store, _) = open(&dir);
        let t = store.create_table("t", &sales(40), "k", 256).unwrap();
        let meta = t.page_meta(1).unwrap();
        let data = dir.join("t.pages");
        let mut bytes = fs::read(&data).unwrap();
        bytes[meta.offset as usize + meta.len as usize / 2] ^= 0x01;
        fs::write(&data, &bytes).unwrap();
        let err = t.read_page(1).unwrap_err();
        assert!(matches!(err, StorageError::PageCorrupt { .. }), "{err:?}");
        // Neighbouring pages still verify.
        t.read_page(0).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_bounds_prune_pages_soundly() {
        let dir = tmp_dir("prune");
        let (store, _) = open(&dir);
        let t = store.create_table("t", &sales(200), "k", 256).unwrap();
        let all = t.pruned_pages(&KeyBounds::default());
        assert_eq!(all.len(), t.page_count());

        let mut bounds = KeyBounds::default();
        bounds.and_lo(Value::Int(5), true);
        bounds.and_hi(Value::Int(7), true);
        let kept = t.pruned_pages(&bounds);
        assert!(kept.len() < t.page_count(), "clustered range must prune");
        // Soundness: every row with 5 ≤ k ≤ 7 lives in a kept page.
        let mut want = 0;
        for r in t.read_all(None).unwrap().rows() {
            if let Value::Int(k) = r.values()[0] {
                if (5..=7).contains(&k) {
                    want += 1;
                }
            }
        }
        let mut got = 0;
        for p in &kept {
            for r in t.read_page(*p).unwrap().0 {
                if let Value::Int(k) = r.values()[0] {
                    if (5..=7).contains(&k) {
                        got += 1;
                    }
                }
            }
        }
        assert_eq!(got, want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounds_tighten_correctly() {
        let mut b = KeyBounds::default();
        b.and_lo(Value::Int(1), true);
        b.and_lo(Value::Int(3), false);
        assert_eq!(b.lo, Some((Value::Int(3), false)));
        b.and_lo(Value::Int(3), true);
        assert_eq!(b.lo, Some((Value::Int(3), false)), "exclusive is stricter");
        b.and_hi(Value::Int(10), false);
        b.and_hi(Value::Int(12), true);
        assert_eq!(b.hi, Some((Value::Int(10), false)));
    }

    #[test]
    fn pool_hits_misses_and_strict_lru_eviction() {
        let dir = tmp_dir("pool");
        let (store, _) = open(&dir);
        let t = store.create_table("t", &sales(120), "k", 256).unwrap();
        assert!(t.page_count() >= 4);
        let max_page = t.page_metas().iter().map(|m| m.len as u64).max().unwrap();
        // Budget fits roughly three pages.
        let pool = BufferPool::new(3 * max_page);

        let p0 = pool.fetch(&t, 0, None).unwrap();
        let _p1 = pool.fetch(&t, 1, None).unwrap();
        let _p2 = pool.fetch(&t, 2, None).unwrap();
        assert_eq!(pool.misses(), 3);
        drop(p0); // page 0 is now the LRU unpinned frame
        let again = pool.fetch(&t, 1, None).unwrap(); // bump page 1 recency
        drop(again);
        assert_eq!(pool.hits(), 1);

        let _p3 = pool.fetch(&t, 3, None).unwrap();
        assert!(pool.evictions() >= 1);
        assert!(!pool.is_resident(&t, 0), "page 0 was LRU and unpinned");
        assert!(pool.is_resident(&t, 1), "page 1 was recently used");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_pages_are_never_evicted_and_starvation_is_typed() {
        let dir = tmp_dir("pin");
        let (store, _) = open(&dir);
        let t = store.create_table("t", &sales(120), "k", 256).unwrap();
        let max_page = t.page_metas().iter().map(|m| m.len as u64).max().unwrap();
        let pool = BufferPool::new(2 * max_page);

        let _a = pool.fetch(&t, 0, None).unwrap();
        let _b = pool.fetch(&t, 1, None).unwrap();
        // Both frames pinned: the next distinct page cannot be admitted.
        let err = pool.fetch(&t, 2, None).unwrap_err();
        assert!(matches!(err, StorageError::PoolExhausted { .. }), "{err:?}");
        assert!(pool.is_resident(&t, 0) && pool.is_resident(&t, 1));
        // Re-fetching a pinned page is still a hit.
        let c = pool.fetch(&t, 0, None).unwrap();
        assert_eq!(pool.pin_count(&t, 0), Some(2));
        drop(c);
        assert_eq!(pool.pin_count(&t, 0), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[derive(Debug, Default)]
    struct CountingHook {
        reserved: AtomicU64,
        released: AtomicU64,
        refuse: AtomicBool,
    }

    struct HookGrant(Arc<CountingHook>, u64);

    impl Drop for HookGrant {
        fn drop(&mut self) {
            self.0.released.fetch_add(self.1, AtomicOrder::Relaxed);
        }
    }

    #[test]
    fn charge_hook_grants_are_released_on_eviction_and_drop() {
        #[derive(Debug)]
        struct ArcHook(Arc<CountingHook>);
        impl PoolChargeHook for ArcHook {
            fn reserve(
                &self,
                bytes: u64,
            ) -> std::result::Result<Box<dyn Any + Send>, PoolChargeFailed> {
                if self.0.refuse.load(AtomicOrder::Relaxed) {
                    return Err(PoolChargeFailed {
                        needed: bytes,
                        available: 0,
                        capacity: 0,
                    });
                }
                self.0.reserved.fetch_add(bytes, AtomicOrder::Relaxed);
                Ok(Box::new(HookGrant(Arc::clone(&self.0), bytes)))
            }
        }

        let dir = tmp_dir("charge");
        let (store, _) = open(&dir);
        let t = store.create_table("t", &sales(120), "k", 256).unwrap();
        let counting = Arc::new(CountingHook::default());
        let pool =
            BufferPool::with_charge_hook(1 << 20, Some(Arc::new(ArcHook(Arc::clone(&counting)))));
        {
            let _a = pool.fetch(&t, 0, None).unwrap();
            let _b = pool.fetch(&t, 1, None).unwrap();
        }
        let reserved = counting.reserved.load(AtomicOrder::Relaxed);
        assert!(reserved > 0);
        assert_eq!(counting.released.load(AtomicOrder::Relaxed), 0);
        pool.clear();
        assert_eq!(counting.released.load(AtomicOrder::Relaxed), reserved);

        // A refusing hook surfaces as PoolExhausted, not a panic.
        counting.refuse.store(true, AtomicOrder::Relaxed);
        let err = pool.fetch(&t, 2, None).unwrap_err();
        assert!(matches!(err, StorageError::PoolExhausted { .. }), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_tears_the_file_and_recovery_heals_it() {
        #[derive(Debug)]
        struct OneShot(AtomicBool);
        impl PagerFaults for OneShot {
            fn fail_page_write(&self) -> bool {
                self.0.swap(false, AtomicOrder::Relaxed)
            }
        }

        let dir = tmp_dir("fault");
        {
            let (store, _) = open(&dir);
            store.create_table("t", &sales(30), "k", 512).unwrap();
        }
        let sealed = fs::metadata(dir.join("t.pages")).unwrap().len();
        {
            // Open disarmed (boot runs its own checkpoint), then arm so the
            // append's data write tears mid-way.
            let faults = Arc::new(OneShot(AtomicBool::new(false)));
            let (store, _) = PagedStore::open_with_faults(&dir, Arc::clone(&faults) as _).unwrap();
            faults.0.store(true, AtomicOrder::Relaxed);
            let err = store.append("t", sales(30).rows()).unwrap_err();
            assert!(matches!(err, StorageError::PagerIo { .. }), "{err:?}");
            // In-memory state did not advance past the sealed generation.
            assert_eq!(store.table("t").unwrap().row_count(), 30);
        }
        assert!(
            fs::metadata(dir.join("t.pages")).unwrap().len() > sealed,
            "torn bytes must be on disk to exercise recovery"
        );
        let (store, report) = open(&dir);
        assert_eq!(report.torn_tables, 1);
        assert!(report.orphan_bytes > 0);
        assert_eq!(store.table("t").unwrap().row_count(), 30);
        store.table("t").unwrap().read_all(None).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_names_and_page_sizes_are_rejected() {
        let dir = tmp_dir("names");
        let (store, _) = open(&dir);
        for bad in ["", "../evil", "a/b", ".hidden", "nul\0"] {
            assert!(
                store.create_table(bad, &sales(1), "k", 256).is_err(),
                "{bad:?}"
            );
        }
        assert!(store.create_table("ok", &sales(1), "k", 8).is_err());
        assert!(store.create_table("ok", &sales(1), "nope", 256).is_err());
        store.create_table("ok", &sales(1), "k", 256).unwrap();
        assert!(
            store.create_table("ok", &sales(1), "k", 256).is_err(),
            "duplicate names rejected"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_null_key_pages_are_pruned_by_any_bound() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let rows = (0..10)
            .map(|i| Row::new(vec![Value::Null, Value::Int(i)]))
            .collect();
        let rel = Relation::from_rows(schema, rows);
        let dir = tmp_dir("nullkey");
        let (store, _) = open(&dir);
        let t = store.create_table("t", &rel, "k", 256).unwrap();
        let mut bounds = KeyBounds::default();
        bounds.and_lo(Value::Int(0), true);
        assert!(t.pruned_pages(&bounds).is_empty());
        assert_eq!(t.pruned_pages(&KeyBounds::default()).len(), t.page_count());
        let _ = fs::remove_dir_all(&dir);
    }
}
