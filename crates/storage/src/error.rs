//! Error types for the storage substrate.

use std::fmt;

/// Result alias used throughout the substrate.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;

/// Errors produced by schema resolution, relation construction, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column name did not resolve against a schema.
    UnknownColumn { name: String, schema: String },
    /// A column base name resolved to more than one qualified column.
    AmbiguousColumn { name: String, schema: String },
    /// A row's arity did not match the schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value violated the column type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// A named relation was not found in the catalog.
    UnknownRelation(String),
    /// CSV parse failure.
    Csv { line: usize, message: String },
    /// Generic I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// A spill run file could not be written or read (disk full, short
    /// write, permission failure). Path and detail are strings so the error
    /// stays `Clone + Eq`.
    SpillIo { path: String, detail: String },
    /// A spill run file failed validation on read: bad magic, unsupported
    /// version, checksum mismatch, or a truncated/garbled payload.
    SpillCorrupt { path: String, detail: String },
    /// A paged table store file (page data or manifest) could not be written
    /// or read.
    PagerIo { path: String, detail: String },
    /// A page or manifest failed validation on read: bad magic, unsupported
    /// version, checksum mismatch, or a truncated/garbled payload. Torn
    /// writes from a crashed checkpoint surface here.
    PageCorrupt { path: String, detail: String },
    /// The buffer pool could not admit a page: every resident frame is
    /// pinned (or the shared memory pool is out of budget), so eviction
    /// cannot make room. Mirrors the governor's admission failure so callers
    /// can shed load instead of panicking.
    PoolExhausted {
        needed: u64,
        available: u64,
        capacity: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn { name, schema } => {
                write!(f, "unknown column `{name}` in schema {schema}")
            }
            StorageError::AmbiguousColumn { name, schema } => {
                write!(f, "ambiguous column `{name}` in schema {schema}")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected}, got {got}"
            ),
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            StorageError::Io(m) => write!(f, "I/O error: {m}"),
            StorageError::SpillIo { path, detail } => {
                write!(f, "spill I/O error on `{path}`: {detail}")
            }
            StorageError::SpillCorrupt { path, detail } => {
                write!(f, "corrupt spill run file `{path}`: {detail}")
            }
            StorageError::PagerIo { path, detail } => {
                write!(f, "pager I/O error on `{path}`: {detail}")
            }
            StorageError::PageCorrupt { path, detail } => {
                write!(f, "corrupt page store file `{path}`: {detail}")
            }
            StorageError::PoolExhausted {
                needed,
                available,
                capacity,
            } => write!(
                f,
                "buffer pool exhausted: needed {needed} bytes, {available} available of {capacity}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::UnknownColumn {
            name: "sale".into(),
            schema: "(cust:int)".into(),
        };
        assert!(e.to_string().contains("sale"));
        assert!(e.to_string().contains("(cust:int)"));
        let e = StorageError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
