//! Spill run files: the disk backend for Theorem 4.1 partitioned evaluation.
//!
//! A *run file* holds one partition of a relation in a compact, self-describing
//! binary format so a budget-breaching MD-join can hash-partition `R` to disk
//! once and then evaluate each `(Bᵢ, Rᵢ)` pair from its run file instead of
//! re-scanning the in-memory `R` m times.
//!
//! ## Format (version 1)
//!
//! ```text
//! magic   b"MDJS"
//! version u32 LE (= 1)
//! schema  field_count u32; per field: name_len u32, UTF-8 name, dtype tag u8
//! rows    per row, per value: tag u8 + payload
//!           0 Null | 1 All | 2 Int i64 LE | 3 Float f64-bits u64 LE
//!           4 Str u32 len + UTF-8 | 5 Bool u8
//! trailer row_count u64 LE, checksum u64 LE (FNV-1a over all prior bytes)
//! ```
//!
//! Floats are stored as raw bit patterns, so a round trip is bit-identical
//! (NaN payloads and `-0.0` survive — [`crate::Value`] equality is defined on
//! bits, and the differential tests demand exact equality with the in-memory
//! path). The checksum is verified before any parsing happens; truncation,
//! bit rot, and short writes all surface as [`StorageError::SpillCorrupt`].
//!
//! ## Lifecycle
//!
//! [`RunWriter`] streams rows to a uniquely named temp file and deletes it on
//! drop unless [`RunWriter::finish`] handed ownership to a [`RunFile`], which
//! in turn deletes the file when *it* drops. Every failure path therefore
//! leaves no file behind: cleanup is RAII, not convention.

use crate::codec::{self, CorruptKind, Cursor};
use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::Schema;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File magic: "MD-Join Spill".
const MAGIC: [u8; 4] = *b"MDJS";
/// Current run-file format version.
pub const FORMAT_VERSION: u32 = 1;

/// Monotone suffix so concurrent writers in one process never collide.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique run-file path under `dir` (the file is not created).
fn run_path(dir: &Path, hint: &str) -> PathBuf {
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!(
        "mdj-spill-{}-{}-{}.run",
        std::process::id(),
        seq,
        hint
    ))
}

fn io_err(path: &Path, e: &std::io::Error) -> StorageError {
    StorageError::SpillIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StorageError {
    StorageError::SpillCorrupt {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// A finished run file on disk. Deleting is RAII: the file is removed when
/// the handle drops, so a run can never outlive the query that spilled it.
#[derive(Debug)]
pub struct RunFile {
    path: PathBuf,
    bytes: u64,
    rows: u64,
}

impl RunFile {
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total file size in bytes (header + payload + trailer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Delete the run file now instead of waiting for drop. Idempotent: a
    /// file that is already gone (deleted by an earlier `cleanup`, or swept
    /// by a recovering process) is not an error — only a real I/O failure
    /// (e.g. permissions) is reported.
    pub fn cleanup(&self) -> Result<()> {
        match fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&self.path, &e)),
        }
    }
}

impl Drop for RunFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Streams rows of one partition into a run file. The file is deleted on
/// drop unless [`finish`](RunWriter::finish) completed and transferred
/// ownership to the returned [`RunFile`].
#[derive(Debug)]
pub struct RunWriter {
    file: BufWriter<fs::File>,
    /// `Some` until `finish` takes ownership; `Drop` removes the file while
    /// it is still here (i.e. on every abandoned/error path).
    path: Option<PathBuf>,
    arity: usize,
    rows: u64,
    bytes: u64,
    hash: u64,
}

impl RunWriter {
    /// Create a uniquely named run file under `dir` (created if missing) and
    /// write the header + schema.
    pub fn create(dir: &Path, hint: &str, schema: &Schema) -> Result<RunWriter> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let path = run_path(dir, hint);
        let file = fs::File::create(&path).map_err(|e| io_err(&path, &e))?;
        let mut w = RunWriter {
            file: BufWriter::new(file),
            path: Some(path),
            arity: schema.len(),
            rows: 0,
            bytes: 0,
            hash: codec::FNV_OFFSET,
        };
        w.emit(&MAGIC)?;
        w.emit(&FORMAT_VERSION.to_le_bytes())?;
        let mut buf = Vec::new();
        codec::encode_schema(&mut buf, schema);
        w.emit(&buf)?;
        Ok(w)
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<()> {
        self.hash = codec::fnv1a(self.hash, bytes);
        self.bytes += bytes.len() as u64;
        let path = self.path.clone().unwrap_or_default();
        self.file.write_all(bytes).map_err(|e| io_err(&path, &e))
    }

    /// Append one row (arity-checked against the schema written at create).
    pub fn push(&mut self, row: &Row) -> Result<()> {
        if row.values().len() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                got: row.values().len(),
            });
        }
        let mut buf: Vec<u8> = Vec::with_capacity(16 * self.arity);
        for v in row.values() {
            codec::encode_value(&mut buf, v);
        }
        self.emit(&buf)?;
        self.rows += 1;
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bytes emitted so far (before the trailer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Path of the run file being written.
    pub fn path(&self) -> &Path {
        self.path.as_deref().unwrap_or(Path::new(""))
    }

    /// Write the trailer (row count + checksum), flush, and hand the file to
    /// an owning [`RunFile`].
    pub fn finish(mut self) -> Result<RunFile> {
        let rows = self.rows;
        self.emit(&rows.to_le_bytes())?;
        let checksum = self.hash;
        // The checksum itself is not hashed.
        let path = self.path.clone().unwrap_or_default();
        self.file
            .write_all(&checksum.to_le_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err(&path, &e))?;
        self.bytes += 8;
        let rf = RunFile {
            // Taking the path disarms this writer's Drop cleanup.
            path: self.path.take().expect("finish called twice"),
            bytes: self.bytes,
            rows,
        };
        Ok(rf)
    }
}

impl Drop for RunWriter {
    fn drop(&mut self) {
        if let Some(p) = &self.path {
            let _ = fs::remove_file(p);
        }
    }
}

/// What a crash-recovery sweep of a spill directory found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepReport {
    /// Orphaned run files removed (their owning process is dead).
    pub removed: u64,
    /// Total size in bytes of the removed files.
    pub bytes_removed: u64,
    /// Run files kept because their owning process is (or may be) alive.
    pub kept: u64,
}

/// The pid encoded in a run-file name (`mdj-spill-{pid}-{seq}-{hint}.run`),
/// or `None` for files that are not run files of this format.
fn run_file_pid(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("mdj-spill-")?;
    if !name.ends_with(".run") {
        return None;
    }
    rest.split('-').next()?.parse().ok()
}

/// Whether `pid` names a live process. Only a definitive "no such process"
/// counts as dead; permission errors mean the process exists under another
/// user, and non-unix targets conservatively report everything alive (a
/// foreign orphan is never worth deleting a live process's spill by
/// mistake).
#[cfg(unix)]
fn pid_is_live(pid: u32) -> bool {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let Ok(pid) = i32::try_from(pid) else {
        return true;
    };
    if unsafe { kill(pid, 0) } == 0 {
        return true;
    }
    const ESRCH: i32 = 3;
    std::io::Error::last_os_error().raw_os_error() != Some(ESRCH)
}

#[cfg(not(unix))]
fn pid_is_live(_pid: u32) -> bool {
    true
}

/// Crash-recovery sweep: scan `dir` for `MDJS` run files orphaned by a
/// crashed process and remove them.
///
/// RAII cleanup ([`RunFile`]/[`RunWriter`] drop) handles every in-process
/// failure path, but a SIGKILL or power loss skips destructors; this sweep
/// is the restart-time complement. Files belonging to the *current* process
/// or to any live pid are kept. A missing directory is an empty sweep, and
/// a file that vanishes mid-sweep (another recovering process got there
/// first) is simply not counted.
pub fn sweep_orphans(dir: &Path) -> Result<SweepReport> {
    let mut report = SweepReport::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(io_err(dir, &e)),
    };
    let me = std::process::id();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(run_file_pid) else {
            continue;
        };
        if pid == me || pid_is_live(pid) {
            report.kept += 1;
            continue;
        }
        let path = entry.path();
        let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        match fs::remove_file(&path) {
            Ok(()) => {
                report.removed += 1;
                report.bytes_removed += bytes;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&path, &e)),
        }
    }
    Ok(report)
}

/// Spill a whole relation into one run file under `dir`.
pub fn write_run(dir: &Path, hint: &str, rel: &Relation) -> Result<RunFile> {
    let mut w = RunWriter::create(dir, hint, rel.schema())?;
    for row in rel.iter() {
        w.push(row)?;
    }
    w.finish()
}

/// Read a run file back into a relation, verifying the checksum first.
/// Returns the relation and the number of bytes read from disk.
pub fn read_run(path: &Path) -> Result<(Relation, u64)> {
    let data = fs::read(path).map_err(|e| io_err(path, &e))?;
    if data.len() < MAGIC.len() + 4 + 4 + 8 + 8 {
        return Err(corrupt(
            path,
            format!("file too short ({} bytes)", data.len()),
        ));
    }
    // Verify before parsing: a flipped bit anywhere (including the trailer's
    // row count) fails here, so the parser below only ever sees good bytes.
    let (payload, trailer) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let actual = codec::fnv1a(codec::FNV_OFFSET, payload);
    if stored != actual {
        return Err(corrupt(
            path,
            format!("checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"),
        ));
    }

    let mut c = Cursor::new(payload, path, CorruptKind::Spill);
    if c.take(4)? != MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    let version = c.u32()?;
    if version != FORMAT_VERSION {
        return Err(corrupt(path, format!("unsupported version {version}")));
    }
    let schema = c.schema()?;
    let n_fields = schema.len();

    // Rows occupy everything up to the 8-byte row count at the payload's end.
    let rows_end = payload.len() - 8;
    let mut rows: Vec<Row> = Vec::new();
    while c.pos < rows_end {
        let mut vals = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            vals.push(c.value()?);
        }
        rows.push(Row::new(vals));
    }
    if c.pos != rows_end {
        return Err(corrupt(path, "row data overruns the trailer"));
    }
    c.pos = rows_end;
    let row_count = c.u64()?;
    if row_count != rows.len() as u64 {
        return Err(corrupt(
            path,
            format!(
                "row count {row_count} does not match {} decoded rows",
                rows.len()
            ),
        ));
    }
    Ok((Relation::from_rows(schema, rows), data.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::value::Value;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mdj-spill-unit-{}-{}", std::process::id(), tag));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn gnarly() -> Relation {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("x", DataType::Float),
            ("s", DataType::Str),
            ("f", DataType::Bool),
            ("a", DataType::Any),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::new(vec![
                    Value::Int(i64::MIN),
                    Value::Float(f64::NAN),
                    Value::str("naïve — ünïcödé"),
                    Value::Bool(true),
                    Value::All,
                ]),
                Row::new(vec![
                    Value::Int(i64::MAX),
                    Value::Float(-0.0),
                    Value::str(""),
                    Value::Bool(false),
                    Value::Null,
                ]),
                Row::new(vec![
                    Value::Int(0),
                    Value::Float(f64::INFINITY),
                    Value::str("line\nbreak\t\"quote\""),
                    Value::Bool(true),
                    Value::Int(42),
                ]),
            ],
        )
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let rel = gnarly();
        let run = write_run(&dir, "t", &rel).unwrap();
        assert_eq!(run.rows(), 3);
        let (back, bytes_read) = read_run(run.path()).unwrap();
        assert_eq!(bytes_read, run.bytes_written());
        assert_eq!(back.schema(), rel.schema());
        // Value equality is bit-equality for floats, so NaN and -0.0 must
        // survive exactly.
        assert_eq!(back.rows(), rel.rows());
        assert!(back.rows()[1][1] == Value::Float(-0.0));
        assert_eq!(
            match &back.rows()[1][1] {
                Value::Float(x) => x.to_bits(),
                _ => panic!(),
            },
            (-0.0f64).to_bits()
        );
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn empty_relation_round_trips() {
        let dir = tmp_dir("empty");
        let rel = Relation::empty(gnarly().schema().clone());
        let run = write_run(&dir, "e", &rel).unwrap();
        let (back, _) = read_run(run.path()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.schema(), rel.schema());
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn checksum_detects_a_flipped_byte() {
        let dir = tmp_dir("flip");
        let run = write_run(&dir, "c", &gnarly()).unwrap();
        let mut data = fs::read(run.path()).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        fs::write(run.path(), &data).unwrap();
        let err = read_run(run.path()).unwrap_err();
        assert!(
            matches!(err, StorageError::SpillCorrupt { .. }),
            "want SpillCorrupt, got {err:?}"
        );
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn truncation_is_detected() {
        let dir = tmp_dir("trunc");
        let run = write_run(&dir, "t", &gnarly()).unwrap();
        let data = fs::read(run.path()).unwrap();
        for cut in [data.len() / 2, data.len() - 1, 4] {
            fs::write(run.path(), &data[..cut]).unwrap();
            let err = read_run(run.path()).unwrap_err();
            assert!(
                matches!(err, StorageError::SpillCorrupt { .. }),
                "cut at {cut}: want SpillCorrupt, got {err:?}"
            );
        }
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn run_file_drop_removes_the_file() {
        let dir = tmp_dir("raii");
        let run = write_run(&dir, "d", &gnarly()).unwrap();
        let path = run.path().to_path_buf();
        assert!(path.exists());
        drop(run);
        assert!(!path.exists(), "RunFile drop leaked {}", path.display());
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn abandoned_writer_removes_the_file() {
        let dir = tmp_dir("abandon");
        let rel = gnarly();
        let mut w = RunWriter::create(&dir, "a", rel.schema()).unwrap();
        w.push(&rel.rows()[0]).unwrap();
        let path = w.path.clone().unwrap();
        assert!(path.exists());
        drop(w); // error path: finish never called
        assert!(!path.exists(), "RunWriter drop leaked {}", path.display());
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let dir = tmp_dir("arity");
        let rel = gnarly();
        let mut w = RunWriter::create(&dir, "x", rel.schema()).unwrap();
        let err = w.push(&Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        drop(w);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn cleanup_is_idempotent() {
        let dir = tmp_dir("cleanup");
        let run = write_run(&dir, "i", &gnarly()).unwrap();
        let path = run.path().to_path_buf();
        run.cleanup().unwrap();
        assert!(!path.exists());
        // Second explicit cleanup and the eventual Drop must both tolerate
        // the already-deleted file.
        run.cleanup().unwrap();
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn sweep_of_missing_dir_is_empty() {
        let report = sweep_orphans(Path::new("/nonexistent/mdj-sweep-test")).unwrap();
        assert_eq!(report, SweepReport::default());
    }

    #[cfg(unix)]
    #[test]
    fn sweep_removes_dead_pid_files_and_keeps_live_ones() {
        let dir = tmp_dir("sweep");
        // A live run file owned by this process.
        let live = write_run(&dir, "live", &gnarly()).unwrap();
        // A planted orphan from a "crashed" process: pid far beyond any
        // plausible live pid (kernel pid_max is well below this).
        let orphan = dir.join("mdj-spill-999999999-0-crashed.run");
        fs::write(&orphan, b"MDJS leftover bytes").unwrap();
        // A foreign file that is not a run file must be untouched.
        let foreign = dir.join("notes.txt");
        fs::write(&foreign, b"keep me").unwrap();

        let report = sweep_orphans(&dir).unwrap();
        assert_eq!(report.removed, 1, "{report:?}");
        assert_eq!(report.bytes_removed, 19);
        assert_eq!(report.kept, 1);
        assert!(!orphan.exists());
        assert!(live.path().exists());
        assert!(foreign.exists());

        // Sweeping again finds nothing new to remove.
        let again = sweep_orphans(&dir).unwrap();
        assert_eq!(again.removed, 0);
        assert_eq!(again.kept, 1);

        fs::remove_file(&foreign).unwrap();
        drop(live);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn run_file_names_parse_back_to_pids() {
        assert_eq!(run_file_pid("mdj-spill-1234-7-part.run"), Some(1234));
        assert_eq!(run_file_pid("mdj-spill-1234-7-part.tmp"), None);
        assert_eq!(run_file_pid("other-1234-7.run"), None);
        assert_eq!(run_file_pid("mdj-spill-x-7.run"), None);
    }

    #[test]
    fn unique_names_do_not_collide() {
        let dir = tmp_dir("uniq");
        let rel = gnarly();
        let a = write_run(&dir, "same", &rel).unwrap();
        let b = write_run(&dir, "same", &rel).unwrap();
        assert_ne!(a.path(), b.path());
        drop((a, b));
        let _ = fs::remove_dir(&dir);
    }
}
