//! Spill run files: the disk backend for Theorem 4.1 partitioned evaluation.
//!
//! A *run file* holds one partition of a relation in a compact, self-describing
//! binary format so a budget-breaching MD-join can hash-partition `R` to disk
//! once and then evaluate each `(Bᵢ, Rᵢ)` pair from its run file instead of
//! re-scanning the in-memory `R` m times.
//!
//! ## Format (version 1)
//!
//! ```text
//! magic   b"MDJS"
//! version u32 LE (= 1)
//! schema  field_count u32; per field: name_len u32, UTF-8 name, dtype tag u8
//! rows    per row, per value: tag u8 + payload
//!           0 Null | 1 All | 2 Int i64 LE | 3 Float f64-bits u64 LE
//!           4 Str u32 len + UTF-8 | 5 Bool u8
//! trailer row_count u64 LE, checksum u64 LE (FNV-1a over all prior bytes)
//! ```
//!
//! Floats are stored as raw bit patterns, so a round trip is bit-identical
//! (NaN payloads and `-0.0` survive — [`crate::Value`] equality is defined on
//! bits, and the differential tests demand exact equality with the in-memory
//! path). The checksum is verified before any parsing happens; truncation,
//! bit rot, and short writes all surface as [`StorageError::SpillCorrupt`].
//!
//! ## Lifecycle
//!
//! [`RunWriter`] streams rows to a uniquely named temp file and deletes it on
//! drop unless [`RunWriter::finish`] handed ownership to a [`RunFile`], which
//! in turn deletes the file when *it* drops. Every failure path therefore
//! leaves no file behind: cleanup is RAII, not convention.

use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File magic: "MD-Join Spill".
const MAGIC: [u8; 4] = *b"MDJS";
/// Current run-file format version.
pub const FORMAT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Any => 4,
    }
}

fn tag_dtype(t: u8) -> Option<DataType> {
    Some(match t {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Any,
        _ => return None,
    })
}

/// Monotone suffix so concurrent writers in one process never collide.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique run-file path under `dir` (the file is not created).
fn run_path(dir: &Path, hint: &str) -> PathBuf {
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!(
        "mdj-spill-{}-{}-{}.run",
        std::process::id(),
        seq,
        hint
    ))
}

fn io_err(path: &Path, e: &std::io::Error) -> StorageError {
    StorageError::SpillIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StorageError {
    StorageError::SpillCorrupt {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// A finished run file on disk. Deleting is RAII: the file is removed when
/// the handle drops, so a run can never outlive the query that spilled it.
#[derive(Debug)]
pub struct RunFile {
    path: PathBuf,
    bytes: u64,
    rows: u64,
}

impl RunFile {
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total file size in bytes (header + payload + trailer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    pub fn rows(&self) -> u64 {
        self.rows
    }
}

impl Drop for RunFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Streams rows of one partition into a run file. The file is deleted on
/// drop unless [`finish`](RunWriter::finish) completed and transferred
/// ownership to the returned [`RunFile`].
#[derive(Debug)]
pub struct RunWriter {
    file: BufWriter<fs::File>,
    /// `Some` until `finish` takes ownership; `Drop` removes the file while
    /// it is still here (i.e. on every abandoned/error path).
    path: Option<PathBuf>,
    arity: usize,
    rows: u64,
    bytes: u64,
    hash: u64,
}

impl RunWriter {
    /// Create a uniquely named run file under `dir` (created if missing) and
    /// write the header + schema.
    pub fn create(dir: &Path, hint: &str, schema: &Schema) -> Result<RunWriter> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let path = run_path(dir, hint);
        let file = fs::File::create(&path).map_err(|e| io_err(&path, &e))?;
        let mut w = RunWriter {
            file: BufWriter::new(file),
            path: Some(path),
            arity: schema.len(),
            rows: 0,
            bytes: 0,
            hash: FNV_OFFSET,
        };
        w.emit(&MAGIC)?;
        w.emit(&FORMAT_VERSION.to_le_bytes())?;
        w.emit(&(schema.len() as u32).to_le_bytes())?;
        for f in schema.fields() {
            w.emit(&(f.name.len() as u32).to_le_bytes())?;
            w.emit(f.name.as_bytes())?;
            w.emit(&[dtype_tag(f.dtype)])?;
        }
        Ok(w)
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<()> {
        self.hash = fnv1a(self.hash, bytes);
        self.bytes += bytes.len() as u64;
        let path = self.path.clone().unwrap_or_default();
        self.file.write_all(bytes).map_err(|e| io_err(&path, &e))
    }

    /// Append one row (arity-checked against the schema written at create).
    pub fn push(&mut self, row: &Row) -> Result<()> {
        if row.values().len() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                got: row.values().len(),
            });
        }
        let mut buf: Vec<u8> = Vec::with_capacity(16 * self.arity);
        for v in row.values() {
            match v {
                Value::Null => buf.push(0),
                Value::All => buf.push(1),
                Value::Int(i) => {
                    buf.push(2);
                    buf.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(x) => {
                    buf.push(3);
                    buf.extend_from_slice(&x.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    buf.push(4);
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s.as_bytes());
                }
                Value::Bool(b) => {
                    buf.push(5);
                    buf.push(*b as u8);
                }
            }
        }
        self.emit(&buf)?;
        self.rows += 1;
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bytes emitted so far (before the trailer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Path of the run file being written.
    pub fn path(&self) -> &Path {
        self.path.as_deref().unwrap_or(Path::new(""))
    }

    /// Write the trailer (row count + checksum), flush, and hand the file to
    /// an owning [`RunFile`].
    pub fn finish(mut self) -> Result<RunFile> {
        let rows = self.rows;
        self.emit(&rows.to_le_bytes())?;
        let checksum = self.hash;
        // The checksum itself is not hashed.
        let path = self.path.clone().unwrap_or_default();
        self.file
            .write_all(&checksum.to_le_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err(&path, &e))?;
        self.bytes += 8;
        let rf = RunFile {
            // Taking the path disarms this writer's Drop cleanup.
            path: self.path.take().expect("finish called twice"),
            bytes: self.bytes,
            rows,
        };
        Ok(rf)
    }
}

impl Drop for RunWriter {
    fn drop(&mut self) {
        if let Some(p) = &self.path {
            let _ = fs::remove_file(p);
        }
    }
}

/// Spill a whole relation into one run file under `dir`.
pub fn write_run(dir: &Path, hint: &str, rel: &Relation) -> Result<RunFile> {
    let mut w = RunWriter::create(dir, hint, rel.schema())?;
    for row in rel.iter() {
        w.push(row)?;
    }
    w.finish()
}

/// Byte cursor over a fully read run file; every short read is corruption.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt(self.path, "length overflow"))?;
        if end > self.data.len() {
            return Err(corrupt(
                self.path,
                format!("truncated: wanted {n} bytes at offset {}", self.pos),
            ));
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Read a run file back into a relation, verifying the checksum first.
/// Returns the relation and the number of bytes read from disk.
pub fn read_run(path: &Path) -> Result<(Relation, u64)> {
    let data = fs::read(path).map_err(|e| io_err(path, &e))?;
    if data.len() < MAGIC.len() + 4 + 4 + 8 + 8 {
        return Err(corrupt(
            path,
            format!("file too short ({} bytes)", data.len()),
        ));
    }
    // Verify before parsing: a flipped bit anywhere (including the trailer's
    // row count) fails here, so the parser below only ever sees good bytes.
    let (payload, trailer) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let actual = fnv1a(FNV_OFFSET, payload);
    if stored != actual {
        return Err(corrupt(
            path,
            format!("checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"),
        ));
    }

    let mut c = Cursor {
        data: payload,
        pos: 0,
        path,
    };
    if c.take(4)? != MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    let version = c.u32()?;
    if version != FORMAT_VERSION {
        return Err(corrupt(path, format!("unsupported version {version}")));
    }
    let n_fields = c.u32()? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let name_len = c.u32()? as usize;
        let name = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| corrupt(path, "field name is not UTF-8"))?
            .to_string();
        let dtype = c
            .u8()
            .ok()
            .and_then(tag_dtype)
            .ok_or_else(|| corrupt(path, "bad dtype tag"))?;
        fields.push(Field::new(name, dtype));
    }
    let schema = Schema::new(fields);

    // Rows occupy everything up to the 8-byte row count at the payload's end.
    let rows_end = payload.len() - 8;
    let mut rows: Vec<Row> = Vec::new();
    while c.pos < rows_end {
        let mut vals = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let v = match c.u8()? {
                0 => Value::Null,
                1 => Value::All,
                2 => Value::Int(i64::from_le_bytes(c.take(8)?.try_into().unwrap())),
                3 => Value::Float(f64::from_bits(u64::from_le_bytes(
                    c.take(8)?.try_into().unwrap(),
                ))),
                4 => {
                    let len = c.u32()? as usize;
                    let s = std::str::from_utf8(c.take(len)?)
                        .map_err(|_| corrupt(path, "string value is not UTF-8"))?;
                    Value::str(s)
                }
                5 => Value::Bool(c.u8()? != 0),
                t => return Err(corrupt(path, format!("bad value tag {t}"))),
            };
            vals.push(v);
        }
        rows.push(Row::new(vals));
    }
    if c.pos != rows_end {
        return Err(corrupt(path, "row data overruns the trailer"));
    }
    c.pos = rows_end;
    let row_count = c.u64()?;
    if row_count != rows.len() as u64 {
        return Err(corrupt(
            path,
            format!(
                "row count {row_count} does not match {} decoded rows",
                rows.len()
            ),
        ));
    }
    Ok((Relation::from_rows(schema, rows), data.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mdj-spill-unit-{}-{}", std::process::id(), tag));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn gnarly() -> Relation {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("x", DataType::Float),
            ("s", DataType::Str),
            ("f", DataType::Bool),
            ("a", DataType::Any),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::new(vec![
                    Value::Int(i64::MIN),
                    Value::Float(f64::NAN),
                    Value::str("naïve — ünïcödé"),
                    Value::Bool(true),
                    Value::All,
                ]),
                Row::new(vec![
                    Value::Int(i64::MAX),
                    Value::Float(-0.0),
                    Value::str(""),
                    Value::Bool(false),
                    Value::Null,
                ]),
                Row::new(vec![
                    Value::Int(0),
                    Value::Float(f64::INFINITY),
                    Value::str("line\nbreak\t\"quote\""),
                    Value::Bool(true),
                    Value::Int(42),
                ]),
            ],
        )
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let rel = gnarly();
        let run = write_run(&dir, "t", &rel).unwrap();
        assert_eq!(run.rows(), 3);
        let (back, bytes_read) = read_run(run.path()).unwrap();
        assert_eq!(bytes_read, run.bytes_written());
        assert_eq!(back.schema(), rel.schema());
        // Value equality is bit-equality for floats, so NaN and -0.0 must
        // survive exactly.
        assert_eq!(back.rows(), rel.rows());
        assert!(back.rows()[1][1] == Value::Float(-0.0));
        assert_eq!(
            match &back.rows()[1][1] {
                Value::Float(x) => x.to_bits(),
                _ => panic!(),
            },
            (-0.0f64).to_bits()
        );
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn empty_relation_round_trips() {
        let dir = tmp_dir("empty");
        let rel = Relation::empty(gnarly().schema().clone());
        let run = write_run(&dir, "e", &rel).unwrap();
        let (back, _) = read_run(run.path()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.schema(), rel.schema());
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn checksum_detects_a_flipped_byte() {
        let dir = tmp_dir("flip");
        let run = write_run(&dir, "c", &gnarly()).unwrap();
        let mut data = fs::read(run.path()).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        fs::write(run.path(), &data).unwrap();
        let err = read_run(run.path()).unwrap_err();
        assert!(
            matches!(err, StorageError::SpillCorrupt { .. }),
            "want SpillCorrupt, got {err:?}"
        );
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn truncation_is_detected() {
        let dir = tmp_dir("trunc");
        let run = write_run(&dir, "t", &gnarly()).unwrap();
        let data = fs::read(run.path()).unwrap();
        for cut in [data.len() / 2, data.len() - 1, 4] {
            fs::write(run.path(), &data[..cut]).unwrap();
            let err = read_run(run.path()).unwrap_err();
            assert!(
                matches!(err, StorageError::SpillCorrupt { .. }),
                "cut at {cut}: want SpillCorrupt, got {err:?}"
            );
        }
        drop(run);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn run_file_drop_removes_the_file() {
        let dir = tmp_dir("raii");
        let run = write_run(&dir, "d", &gnarly()).unwrap();
        let path = run.path().to_path_buf();
        assert!(path.exists());
        drop(run);
        assert!(!path.exists(), "RunFile drop leaked {}", path.display());
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn abandoned_writer_removes_the_file() {
        let dir = tmp_dir("abandon");
        let rel = gnarly();
        let mut w = RunWriter::create(&dir, "a", rel.schema()).unwrap();
        w.push(&rel.rows()[0]).unwrap();
        let path = w.path.clone().unwrap();
        assert!(path.exists());
        drop(w); // error path: finish never called
        assert!(!path.exists(), "RunWriter drop leaked {}", path.display());
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let dir = tmp_dir("arity");
        let rel = gnarly();
        let mut w = RunWriter::create(&dir, "x", rel.schema()).unwrap();
        let err = w.push(&Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        drop(w);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn unique_names_do_not_collide() {
        let dir = tmp_dir("uniq");
        let rel = gnarly();
        let a = write_run(&dir, "same", &rel).unwrap();
        let b = write_run(&dir, "same", &rel).unwrap();
        assert_ne!(a.path(), b.path());
        drop((a, b));
        let _ = fs::remove_dir(&dir);
    }
}
