//! A named-relation catalog with versioned entries and an append path.
//!
//! Relations are stored behind `Arc` so plans, base-value builders, and
//! parallel evaluators can hold references without copying data. Each entry
//! also carries a monotonically increasing **version** and catalog-resident
//! [`TableStats`] (min/max/NDV, refreshed incrementally), and the catalog is
//! internally synchronized so [`ingest`](Catalog::ingest) can fold new detail
//! batches in through a shared `&Catalog` — e.g. through the engine's shared
//! `Arc<EngineConfig>` — without disturbing in-flight readers: an append
//! produces a *new* `Arc<Relation>` (copy-on-write at whole-relation
//! granularity), so queries that already resolved a table keep scanning the
//! snapshot they started with.

use crate::error::{Result, StorageError};
use crate::pager::PagedTable;
use crate::relation::Relation;
use crate::row::Row;
use crate::stats::TableStats;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

#[derive(Debug, Clone)]
struct TableEntry {
    rel: Arc<Relation>,
    version: u64,
    stats: Arc<TableStats>,
    /// Disk-resident backing for this table, when it was opened from (or
    /// persisted to) a paged store. Executors that see this can run
    /// Theorem 4.2 scans as page-range reads instead of slice scans.
    paged: Option<Arc<PagedTable>>,
}

/// The result of one [`Catalog::ingest`] batch: the relation snapshots before
/// and after the append (pointer-distinct, so caches keyed by relation
/// identity can invalidate precisely), the new version, and the refreshed
/// statistics.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Table name the batch was folded into.
    pub table: String,
    /// The snapshot readers saw before the append.
    pub old: Arc<Relation>,
    /// The snapshot readers see after the append (old rows + batch rows).
    pub new: Arc<Relation>,
    /// The rows appended, post string-interning (exactly the tail of `new`).
    pub appended: Vec<Row>,
    /// Entry version after the append (bumps by 1 per batch).
    pub version: u64,
    /// Statistics folded forward over the batch.
    pub stats: Arc<TableStats>,
}

/// Maps relation names to shared, immutable relation snapshots.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, TableEntry>>,
}

impl Clone for Catalog {
    /// Snapshot clone: the map is copied (cheap `Arc` bumps), so the clone's
    /// view is frozen at clone time and later `ingest` calls against the
    /// original do not leak into it — per-query catalog snapshots stay
    /// isolated.
    fn clone(&self) -> Self {
        Catalog {
            tables: RwLock::new(self.read().clone()),
        }
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, TableEntry>> {
        self.tables.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, TableEntry>> {
        self.tables.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Register (or replace) a relation under `name`. Statistics are computed
    /// in one pass; replacing bumps the entry version so staleness is
    /// observable.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        self.register_arc(name, Arc::new(relation));
    }

    /// Register an already-shared relation.
    pub fn register_arc(&mut self, name: impl Into<String>, relation: Arc<Relation>) {
        let name = name.into();
        let stats = Arc::new(TableStats::compute(&relation));
        let mut tables = self.write();
        let version = tables.get(&name).map_or(1, |e| e.version + 1);
        tables.insert(
            name,
            TableEntry {
                rel: relation,
                version,
                stats,
                paged: None,
            },
        );
    }

    /// Attach a disk-resident [`PagedTable`] as the backing store of an
    /// already-registered table. The in-memory snapshot remains the source
    /// of truth for row order; the paged handle lets executors stream the
    /// same rows from disk and lets ingest persist appends.
    pub fn attach_paged(&self, name: &str, paged: Arc<PagedTable>) -> Result<()> {
        let mut tables = self.write();
        let entry = tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))?;
        entry.paged = Some(paged);
        Ok(())
    }

    /// The disk-resident backing of `name`, if attached.
    pub fn paged(&self, name: &str) -> Option<Arc<PagedTable>> {
        self.read().get(name).and_then(|e| e.paged.clone())
    }

    /// Fold a batch of new rows into `name` (Algorithm 3.1's append path).
    ///
    /// Rows are validated against the table schema, string values are
    /// interned against the table dictionary (growing it for unseen strings),
    /// statistics are folded forward, and a new relation snapshot replaces
    /// the entry under a bumped version. Readers holding the old `Arc` are
    /// untouched. Takes `&self`: ingest is a runtime operation on a shared
    /// catalog, not a setup-time one.
    pub fn ingest(&self, name: &str, rows: Vec<Row>) -> Result<IngestOutcome> {
        let mut tables = self.write();
        let entry = tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))?;
        // Validate the whole batch before touching any state: a bad row
        // rejects the batch atomically.
        let mut staged = Relation::empty(entry.rel.schema().clone());
        for row in rows {
            staged.push(row)?;
        }
        let mut batch = staged.into_rows();
        let mut stats = (*entry.stats).clone();
        stats.fold_rows(&mut batch);
        let mut grown = (*entry.rel).clone();
        for row in &batch {
            grown.push_unchecked(row.clone());
        }
        let old = std::mem::replace(&mut entry.rel, Arc::new(grown));
        entry.version += 1;
        entry.stats = Arc::new(stats);
        Ok(IngestOutcome {
            table: name.to_string(),
            old,
            new: entry.rel.clone(),
            appended: batch,
            version: entry.version,
            stats: entry.stats.clone(),
        })
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>> {
        self.read()
            .get(name)
            .map(|e| e.rel.clone())
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Current version of the named entry (1 at first registration, +1 per
    /// replace or ingest batch).
    pub fn version(&self, name: &str) -> Result<u64> {
        self.read()
            .get(name)
            .map(|e| e.version)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Catalog-resident statistics for the named table.
    pub fn table_stats(&self, name: &str) -> Result<Arc<TableStats>> {
        self.read()
            .get(name)
            .map(|e| e.stats.clone())
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Relation>> {
        self.write().remove(name).map(|e| e.rel)
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.read().keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn rel() -> Relation {
        Relation::empty(Schema::from_pairs(&[("x", DataType::Int)]))
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        c.register("Sales", rel());
        assert!(c.contains("Sales"));
        assert_eq!(c.get("Sales").unwrap().schema().names(), vec!["x"]);
        assert!(matches!(
            c.get("Payments"),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn replace_overwrites() {
        let mut c = Catalog::new();
        c.register("T", rel());
        let other = Relation::empty(Schema::from_pairs(&[("y", DataType::Str)]));
        c.register("T", other);
        assert_eq!(c.get("T").unwrap().schema().names(), vec!["y"]);
        assert_eq!(c.len(), 1);
        // Replacing is a version bump, not a fresh entry.
        assert_eq!(c.version("T").unwrap(), 2);
    }

    #[test]
    fn names_are_sorted() {
        let mut c = Catalog::new();
        c.register("b", rel());
        c.register("a", rel());
        assert_eq!(c.names(), vec!["a", "b"]);
    }

    #[test]
    fn shared_arcs_avoid_copies() {
        let mut c = Catalog::new();
        c.register("T", rel());
        let a = c.get("T").unwrap();
        let b = c.get("T").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    fn sales() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::try_new(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("CA"), Value::Float(20.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ingest_appends_under_a_new_version() {
        let mut c = Catalog::new();
        c.register("Sales", sales());
        let before = c.get("Sales").unwrap();
        let out = c
            .ingest(
                "Sales",
                vec![Row::from_values(vec![
                    Value::Int(3),
                    Value::str("NY"),
                    Value::Float(30.0),
                ])],
            )
            .unwrap();
        assert_eq!(out.version, 2);
        assert_eq!(out.new.len(), 3);
        assert!(Arc::ptr_eq(&out.old, &before));
        assert!(!Arc::ptr_eq(&out.old, &out.new));
        // The reader's snapshot is untouched; the catalog now serves the new one.
        assert_eq!(before.len(), 2);
        assert!(Arc::ptr_eq(&c.get("Sales").unwrap(), &out.new));
        assert_eq!(c.version("Sales").unwrap(), 2);
    }

    #[test]
    fn ingest_rejects_bad_rows_atomically() {
        let mut c = Catalog::new();
        c.register("Sales", sales());
        let err = c.ingest(
            "Sales",
            vec![
                Row::from_values(vec![Value::Int(3), Value::str("NY"), Value::Float(30.0)]),
                Row::from_values(vec![Value::str("oops")]),
            ],
        );
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
        // Nothing was appended, nothing was versioned.
        assert_eq!(c.get("Sales").unwrap().len(), 2);
        assert_eq!(c.version("Sales").unwrap(), 1);
        assert!(matches!(
            c.ingest("Nope", vec![]),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn ingest_interns_strings_and_folds_stats() {
        let mut c = Catalog::new();
        c.register("Sales", sales());
        let s0 = c.table_stats("Sales").unwrap();
        assert_eq!(s0.rows(), 2);
        assert_eq!(s0.column("state").unwrap().dict_len(), Some(2));
        assert_eq!(s0.column("sale").unwrap().max, Some(Value::Float(20.0)));
        let out = c
            .ingest(
                "Sales",
                vec![
                    Row::from_values(vec![Value::Int(9), Value::str("NY"), Value::Float(90.0)]),
                    Row::from_values(vec![Value::Int(9), Value::str("TX"), Value::Null]),
                ],
            )
            .unwrap();
        // "NY" was interned against the resident dictionary entry...
        let resident = out.old.rows()[0][1].clone();
        let (Value::Str(a), Value::Str(b)) = (&resident, &out.appended[0][1]) else {
            panic!("state column must hold strings");
        };
        assert!(Arc::ptr_eq(a, b));
        // ...and "TX" grew it.
        let s1 = c.table_stats("Sales").unwrap();
        assert_eq!(s1.rows(), 4);
        assert_eq!(s1.column("state").unwrap().dict_len(), Some(3));
        assert_eq!(s1.column("sale").unwrap().max, Some(Value::Float(90.0)));
        assert_eq!(s1.column("sale").unwrap().null_count, 1);
        assert_eq!(s1.column("cust").unwrap().max, Some(Value::Int(9)));
        // Folding forward matches a from-scratch pass over the merged rows.
        assert_eq!(*s1, TableStats::compute(&out.new));
        // The register-time snapshot is unchanged.
        assert_eq!(s0.rows(), 2);
    }

    #[test]
    fn clone_is_an_isolated_snapshot() {
        let mut c = Catalog::new();
        c.register("Sales", sales());
        let snap = c.clone();
        // Snapshots share relation memory with the original...
        assert!(Arc::ptr_eq(
            &snap.get("Sales").unwrap(),
            &c.get("Sales").unwrap()
        ));
        // ...but ingest into the original does not leak into the snapshot.
        c.ingest(
            "Sales",
            vec![Row::from_values(vec![
                Value::Int(3),
                Value::str("NY"),
                Value::Float(30.0),
            ])],
        )
        .unwrap();
        assert_eq!(snap.get("Sales").unwrap().len(), 2);
        assert_eq!(c.get("Sales").unwrap().len(), 3);
    }
}
