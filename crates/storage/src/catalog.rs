//! A minimal named-relation catalog used by the SQL frontend and examples.

use crate::error::{Result, StorageError};
use crate::relation::Relation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maps relation names to shared, immutable relations.
///
/// Relations are stored behind `Arc` so plans, base-value builders, and
/// parallel evaluators can hold references without copying data.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Relation>>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a relation under `name`.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        self.tables.insert(name.into(), Arc::new(relation));
    }

    /// Register an already-shared relation.
    pub fn register_arc(&mut self, name: impl Into<String>, relation: Arc<Relation>) {
        self.tables.insert(name.into(), relation);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Relation>> {
        self.tables.remove(name)
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn rel() -> Relation {
        Relation::empty(Schema::from_pairs(&[("x", DataType::Int)]))
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        c.register("Sales", rel());
        assert!(c.contains("Sales"));
        assert_eq!(c.get("Sales").unwrap().schema().names(), vec!["x"]);
        assert!(matches!(
            c.get("Payments"),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn replace_overwrites() {
        let mut c = Catalog::new();
        c.register("T", rel());
        let other = Relation::empty(Schema::from_pairs(&[("y", DataType::Str)]));
        c.register("T", other);
        assert_eq!(c.get("T").unwrap().schema().names(), vec!["y"]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn names_are_sorted() {
        let mut c = Catalog::new();
        c.register("b", rel());
        c.register("a", rel());
        assert_eq!(c.names(), vec!["a", "b"]);
    }

    #[test]
    fn shared_arcs_avoid_copies() {
        let mut c = Catalog::new();
        c.register("T", rel());
        let a = c.get("T").unwrap();
        let b = c.get("T").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
