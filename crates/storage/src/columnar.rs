//! Columnar batches of detail tuples for the vectorized executor.
//!
//! Algorithm 3.1 scans `R` once; the vectorized execution layer cuts that scan
//! into fixed-size batches and transposes each batch into a [`ColumnarChunk`]:
//! per-column typed arrays (`i64`, `f64`, dictionary-coded strings) plus a
//! null bitmap. Predicates and probe-key expressions then run as tight loops
//! over native slices instead of per-row [`Value`] tree walks.
//!
//! Column typing is *data-driven per batch*, not declared: a column whose
//! values in the range are all `Int`-or-NULL becomes an [`Column::Int`], and
//! so on. Anything without a faithful typed representation — booleans, the
//! cube `ALL` pseudo-value, or mixed `Int`/`Float` data (where an eager
//! float conversion would change `sum`/comparison semantics) — becomes
//! [`Column::Fallback`], telling the evaluator to use the scalar interpreter
//! for expressions touching it. Only the columns a query actually reads are
//! materialized; the rest stay [`Column::Absent`].
//!
//! A [`Column::Str`]'s dictionary codes double as probe keys: each chunk's
//! dictionary is small, so the vectorized prober translates code → index
//! bucket once per chunk (one hash lookup per *distinct* string) and then
//! probes every row by its `u32` code without materializing or re-hashing a
//! single string value.

use crate::row::Row;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One column of a [`ColumnarChunk`].
#[derive(Debug, Clone)]
pub enum Column {
    /// Not materialized (the query never reads this column).
    Absent,
    /// All values in the range are `Int` or NULL.
    Int { vals: Vec<i64>, nulls: Vec<bool> },
    /// All values in the range are `Float` or NULL.
    Float { vals: Vec<f64>, nulls: Vec<bool> },
    /// All values in the range are `Str` or NULL, dictionary-coded:
    /// `dict[codes[i]]` is row `i`'s string.
    Str {
        codes: Vec<u32>,
        dict: Vec<Arc<str>>,
        nulls: Vec<bool>,
    },
    /// The range holds values with no faithful typed representation
    /// (booleans, `ALL`, mixed numeric types): scalar fallback required.
    Fallback,
}

impl Column {
    /// True if expressions over this column can run vectorized.
    pub fn is_typed(&self) -> bool {
        matches!(
            self,
            Column::Int { .. } | Column::Float { .. } | Column::Str { .. }
        )
    }
}

/// A contiguous range of detail tuples in columnar form.
#[derive(Debug, Clone)]
pub struct ColumnarChunk {
    /// Index of the first row of this chunk within the source relation.
    start: usize,
    /// Rows in the chunk.
    len: usize,
    columns: Vec<Column>,
}

impl ColumnarChunk {
    /// Transpose `rows[start..start+len]` into columns, materializing only
    /// the columns where `needed[c]` is true.
    pub fn from_rows(rows: &[Row], start: usize, len: usize, needed: &[bool]) -> Self {
        let range = &rows[start..start + len];
        let columns = needed
            .iter()
            .enumerate()
            .map(|(c, &want)| {
                if want {
                    build_column(range, c)
                } else {
                    Column::Absent
                }
            })
            .collect();
        ColumnarChunk {
            start,
            len,
            columns,
        }
    }

    /// Index of this chunk's first row within the source relation.
    pub fn start(&self) -> usize {
        self.start
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }
}

fn build_column(range: &[Row], c: usize) -> Column {
    // Single-pass speculative transposition: the first non-NULL value picks
    // the typed representation, the fill then runs straight through the range
    // and abandons to `Fallback` on the first conflicting value. (The old
    // code made a full type-sniffing pass before a second fill pass; the
    // common all-one-type batch now walks the row-major data exactly once.)
    let first = range.iter().find_map(|row| match &row[c] {
        Value::Null => None,
        other => Some(other),
    });
    match first {
        // All-NULL ranges get a typed (but fully null) Int column so numeric
        // kernels still apply; NULL semantics are carried by the bitmap.
        None => Column::Int {
            vals: vec![0; range.len()],
            nulls: vec![true; range.len()],
        },
        Some(Value::Int(_)) => fill_ints(range, c),
        Some(Value::Float(_)) => fill_floats(range, c),
        Some(Value::Str(_)) => fill_strs(range, c),
        // Booleans and `ALL` have no faithful typed representation.
        Some(_) => Column::Fallback,
    }
}

fn fill_ints(range: &[Row], c: usize) -> Column {
    let n = range.len();
    let mut vals = vec![0i64; n];
    let mut nulls = vec![false; n];
    for (i, row) in range.iter().enumerate() {
        match &row[c] {
            Value::Int(v) => vals[i] = *v,
            Value::Null => nulls[i] = true,
            _ => return Column::Fallback,
        }
    }
    Column::Int { vals, nulls }
}

fn fill_floats(range: &[Row], c: usize) -> Column {
    let n = range.len();
    let mut vals = vec![0f64; n];
    let mut nulls = vec![false; n];
    for (i, row) in range.iter().enumerate() {
        match &row[c] {
            Value::Float(v) => vals[i] = *v,
            Value::Null => nulls[i] = true,
            _ => return Column::Fallback,
        }
    }
    Column::Float { vals, nulls }
}

fn fill_strs(range: &[Row], c: usize) -> Column {
    let n = range.len();
    let mut codes = vec![0u32; n];
    let mut nulls = vec![false; n];
    let mut dict: Vec<Arc<str>> = Vec::new();
    let mut lookup: HashMap<Arc<str>, u32> = HashMap::new();
    for (i, row) in range.iter().enumerate() {
        match &row[c] {
            Value::Str(s) => {
                let code = *lookup.entry(s.clone()).or_insert_with(|| {
                    dict.push(s.clone());
                    (dict.len() - 1) as u32
                });
                codes[i] = code;
            }
            Value::Null => nulls[i] = true,
            _ => return Column::Fallback,
        }
    }
    Column::Str { codes, dict, nulls }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            Row::new(vec![
                Value::Int(1),
                Value::Float(1.5),
                Value::str("NY"),
                Value::Bool(true),
            ]),
            Row::new(vec![
                Value::Null,
                Value::Float(2.5),
                Value::str("CA"),
                Value::Bool(false),
            ]),
            Row::new(vec![
                Value::Int(3),
                Value::Null,
                Value::str("NY"),
                Value::Bool(true),
            ]),
        ]
    }

    #[test]
    fn typed_columns_with_null_bitmaps() {
        let rows = rows();
        let chunk = ColumnarChunk::from_rows(&rows, 0, 3, &[true, true, true, true]);
        assert_eq!(chunk.start(), 0);
        assert_eq!(chunk.len(), 3);
        match chunk.column(0) {
            Column::Int { vals, nulls } => {
                assert_eq!(vals, &[1, 0, 3]);
                assert_eq!(nulls, &[false, true, false]);
            }
            other => panic!("expected Int column, got {other:?}"),
        }
        match chunk.column(1) {
            Column::Float { vals, nulls } => {
                assert_eq!(vals, &[1.5, 2.5, 0.0]);
                assert_eq!(nulls, &[false, false, true]);
            }
            other => panic!("expected Float column, got {other:?}"),
        }
        match chunk.column(2) {
            Column::Str { codes, dict, nulls } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(&*dict[codes[0] as usize], "NY");
                assert_eq!(&*dict[codes[1] as usize], "CA");
                assert_eq!(codes[0], codes[2]);
                assert_eq!(nulls, &[false, false, false]);
            }
            other => panic!("expected Str column, got {other:?}"),
        }
        // Booleans have no typed representation.
        assert!(matches!(chunk.column(3), Column::Fallback));
    }

    #[test]
    fn unneeded_columns_stay_absent() {
        let rows = rows();
        let chunk = ColumnarChunk::from_rows(&rows, 1, 2, &[true, false, false, false]);
        assert_eq!(chunk.start(), 1);
        assert_eq!(chunk.len(), 2);
        assert!(matches!(chunk.column(1), Column::Absent));
        match chunk.column(0) {
            // Range starts at row 1: [Null, Int(3)].
            Column::Int { vals, nulls } => {
                assert_eq!(vals, &[0, 3]);
                assert_eq!(nulls, &[true, false]);
            }
            other => panic!("expected Int column, got {other:?}"),
        }
    }

    #[test]
    fn mixed_numeric_and_all_values_force_fallback() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::All]),
            Row::new(vec![Value::Float(2.0), Value::Int(2)]),
        ];
        let chunk = ColumnarChunk::from_rows(&rows, 0, 2, &[true, true]);
        assert!(matches!(chunk.column(0), Column::Fallback)); // Int + Float mix
        assert!(matches!(chunk.column(1), Column::Fallback)); // ALL
    }

    #[test]
    fn all_null_range_is_a_typed_null_column() {
        let rows = vec![Row::new(vec![Value::Null]), Row::new(vec![Value::Null])];
        let chunk = ColumnarChunk::from_rows(&rows, 0, 2, &[true]);
        match chunk.column(0) {
            Column::Int { nulls, .. } => assert_eq!(nulls, &[true, true]),
            other => panic!("expected Int column, got {other:?}"),
        }
    }
}
