//! Indexes over relations.
//!
//! Two index kinds back the paper's optimizations:
//!
//! * [`HashIndex`] — equality index used by Section 4.5: given a scanned detail
//!   tuple `t`, find the *relative set* `Rel(t)` of base-table rows whose key
//!   columns equal values derived from `t`, instead of scanning all of `B`.
//! * [`SortedIndex`] — a clustered-order index used by Theorem 4.2 / Example
//!   4.1: range predicates pushed into the detail table scan only the matching
//!   run of tuples (our stand-in for a clustered disk index).

use crate::hash::KeyBuildHasher;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashMap;
use std::ops::Bound;

/// Equality (hash) index from key-column values to row positions.
///
/// Keys hash with the shared [`KeyBuildHasher`](crate::hash::KeyBuildHasher)
/// so specialized probe structures derived from this index (the vectorized
/// executor's single-column maps) use the identical hash function.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<usize>, KeyBuildHasher>,
}

impl HashIndex {
    /// Build over `relation` keyed on the columns at `key_cols` (positions).
    pub fn build(relation: &Relation, key_cols: &[usize]) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<usize>, KeyBuildHasher> =
            HashMap::with_capacity_and_hasher(relation.len(), KeyBuildHasher::default());
        for (i, row) in relation.iter().enumerate() {
            map.entry(row.key(key_cols)).or_default().push(i);
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
        }
    }

    /// Build keyed on named columns.
    pub fn build_on(relation: &Relation, names: &[&str]) -> crate::Result<Self> {
        let idx = relation.schema().indices_of(names)?;
        Ok(Self::build(relation, &idx))
    }

    /// Build from precomputed keys: the `i`-th key indexes row `i`. Lets a
    /// caller index *transformed* keys (e.g. canonicalized ones) without
    /// materializing a shadow copy of the whole relation.
    pub fn from_keys(key_cols: Vec<usize>, keys: impl IntoIterator<Item = Vec<Value>>) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<usize>, KeyBuildHasher> = HashMap::default();
        for (i, key) in keys.into_iter().enumerate() {
            map.entry(key).or_default().push(i);
        }
        HashIndex { key_cols, map }
    }

    /// Row positions whose key equals `key` (empty slice if none).
    pub fn get(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over `(key, row positions)` buckets (arbitrary order). Used to
    /// derive specialized probe structures (e.g. a single-`i64`-key map for
    /// the vectorized executor) without re-extracting keys from the relation.
    pub fn entries(&self) -> impl Iterator<Item = (&[Value], &[usize])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// The indexed column positions.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Sorted-order (clustered) index: a permutation of row ids ordered by the key
/// columns, supporting range lookups by binary search.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    key_cols: Vec<usize>,
    /// Row ids sorted by key.
    order: Vec<usize>,
    /// Keys aligned with `order` (kept for binary search without re-extraction).
    keys: Vec<Vec<Value>>,
}

impl SortedIndex {
    /// Build over `relation` keyed on the columns at `key_cols`.
    pub fn build(relation: &Relation, key_cols: &[usize]) -> Self {
        let mut pairs: Vec<(Vec<Value>, usize)> = relation
            .iter()
            .enumerate()
            .map(|(i, r)| (r.key(key_cols), i))
            .collect();
        pairs.sort();
        let (keys, order) = pairs.into_iter().unzip();
        SortedIndex {
            key_cols: key_cols.to_vec(),
            order,
            keys,
        }
    }

    /// Build keyed on named columns.
    pub fn build_on(relation: &Relation, names: &[&str]) -> crate::Result<Self> {
        let idx = relation.schema().indices_of(names)?;
        Ok(Self::build(relation, &idx))
    }

    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row ids whose (full) key equals `key`.
    pub fn equal(&self, key: &[Value]) -> &[usize] {
        let lo = self.keys.partition_point(|k| k.as_slice() < key);
        let hi = self.keys.partition_point(|k| k.as_slice() <= key);
        &self.order[lo..hi]
    }

    /// Row ids whose key lies within the given bounds on the *first* key
    /// column (the common clustered-range case, e.g. `year BETWEEN 1994 AND
    /// 1996`). Bounds use the total order of [`Value`].
    pub fn range_first(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> &[usize] {
        let lo = match lower {
            Bound::Unbounded => 0,
            Bound::Included(v) => self.keys.partition_point(|k| &k[0] < v),
            Bound::Excluded(v) => self.keys.partition_point(|k| &k[0] <= v),
        };
        let hi = match upper {
            Bound::Unbounded => self.keys.len(),
            Bound::Included(v) => self.keys.partition_point(|k| &k[0] <= v),
            Bound::Excluded(v) => self.keys.partition_point(|k| &k[0] < v),
        };
        if lo >= hi {
            &[]
        } else {
            &self.order[lo..hi]
        }
    }

    /// Row ids in sorted-key order (a clustered scan).
    pub fn scan(&self) -> &[usize] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::{DataType, Schema};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[("year", DataType::Int), ("sale", DataType::Int)]);
        let rows = vec![
            Row::from_values([1999i64, 10]),
            Row::from_values([1994i64, 20]),
            Row::from_values([1996i64, 30]),
            Row::from_values([1994i64, 40]),
            Row::from_values([1998i64, 50]),
        ];
        Relation::from_rows(schema, rows)
    }

    #[test]
    fn hash_index_groups_row_ids() {
        let r = rel();
        let ix = HashIndex::build_on(&r, &["year"]).unwrap();
        assert_eq!(ix.get(&[Value::Int(1994)]), &[1, 3]);
        assert_eq!(ix.get(&[Value::Int(2001)]), &[] as &[usize]);
        assert_eq!(ix.distinct_keys(), 4);
    }

    #[test]
    fn hash_index_from_precomputed_keys() {
        let r = rel();
        let direct = HashIndex::build_on(&r, &["year"]).unwrap();
        let keyed = HashIndex::from_keys(vec![0], r.iter().map(|row| vec![row[0].clone()]));
        assert_eq!(
            keyed.get(&[Value::Int(1994)]),
            direct.get(&[Value::Int(1994)])
        );
        assert_eq!(keyed.distinct_keys(), direct.distinct_keys());
        assert_eq!(keyed.key_cols(), &[0]);
        let total: usize = keyed.entries().map(|(_, ids)| ids.len()).sum();
        assert_eq!(total, r.len());
    }

    #[test]
    fn sorted_index_equal_lookup() {
        let r = rel();
        let ix = SortedIndex::build_on(&r, &["year"]).unwrap();
        let ids = ix.equal(&[Value::Int(1994)]);
        let mut ids = ids.to_vec();
        ids.sort();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn sorted_index_range_inclusive() {
        let r = rel();
        let ix = SortedIndex::build_on(&r, &["year"]).unwrap();
        let ids = ix.range_first(
            Bound::Included(&Value::Int(1994)),
            Bound::Included(&Value::Int(1996)),
        );
        let mut years: Vec<i64> = ids
            .iter()
            .map(|&i| r.rows()[i][0].as_int().unwrap())
            .collect();
        years.sort();
        assert_eq!(years, vec![1994, 1994, 1996]);
    }

    #[test]
    fn sorted_index_range_exclusive_and_unbounded() {
        let r = rel();
        let ix = SortedIndex::build_on(&r, &["year"]).unwrap();
        let ids = ix.range_first(Bound::Excluded(&Value::Int(1996)), Bound::Unbounded);
        assert_eq!(ids.len(), 2); // 1998, 1999
        let ids = ix.range_first(Bound::Unbounded, Bound::Excluded(&Value::Int(1994)));
        assert!(ids.is_empty());
    }

    #[test]
    fn sorted_scan_is_in_key_order() {
        let r = rel();
        let ix = SortedIndex::build_on(&r, &["year", "sale"]).unwrap();
        let years: Vec<i64> = ix
            .scan()
            .iter()
            .map(|&i| r.rows()[i][0].as_int().unwrap())
            .collect();
        assert_eq!(years, vec![1994, 1994, 1996, 1998, 1999]);
        // Ties on year broken by sale:
        let sales: Vec<i64> = ix
            .scan()
            .iter()
            .take(2)
            .map(|&i| r.rows()[i][1].as_int().unwrap())
            .collect();
        assert_eq!(sales, vec![20, 40]);
    }

    #[test]
    fn empty_relation_indexes() {
        let r = Relation::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        let h = HashIndex::build_on(&r, &["x"]).unwrap();
        assert_eq!(h.get(&[Value::Int(1)]), &[] as &[usize]);
        let s = SortedIndex::build_on(&r, &["x"]).unwrap();
        assert!(s.range_first(Bound::Unbounded, Bound::Unbounded).is_empty());
    }
}
