//! Minimal CSV reader/writer so examples can load Example 2.4-style
//! externally supplied base-value tables ("given to us in a precomputed
//! datafile or table").
//!
//! Format: comma-separated, first line is the header, quoting with `"` for
//! fields containing commas/quotes/newlines, `""` escapes a quote. Values are
//! parsed according to the target schema; the literal cells `NULL` and `ALL`
//! map to the corresponding pseudo-values in any column.

use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::{DataType, Schema};
use crate::value::Value;
use std::io::{Read, Write};

/// Parse one CSV record (handles quoting). Returns the fields and the number
/// of input bytes consumed (including the record terminator).
fn parse_record(input: &str) -> Option<(Vec<String>, usize)> {
    if input.is_empty() {
        return None;
    }
    let bytes = input.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = 0;
    let mut in_quotes = false;
    loop {
        if i >= bytes.len() {
            fields.push(std::mem::take(&mut field));
            return Some((fields, i));
        }
        let c = bytes[i];
        if in_quotes {
            match c {
                b'"' if bytes.get(i + 1) == Some(&b'"') => {
                    field.push('"');
                    i += 2;
                }
                b'"' => {
                    in_quotes = false;
                    i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 safe: push the full char.
                    let ch = input[i..].chars().next().unwrap();
                    field.push(ch);
                    i += ch.len_utf8();
                }
            }
        } else {
            match c {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                b'\r' if bytes.get(i + 1) == Some(&b'\n') => {
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 2));
                }
                b'\n' => {
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 1));
                }
                _ => {
                    let ch = input[i..].chars().next().unwrap();
                    field.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
    }
}

fn parse_cell(cell: &str, dtype: DataType, line: usize, col: &str) -> Result<Value> {
    match cell {
        "NULL" => return Ok(Value::Null),
        "ALL" => return Ok(Value::All),
        _ => {}
    }
    let err = |msg: String| StorageError::Csv { line, message: msg };
    match dtype {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| err(format!("column `{col}`: bad int `{cell}`: {e}"))),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| err(format!("column `{col}`: bad float `{cell}`: {e}"))),
        DataType::Bool => match cell {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            _ => Err(err(format!("column `{col}`: bad bool `{cell}`"))),
        },
        DataType::Str | DataType::Any => Ok(Value::str(cell)),
    }
}

/// Read a relation from CSV text using the given schema. The header is
/// validated against the schema's (base) column names.
pub fn read_str(text: &str, schema: &Schema) -> Result<Relation> {
    let mut rest = text;
    let mut line_no = 1;
    let (header, used) = parse_record(rest).ok_or(StorageError::Csv {
        line: 1,
        message: "empty input".into(),
    })?;
    rest = &rest[used..];
    if header.len() != schema.len() {
        return Err(StorageError::Csv {
            line: 1,
            message: format!(
                "header has {} columns, schema has {}",
                header.len(),
                schema.len()
            ),
        });
    }
    for (h, f) in header.iter().zip(schema.fields()) {
        if h != &f.name && h != f.base_name() {
            return Err(StorageError::Csv {
                line: 1,
                message: format!(
                    "header column `{h}` does not match schema field `{}`",
                    f.name
                ),
            });
        }
    }
    let mut rel = Relation::empty(schema.clone());
    while let Some((cells, used)) = parse_record(rest) {
        line_no += 1;
        rest = &rest[used..];
        if cells.len() == 1 && cells[0].is_empty() {
            continue; // blank line
        }
        if cells.len() != schema.len() {
            return Err(StorageError::Csv {
                line: line_no,
                message: format!("expected {} fields, got {}", schema.len(), cells.len()),
            });
        }
        let values: Result<Vec<Value>> = cells
            .iter()
            .zip(schema.fields())
            .map(|(c, f)| parse_cell(c, f.dtype, line_no, &f.name))
            .collect();
        rel.push_unchecked(Row::new(values?));
    }
    Ok(rel)
}

/// Read a relation from any reader.
pub fn read<R: Read>(mut reader: R, schema: &Schema) -> Result<Relation> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    read_str(&buf, schema)
}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn write_cell(out: &mut String, v: &Value) {
    let s = v.to_string();
    if needs_quoting(&s) {
        out.push('"');
        out.push_str(&s.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(&s);
    }
}

/// Serialize a relation as CSV text (header + rows).
pub fn write_string(relation: &Relation) -> String {
    let mut out = String::new();
    for (i, f) in relation.schema().fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&f.name);
    }
    out.push('\n');
    for row in relation.iter() {
        for (i, v) in row.values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_cell(&mut out, v);
        }
        out.push('\n');
    }
    out
}

/// Write a relation as CSV to any writer.
pub fn write<W: Write>(mut writer: W, relation: &Relation) -> Result<()> {
    writer.write_all(write_string(relation).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ])
    }

    #[test]
    fn roundtrip_simple() {
        let text = "prod,state,sale\n1,NY,10.5\n2,CA,20\n";
        let rel = read_str(text, &schema()).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0][1], Value::str("NY"));
        assert_eq!(rel.rows()[1][2], Value::Float(20.0));
        let out = write_string(&rel);
        let rel2 = read_str(&out, &schema()).unwrap();
        assert!(rel.same_multiset(&rel2));
    }

    #[test]
    fn all_and_null_pseudo_values() {
        let text = "prod,state,sale\nALL,NY,1\n2,NULL,2\n";
        let rel = read_str(text, &schema()).unwrap();
        assert_eq!(rel.rows()[0][0], Value::All);
        assert_eq!(rel.rows()[1][1], Value::Null);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let text = "prod,state,sale\n1,\"New York, NY\",3\n2,\"say \"\"hi\"\"\",4\n";
        let rel = read_str(text, &schema()).unwrap();
        assert_eq!(rel.rows()[0][1], Value::str("New York, NY"));
        assert_eq!(rel.rows()[1][1], Value::str("say \"hi\""));
        // Roundtrip preserves quoting.
        let rel2 = read_str(&write_string(&rel), &schema()).unwrap();
        assert!(rel.same_multiset(&rel2));
    }

    #[test]
    fn bad_header_and_bad_cells_error_with_line_numbers() {
        let bad_header = "prod,city,sale\n";
        assert!(matches!(
            read_str(bad_header, &schema()),
            Err(StorageError::Csv { line: 1, .. })
        ));
        let bad_int = "prod,state,sale\nx,NY,1\n";
        assert!(matches!(
            read_str(bad_int, &schema()),
            Err(StorageError::Csv { line: 2, .. })
        ));
        let bad_arity = "prod,state,sale\n1,NY\n";
        assert!(matches!(
            read_str(bad_arity, &schema()),
            Err(StorageError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let text = "prod,state,sale\r\n1,NY,1\r\n\r\n2,CA,2\r\n";
        let rel = read_str(text, &schema()).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let text = "prod,state,sale\n1,NY,1";
        let rel = read_str(text, &schema()).unwrap();
        assert_eq!(rel.len(), 1);
    }
}
