//! Schemas: ordered, named, typed columns.
//!
//! The MD-join output schema is `B ∪ {f₁_R_c₁, …, f_n_R_c_n}` (Definition 3.1),
//! so schemas must support cheap concatenation and name lookup, including the
//! qualified names (`Sales.month`) used by θ-conditions.

use crate::error::{Result, StorageError};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Column data type. `Any` admits every value (used by computed columns whose
/// type is data dependent, e.g. a min over a heterogeneous column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bool,
    Any,
}

impl DataType {
    /// Whether `v` may be stored in a column of this type. `Null` and `ALL`
    /// are admissible everywhere (cube dimensions contain `ALL`).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (_, Value::All)
                | (DataType::Any, _)
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_) | Value::Int(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }

    /// True if this is a numeric type usable by sum/avg aggregates.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Any)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Any => "any",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }

    /// Unqualified part of the name (`sale` for `Sales.sale`).
    pub fn base_name(&self) -> &str {
        match self.name.rsplit_once('.') {
            Some((_, b)) => b,
            None => &self.name,
        }
    }
}

/// An ordered collection of fields. Cheap to clone (fields behind an `Arc`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: Arc::new(fields),
        }
    }

    /// Convenience constructor from `(name, dtype)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Position of a column by name. Matches the exact name first, then falls
    /// back to matching the unqualified base name when unambiguous.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Ok(i);
        }
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.base_name() == name)
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(StorageError::UnknownColumn {
                name: name.to_string(),
                schema: self.to_string(),
            }),
            _ => Err(StorageError::AmbiguousColumn {
                name: name.to_string(),
                schema: self.to_string(),
            }),
        }
    }

    /// Whether the schema contains a column resolvable by `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    /// Positions of several columns, in the given order.
    pub fn indices_of(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// Concatenate two schemas (MD-join output schema construction).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.as_ref().clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Append one field, returning a new schema.
    pub fn with_field(&self, field: Field) -> Schema {
        let mut fields = self.fields.as_ref().clone();
        fields.push(field);
        Schema::new(fields)
    }

    /// Project to a subset of columns (by position).
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Return a copy where every field name is prefixed with `alias.`
    /// (dropping any previous qualifier). Used when the same detail table
    /// appears several times in a series of MD-joins (footnote 3 of the paper:
    /// each application should be preceded by renaming).
    pub fn qualify(&self, alias: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field::new(format!("{alias}.{}", f.base_name()), f.dtype))
                .collect(),
        )
    }

    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_schema() -> Schema {
        Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("prod", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ])
    }

    #[test]
    fn index_of_exact_and_base_name() {
        let s = sales_schema().qualify("Sales");
        assert_eq!(s.index_of("Sales.month").unwrap(), 2);
        assert_eq!(s.index_of("month").unwrap(), 2);
        assert!(s.index_of("bogus").is_err());
    }

    #[test]
    fn ambiguous_base_name_is_an_error() {
        let s = sales_schema()
            .qualify("a")
            .concat(&sales_schema().qualify("b"));
        assert!(matches!(
            s.index_of("sale"),
            Err(StorageError::AmbiguousColumn { .. })
        ));
        assert_eq!(s.index_of("a.sale").unwrap(), 4);
        assert_eq!(s.index_of("b.sale").unwrap(), 9);
    }

    #[test]
    fn concat_preserves_order() {
        let a = Schema::from_pairs(&[("x", DataType::Int)]);
        let b = Schema::from_pairs(&[("y", DataType::Float)]);
        let c = a.concat(&b);
        assert_eq!(c.names(), vec!["x", "y"]);
    }

    #[test]
    fn project_selects_by_position() {
        let s = sales_schema();
        let p = s.project(&[3, 0]);
        assert_eq!(p.names(), vec!["state", "cust"]);
    }

    #[test]
    fn admits_null_and_all_everywhere() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bool,
        ] {
            assert!(t.admits(&Value::Null));
            assert!(t.admits(&Value::All));
        }
        assert!(DataType::Float.admits(&Value::Int(3)));
        assert!(!DataType::Int.admits(&Value::str("x")));
    }

    #[test]
    fn qualify_replaces_existing_qualifier() {
        let s = sales_schema().qualify("a").qualify("b");
        assert_eq!(s.field(0).name, "b.cust");
    }
}
