//! Rows: fixed-arity vectors of [`Value`]s.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Deref, Index};

/// A single tuple. Thin wrapper over `Vec<Value>` so we can attach helpers
/// (key extraction, concatenation) without exposing mutation everywhere.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Build a row from anything convertible to `Value`.
    pub fn from_values<V: Into<Value>, I: IntoIterator<Item = V>>(iter: I) -> Self {
        Row(iter.into_iter().map(Into::into).collect())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Mutable access to the values (string interning on the ingest path).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.0
    }

    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Extract the sub-row at `indices` (group/index key extraction).
    pub fn key(&self, indices: &[usize]) -> Vec<Value> {
        indices.iter().map(|&i| self.0[i].clone()).collect()
    }

    /// Concatenate two rows (join output construction).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Append one value, returning a new row.
    pub fn with_value(&self, v: Value) -> Row {
        let mut vals = self.0.clone();
        vals.push(v);
        Row(vals)
    }
}

impl Deref for Row {
    type Target = [Value];
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_extracts_in_given_order() {
        let r = Row::from_values([1i64, 2, 3]);
        assert_eq!(r.key(&[2, 0]), vec![Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn concat_appends() {
        let a = Row::from_values([1i64]);
        let b = Row::from_values(["x"]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c[1], Value::str("x"));
    }

    #[test]
    fn rows_hash_as_group_keys() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Row::from_values([1i64, 2]));
        set.insert(Row::from_values([1i64, 2]));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn display_is_bracketed() {
        let r = Row::new(vec![Value::All, Value::Int(4)]);
        assert_eq!(r.to_string(), "[ALL, 4]");
    }
}
