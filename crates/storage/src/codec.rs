//! Shared binary codec for the disk-resident formats (`spill` run files and
//! `pager` pages/manifests).
//!
//! Both formats encode values as `tag u8 + payload` (floats as raw bit
//! patterns so round trips are bit-identical), schemas as
//! `field_count u32; per field: name_len u32, UTF-8 name, dtype tag u8`, and
//! integrity as a trailing FNV-1a64 checksum over every prior byte. Keeping
//! the codec in one place guarantees the spill and pager layers can never
//! drift apart on the encoding of a `Value`.

use crate::error::{Result, StorageError};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use std::path::Path;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

pub(crate) fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Any => 4,
    }
}

pub(crate) fn tag_dtype(t: u8) -> Option<DataType> {
    Some(match t {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Any,
        _ => return None,
    })
}

/// Append one value as `tag + payload`:
/// `0 Null | 1 All | 2 Int i64 LE | 3 Float f64-bits u64 LE |
///  4 Str u32 len + UTF-8 | 5 Bool u8`.
pub(crate) fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::All => buf.push(1),
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            buf.push(3);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.push(5);
            buf.push(*b as u8);
        }
    }
}

/// Append a schema: field count then `(name_len, name, dtype tag)` triples.
pub(crate) fn encode_schema(buf: &mut Vec<u8>, schema: &Schema) {
    buf.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for f in schema.fields() {
        buf.extend_from_slice(&(f.name.len() as u32).to_le_bytes());
        buf.extend_from_slice(f.name.as_bytes());
        buf.push(dtype_tag(f.dtype));
    }
}

/// Which corruption error a [`Cursor`] raises on a malformed read.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CorruptKind {
    Spill,
    Page,
}

/// Byte cursor over a fully read buffer; every short read is corruption.
pub(crate) struct Cursor<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
    path: &'a Path,
    kind: CorruptKind,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8], path: &'a Path, kind: CorruptKind) -> Self {
        Cursor {
            data,
            pos: 0,
            path,
            kind,
        }
    }

    pub(crate) fn corrupt(&self, detail: impl Into<String>) -> StorageError {
        let path = self.path.display().to_string();
        let detail = detail.into();
        match self.kind {
            CorruptKind::Spill => StorageError::SpillCorrupt { path, detail },
            CorruptKind::Page => StorageError::PageCorrupt { path, detail },
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.corrupt("length overflow"))?;
        if end > self.data.len() {
            return Err(self.corrupt(format!(
                "truncated: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Decode one tagged value.
    pub(crate) fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::All,
            2 => Value::Int(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            3 => Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            4 => {
                let len = self.u32()? as usize;
                let bytes = self.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| self.corrupt("string value is not UTF-8"))?;
                Value::str(s)
            }
            5 => Value::Bool(self.u8()? != 0),
            t => return Err(self.corrupt(format!("bad value tag {t}"))),
        })
    }

    /// Decode a schema written by [`encode_schema`].
    pub(crate) fn schema(&mut self) -> Result<Schema> {
        let n_fields = self.u32()? as usize;
        let mut fields = Vec::with_capacity(n_fields.min(1024));
        for _ in 0..n_fields {
            let name_len = self.u32()? as usize;
            let bytes = self.take(name_len)?;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| self.corrupt("field name is not UTF-8"))?
                .to_string();
            let tag = self.u8()?;
            let dtype = tag_dtype(tag).ok_or_else(|| self.corrupt("bad dtype tag"))?;
            fields.push(Field::new(name, dtype));
        }
        Ok(Schema::new(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip_is_bit_identical() {
        let vals = vec![
            Value::Null,
            Value::All,
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::str("naïve — ünïcödé"),
            Value::Bool(true),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            encode_value(&mut buf, v);
        }
        let path = Path::new("codec-test");
        let mut c = Cursor::new(&buf, path, CorruptKind::Page);
        for v in &vals {
            let back = c.value().unwrap();
            match (v, &back) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, &back),
            }
        }
        assert_eq!(c.pos, buf.len());
    }

    #[test]
    fn schema_round_trips() {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("x", DataType::Float),
            ("s", DataType::Str),
            ("b", DataType::Bool),
            ("a", DataType::Any),
        ]);
        let mut buf = Vec::new();
        encode_schema(&mut buf, &schema);
        let path = Path::new("codec-test");
        let mut c = Cursor::new(&buf, path, CorruptKind::Spill);
        assert_eq!(c.schema().unwrap(), schema);
    }

    #[test]
    fn short_reads_surface_the_right_corruption_kind() {
        let path = Path::new("codec-test");
        let mut page = Cursor::new(&[2u8, 0, 0], path, CorruptKind::Page);
        assert!(matches!(
            page.value(),
            Err(StorageError::PageCorrupt { .. })
        ));
        let mut spill = Cursor::new(&[2u8, 0, 0], path, CorruptKind::Spill);
        assert!(matches!(
            spill.value(),
            Err(StorageError::SpillCorrupt { .. })
        ));
    }
}
