//! The shared probe-key hasher.
//!
//! Section 4.5's probe structures hash the same key population — `B`'s
//! canonicalized key columns — from two call sites: the generic
//! [`HashIndex`](crate::HashIndex) over `Vec<Value>` keys, and the vectorized
//! executor's specialized single-column maps derived from it
//! (`mdj_core::vectorized::BatchProbe`). Both use this one multiplicative
//! (Fibonacci-style) mix so the implementations cannot drift apart: any probe
//! the fast path answers must land in the same bucket *contents* as the
//! generic index, and keeping a single hasher makes that property testable
//! (see `fast_int_map_matches_index_buckets_exactly` in `mdj_core`).
//!
//! The default SipHash costs more per lookup than the bucket scan it guards.
//! Key distribution here is adversary-free — maps are rebuilt per plan from
//! `B`'s own keys — so a fast non-cryptographic mix is safe.

use std::hash::{BuildHasherDefault, Hasher};

/// One mixing step: rotate-xor-multiply. The constant is a 64-bit prime with
/// good avalanche behavior under multiplication; the rotate feeds high bits
/// back down so consecutive keys don't collide in the low bits HashMap uses.
#[inline]
fn mix(state: u64, v: u64) -> u64 {
    (state.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95)
}

/// Multiplicative hasher shared by every probe-key map. Every write path —
/// whole words and byte streams alike — funnels through the same [`mix`]
/// step, so two call sites hashing the same logical key always agree.
#[derive(Debug, Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = mix(self.0, byte as u64);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.0 = mix(self.0, v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = mix(self.0, v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = mix(self.0, v);
    }

    fn write_usize(&mut self, v: usize) {
        self.0 = mix(self.0, v as u64);
    }

    fn write_i64(&mut self, v: i64) {
        self.0 = mix(self.0, v as u64);
    }
}

/// `BuildHasher` for probe-key maps: `HashMap<K, V, KeyBuildHasher>`.
pub type KeyBuildHasher = BuildHasherDefault<KeyHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        KeyBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_value_sensitive() {
        assert_eq!(hash_of(&42i64), hash_of(&42i64));
        assert_ne!(hash_of(&42i64), hash_of(&43i64));
        assert_ne!(hash_of(&0i64), hash_of(&1i64));
    }

    #[test]
    fn adversarial_key_shapes_stay_distinct() {
        // Multiples of large powers of two defeat a bare multiplicative hash
        // (the product's low bits go to zero); the rotate step must keep them
        // apart. Also the classic boundary values.
        let keys = [
            0i64,
            1,
            -1,
            i64::MIN,
            i64::MAX,
            1 << 40,
            2 << 40,
            3 << 40,
            -(1 << 40),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(hash_of(a), hash_of(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn value_keys_hash_consistently() {
        // The generic index hashes Vec<Value>; equal keys must agree and the
        // discriminant must separate same-payload values of different types.
        let a = vec![Value::Int(7), Value::str("NY")];
        let b = vec![Value::Int(7), Value::str("NY")];
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&Value::Int(0)), hash_of(&Value::Float(0.0)));
        assert_ne!(hash_of(&Value::Null), hash_of(&Value::Int(0)));
    }
}
