//! In-memory relations (multisets of rows with a schema).

use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// An in-memory relation: a schema plus a multiset of rows.
///
/// Relations are the single exchange format between every operator in the
/// reproduction: base-values tables `B`, detail tables `R`, and MD-join outputs
/// are all `Relation`s, exactly as in the paper ("the base values table B as
/// well as the relation R can be the result of a relational algebra
/// expression").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from parts without validation (rows are trusted).
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Self {
        Relation { schema, rows }
    }

    /// Build from parts, validating every row's arity and column types.
    pub fn try_new(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for row in &rows {
            Self::validate_row(&schema, row)?;
        }
        Ok(Relation { schema, rows })
    }

    fn validate_row(schema: &Schema, row: &Row) -> Result<()> {
        if row.len() != schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: schema.len(),
                got: row.len(),
            });
        }
        for (i, v) in row.values().iter().enumerate() {
            let field = schema.field(i);
            if !field.dtype.admits(v) {
                return Err(StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.to_string(),
                    got: v.type_name().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Append a row, validating it against the schema.
    pub fn push(&mut self, row: Row) -> Result<()> {
        Self::validate_row(&self.schema, &row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append a row without validation.
    pub fn push_unchecked(&mut self, row: Row) {
        self.rows.push(row);
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Column index lookup, delegated to the schema.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }

    /// Project to the named columns (duplicates allowed, order preserved).
    pub fn project(&self, names: &[&str]) -> Result<Relation> {
        let idx = self.schema.indices_of(names)?;
        let schema = self.schema.project(&idx);
        let rows = self.rows.iter().map(|r| Row::new(r.key(&idx))).collect();
        Ok(Relation { schema, rows })
    }

    /// `SELECT DISTINCT` over the named columns — the paper's canonical way of
    /// building a group-by base-values table (`select distinct cust from Sales`).
    pub fn distinct_on(&self, names: &[&str]) -> Result<Relation> {
        let idx = self.schema.indices_of(names)?;
        let schema = self.schema.project(&idx);
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        let mut rows = Vec::new();
        for r in &self.rows {
            let key = r.key(&idx);
            if seen.insert(key.clone()) {
                rows.push(Row::new(key));
            }
        }
        Ok(Relation { schema, rows })
    }

    /// Remove duplicate rows (full-row distinct).
    pub fn distinct(&self) -> Relation {
        let mut seen: HashSet<Row> = HashSet::new();
        let mut rows = Vec::new();
        for r in &self.rows {
            if seen.insert(r.clone()) {
                rows.push(r.clone());
            }
        }
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Filter by a row predicate.
    pub fn filter(&self, mut pred: impl FnMut(&Row) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Multiset union with an identically-shaped relation (Theorem 4.1 glue).
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        if self.schema.len() != other.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                got: other.schema.len(),
            });
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(Relation {
            schema: self.schema.clone(),
            rows,
        })
    }

    /// In-place stable sort by the named columns (ascending, total order).
    pub fn sort_by(&mut self, names: &[&str]) -> Result<()> {
        let idx = self.schema.indices_of(names)?;
        self.rows.sort_by_key(|row| row.key(&idx));
        Ok(())
    }

    /// Copy with a qualified schema (`alias.column` names).
    pub fn with_alias(&self, alias: &str) -> Relation {
        Relation {
            schema: self.schema.qualify(alias),
            rows: self.rows.clone(),
        }
    }

    /// Replace the schema (must have the same arity). Used by renaming steps.
    pub fn with_schema(&self, schema: Schema) -> Result<Relation> {
        if schema.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                got: schema.len(),
            });
        }
        Ok(Relation {
            schema,
            rows: self.rows.clone(),
        })
    }

    /// Compare as unordered multisets (test helper: operator outputs are
    /// order-insensitive).
    pub fn same_multiset(&self, other: &Relation) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }

    /// Multiset comparison with relative float tolerance. Needed when the
    /// same aggregate is computed by plans that sum floats in different
    /// orders (e.g. a roll-up chain vs a direct scan): the results are
    /// mathematically equal but not bit-identical.
    pub fn approx_same_multiset(&self, other: &Relation, eps: f64) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a.iter().zip(&b).all(|(x, y)| {
            x.len() == y.len()
                && x.values()
                    .iter()
                    .zip(y.values())
                    .all(|(u, w)| match (u, w) {
                        (Value::Float(p), Value::Float(q)) => {
                            let scale = p.abs().max(q.abs()).max(1.0);
                            (p - q).abs() <= eps * scale
                        }
                        _ => u == w,
                    })
        })
    }
}

impl fmt::Display for Relation {
    /// Render as an aligned ASCII table (used by the examples and the harness).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|fl| fl.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        write_sep(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:w$} |")?;
        }
        writeln!(f)?;
        write_sep(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)?;
        }
        write_sep(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::try_new(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("NJ"), Value::Float(20.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("NY"), Value::Float(30.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(40.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn try_new_validates_types() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let bad = Relation::try_new(schema.clone(), vec![Row::from_values(["oops"])]);
        assert!(matches!(bad, Err(StorageError::TypeMismatch { .. })));
        let ok = Relation::try_new(schema, vec![Row::from_values([1i64])]);
        assert!(ok.is_ok());
    }

    #[test]
    fn push_validates_arity() {
        let mut r = rel();
        let e = r.push(Row::from_values([1i64]));
        assert!(matches!(e, Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn distinct_on_builds_base_values() {
        let b = rel().distinct_on(&["cust"]).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.schema().names(), vec!["cust"]);
    }

    #[test]
    fn distinct_on_two_columns() {
        let b = rel().distinct_on(&["cust", "state"]).unwrap();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn project_allows_duplicates_and_reorder() {
        let p = rel().project(&["sale", "cust", "sale"]).unwrap();
        assert_eq!(p.schema().names(), vec!["sale", "cust", "sale"]);
        assert_eq!(p.rows()[0][0], Value::Float(10.0));
        assert_eq!(p.rows()[0][2], Value::Float(10.0));
    }

    #[test]
    fn union_concatenates_multisets() {
        let r = rel();
        let u = r.union(&r).unwrap();
        assert_eq!(u.len(), 8);
    }

    #[test]
    fn sort_by_orders_rows() {
        let mut r = rel();
        r.sort_by(&["state", "sale"]).unwrap();
        assert_eq!(r.rows()[0][1], Value::str("NJ"));
        assert_eq!(r.rows()[1][2], Value::Float(10.0));
    }

    #[test]
    fn same_multiset_ignores_order() {
        let mut r2 = rel();
        r2.rows_mut().reverse();
        assert!(rel().same_multiset(&r2));
        let mut r3 = rel();
        r3.rows_mut().pop();
        assert!(!rel().same_multiset(&r3));
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let f = rel().filter(|r| r[1] == Value::str("NY"));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn display_renders_table() {
        let s = rel().to_string();
        assert!(s.contains("cust"));
        assert!(s.contains("NY"));
        assert!(s.starts_with('+'));
    }

    #[test]
    fn with_alias_qualifies_names() {
        let r = rel().with_alias("Sales");
        assert_eq!(r.schema().field(0).name, "Sales.cust");
        assert_eq!(r.col("sale").unwrap(), 2);
    }
}
