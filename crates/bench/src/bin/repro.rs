//! `repro` — regenerate every experiment table from DESIGN.md in one run.
//!
//! Prints Markdown tables (wall time, work counters, and the shape check for
//! each experiment) suitable for pasting into EXPERIMENTS.md:
//!
//! ```text
//! cargo run -p mdj-bench --bin repro --release [--quick] [--json <path>] [--only <eN>]
//! cargo run -p mdj-bench --bin repro --release -- --check <new.json> <baseline.json>
//! ```
//!
//! `--only e11` (etc.) runs a single experiment — handy when iterating on
//! one table. `--check` diffs a fresh `--json` baseline against a committed
//! one and exits non-zero if any machine-independent work counter grew —
//! CI's perf-smoke job uses it to fail on counter regressions instead of
//! flaky wall-clock thresholds.
//!
//! With `--json <path>` the run also emits a machine-readable baseline: one
//! entry per experiment with its wall time, plus per-variant entries carrying
//! the machine-independent work counters (scans / tuples / probes / updates /
//! batches, the spill counters, and the cuboid-cache/ingest counters) for
//! the vectorized-vs-scalar ablation (E11), the degradation ablation (E12),
//! and the cache replay (E13). Baselines are sparse in one direction only:
//! a baseline committed before a counter existed (`BENCH_0.json`,
//! `BENCH_1.json`) gates just the counters it carries, while `BENCH_2.json`
//! adds the spill counters, `BENCH_4.json` the cache counters, and
//! `BENCH_5.json` the paged-I/O counters (E14) — but every
//! counter and entry a baseline *does* carry must still be present in the
//! new run, and a disappearing one fails with an explicit missing-counter
//! diff (a vanished gate is itself a regression). CI's perf-smoke job
//! uploads a fresh baseline per run so counter regressions show up as a
//! diff, not a flaky threshold.

use mdj_agg::{AggSpec, Registry};
use mdj_algebra::rules::{coalesce::detail_scan_count, coalesce_chains};
use mdj_algebra::{execute, Plan};
use mdj_bench::{bench_payments, bench_sales, bench_sales_zipf, tristate_blocks};
use mdj_core::basevalues::{cube, cube_match_theta, cuboid_theta};
use mdj_core::{Block, EngineConfig, ExecContext, ExecStrategy, MdJoin, ProbeStrategy, QueryCtx};
use mdj_cube::naive::{cube_per_cuboid, cube_via_wildcard_theta};
use mdj_cube::partitioned::cube_partitioned;
use mdj_cube::pipesort::{build_pipelines, cube_pipesort, sort_count};
use mdj_cube::rollup_chain::cube_rollup_chain;
use mdj_cube::CubeSpec;
use mdj_expr::builder::*;
use mdj_expr::Expr;
use mdj_storage::{Catalog, DataType, Relation, Row, ScanStats, Schema, SortedIndex, Value};
use std::ops::Bound;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serial MD-join through the `MdJoin` builder (every experiment below pins
/// the plan it measures explicitly).
fn md_join(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> mdj_core::Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(ctx)
}

/// Theorem 4.1 partitioned plan through the builder.
fn md_join_partitioned(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    m: usize,
    ctx: &ExecContext,
) -> mdj_core::Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Partitioned { partitions: m })
        .run(ctx)
}

/// Generalized (multi-θ) MD-join through the builder.
fn md_join_multi(
    b: &Relation,
    r: &Relation,
    blocks: &[Block],
    ctx: &ExecContext,
) -> mdj_core::Result<Relation> {
    MdJoin::new(b, r).blocks(blocks.iter().cloned()).run(ctx)
}

/// One `--json` baseline entry. Wall-clock is always present; the work
/// counters are attached only where an experiment measures a single variant
/// under a dedicated [`ScanStats`] (they are exact and machine-independent,
/// unlike milliseconds).
struct JsonEntry {
    name: String,
    wall_ms: f64,
    counters: Option<JsonCounters>,
}

struct JsonCounters {
    scans: u64,
    tuples: u64,
    probes: u64,
    updates: u64,
    batches: u64,
    batch_fallbacks: u64,
    bytes_spilled: u64,
    spill_partitions: u64,
    spill_read_bytes: u64,
    fallback_theta: u64,
    fallback_prefilter: u64,
    fallback_key: u64,
    fallback_agg: u64,
    gen_sets: u64,
    gen_set_fallbacks: u64,
    cache_hits: u64,
    cache_rollup_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
    ingest_batches: u64,
    bytes_read: u64,
    pages_read: u64,
    pool_evictions: u64,
}

static JSON_ENTRIES: std::sync::Mutex<Vec<JsonEntry>> = std::sync::Mutex::new(Vec::new());

fn record_wall(name: impl Into<String>, wall: Duration) {
    JSON_ENTRIES.lock().unwrap().push(JsonEntry {
        name: name.into(),
        wall_ms: wall.as_secs_f64() * 1e3,
        counters: None,
    });
}

fn record_counters(name: impl Into<String>, wall: Duration, stats: &ScanStats) {
    JSON_ENTRIES.lock().unwrap().push(JsonEntry {
        name: name.into(),
        wall_ms: wall.as_secs_f64() * 1e3,
        counters: Some(JsonCounters {
            scans: stats.scans(),
            tuples: stats.tuples_scanned(),
            probes: stats.probes(),
            updates: stats.updates(),
            batches: stats.batches(),
            batch_fallbacks: stats.batch_fallbacks(),
            bytes_spilled: stats.bytes_spilled(),
            spill_partitions: stats.spill_partitions(),
            spill_read_bytes: stats.spill_read_bytes(),
            fallback_theta: stats.fallback_theta(),
            fallback_prefilter: stats.fallback_prefilter(),
            fallback_key: stats.fallback_key(),
            fallback_agg: stats.fallback_agg(),
            gen_sets: stats.gen_sets(),
            gen_set_fallbacks: stats.gen_set_fallbacks(),
            cache_hits: stats.cache_hits(),
            cache_rollup_hits: stats.cache_rollup_hits(),
            cache_misses: stats.cache_misses(),
            cache_invalidations: stats.cache_invalidations(),
            ingest_batches: stats.ingest_batches(),
            bytes_read: stats.bytes_read(),
            pages_read: stats.pages_read(),
            pool_evictions: stats.pool_evictions(),
        }),
    });
}

/// Escape a string for embedding in a JSON string literal. The hand-rolled
/// writer below used to splice labels in verbatim, so a quote, backslash, or
/// control character in an experiment name produced an unparseable baseline.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled writer: the workspace's vendored `serde` is a no-op stub, so
/// the baseline is emitted as literal JSON text.
fn write_json(path: &str, quick: bool) -> std::io::Result<()> {
    let entries = JSON_ENTRIES.lock().unwrap();
    let mut s = String::from("{\n  \"tool\": \"repro\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n  \"experiments\": [\n"));
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}",
            json_escape(&e.name),
            e.wall_ms
        ));
        if let Some(c) = &e.counters {
            s.push_str(&format!(
                ", \"scans\": {}, \"tuples\": {}, \"probes\": {}, \"updates\": {}, \
                 \"batches\": {}, \"batch_fallbacks\": {}, \"bytes_spilled\": {}, \
                 \"spill_partitions\": {}, \"spill_read_bytes\": {}, \
                 \"fallback_theta\": {}, \"fallback_prefilter\": {}, \
                 \"fallback_key\": {}, \"fallback_agg\": {}, \
                 \"gen_sets\": {}, \"gen_set_fallbacks\": {}, \
                 \"cache_hits\": {}, \"cache_rollup_hits\": {}, \
                 \"cache_misses\": {}, \"cache_invalidations\": {}, \
                 \"ingest_batches\": {}, \"bytes_read\": {}, \
                 \"pages_read\": {}, \"pool_evictions\": {}",
                c.scans,
                c.tuples,
                c.probes,
                c.updates,
                c.batches,
                c.batch_fallbacks,
                c.bytes_spilled,
                c.spill_partitions,
                c.spill_read_bytes,
                c.fallback_theta,
                c.fallback_prefilter,
                c.fallback_key,
                c.fallback_agg,
                c.gen_sets,
                c.gen_set_fallbacks,
                c.cache_hits,
                c.cache_rollup_hits,
                c.cache_misses,
                c.cache_invalidations,
                c.ingest_batches,
                c.bytes_read,
                c.pages_read,
                c.pool_evictions
            ));
        }
        s.push_str(if i + 1 == entries.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// The machine-independent work counters a baseline entry *may* carry, in
/// the order they appear in the JSON. Wall time is deliberately not here: it
/// is machine-dependent and never gates CI. Entries are sparse — a baseline
/// written before a counter existed simply omits it and gates only the
/// counters it has, so growing this list never invalidates committed
/// baselines. The reverse is NOT tolerated: every counter (and every entry)
/// a baseline carries must still be present in the new run — a counter that
/// disappears is a lost gate, not a clean pass (see [`compare_entries`]).
const CHECK_COUNTERS: [&str; 23] = [
    "scans",
    "tuples",
    "probes",
    "updates",
    "batches",
    "batch_fallbacks",
    "bytes_spilled",
    "spill_partitions",
    "spill_read_bytes",
    "fallback_theta",
    "fallback_prefilter",
    "fallback_key",
    "fallback_agg",
    "gen_sets",
    "gen_set_fallbacks",
    "cache_hits",
    "cache_rollup_hits",
    "cache_misses",
    "cache_invalidations",
    "ingest_batches",
    "bytes_read",
    "pages_read",
    "pool_evictions",
];

/// One parsed baseline entry (`--check` mode): the counters it carries, as
/// `(index into CHECK_COUNTERS, value)` pairs. Wall-time-only entries (no
/// counters at all) are skipped by the parser and never gate.
struct CheckEntry {
    name: String,
    counters: Vec<(usize, u64)>,
}

#[cfg(test)]
impl CheckEntry {
    /// Test helper: an entry carrying the pre-fallback-attribution counter
    /// set (`BENCH_2`-era baselines stop at the spill counters).
    fn dense(name: &str, values: [u64; 9]) -> Self {
        CheckEntry {
            name: name.into(),
            counters: values.into_iter().enumerate().collect(),
        }
    }
}

/// Decode the string literal starting right after an opening `"`, honoring
/// the escapes [`json_escape`] emits. Returns the decoded text.
fn parse_json_string(rest: &str) -> String {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => break,
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                        out.push(c);
                    }
                }
                Some(other) => out.push(other),
                None => break,
            },
            c => out.push(c),
        }
    }
    out
}

/// Extract `"key": <int>` from a JSON entry line.
fn parse_json_int(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Line-based parse of the writer's own `--json` output: one entry per line,
/// carrying whichever of [`CHECK_COUNTERS`] the line has. Entries with no
/// counters at all (wall-time-only) are skipped.
fn parse_baseline(text: &str) -> Vec<CheckEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(at) = line.find("\"name\": \"") else {
            continue;
        };
        let name = parse_json_string(&line[at + "\"name\": \"".len()..]);
        let counters: Vec<(usize, u64)> = CHECK_COUNTERS
            .iter()
            .enumerate()
            .filter_map(|(i, key)| parse_json_int(line, key).map(|v| (i, v)))
            .collect();
        if !counters.is_empty() {
            out.push(CheckEntry { name, counters });
        }
    }
    out
}

/// Diff two parsed baselines. A baseline may carry *fewer* counters than the
/// new run (it was committed before those counters existed) and it gates
/// only the counters it has; entries that exist only in the new run are new
/// coverage and pass freely. The other direction is a failure, not a skip:
/// an entry or counter the baseline carries but the new run lacks means a
/// gate silently disappeared — exactly the regression `--check` exists to
/// catch — so it is reported with an explicit missing-counter diff. Any
/// shared counter that *grew* is a regression: the counters are exact and
/// deterministic, so more probes/updates/spilled-bytes means the engine is
/// doing more work (or falling back) on a shape it used to cover.
fn compare_entries(new: &[CheckEntry], baseline: &[CheckEntry]) -> Vec<String> {
    let mut regressions = Vec::new();
    for base in baseline {
        let Some(cur) = new.iter().find(|e| e.name == base.name) else {
            regressions.push(format!(
                "{}: entry missing from the new run ({} baseline counters no longer gated)",
                base.name,
                base.counters.len()
            ));
            continue;
        };
        for &(i, base_v) in &base.counters {
            match cur.counters.iter().find(|(j, _)| *j == i) {
                None => regressions.push(format!(
                    "{}: {} missing from the new run (baseline gates it at {})",
                    base.name, CHECK_COUNTERS[i], base_v
                )),
                Some(&(_, cur_v)) if cur_v > base_v => regressions.push(format!(
                    "{}: {} regressed {} -> {}",
                    base.name, CHECK_COUNTERS[i], base_v, cur_v
                )),
                Some(_) => {}
            }
        }
    }
    regressions
}

/// `--check <new.json> <baseline.json>`: exit 0 when no counter regressed,
/// 1 on regression, 2 on usage/IO/parse trouble.
fn run_check(new_path: &str, baseline_path: &str) -> i32 {
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("repro --check: cannot read {path}: {e}");
            None
        }
    };
    let (Some(new_text), Some(base_text)) = (read(new_path), read(baseline_path)) else {
        return 2;
    };
    let new = parse_baseline(&new_text);
    let baseline = parse_baseline(&base_text);
    let common = baseline
        .iter()
        .filter(|b| new.iter().any(|n| n.name == b.name))
        .count();
    if common == 0 {
        eprintln!(
            "repro --check: no common counter entries between {new_path} ({} entries) \
             and {baseline_path} ({} entries)",
            new.len(),
            baseline.len()
        );
        return 2;
    }
    let regressions = compare_entries(&new, &baseline);
    if regressions.is_empty() {
        println!("repro --check: {common} entries compared against {baseline_path}, no counter regressions");
        0
    } else {
        for r in &regressions {
            eprintln!("repro --check: REGRESSION {r}");
        }
        1
    }
}

fn time<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    // Warm once, then report the best of three (stable on shared machines).
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let v = f();
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
            out = Some(v);
        }
    }
    (best, out.expect("ran at least once"))
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn header(title: &str, cols: &[&str]) {
    println!("\n### {title}\n");
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let (Some(new_path), Some(baseline_path)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: repro --check <new.json> <baseline.json>");
            std::process::exit(2);
        };
        std::process::exit(run_check(new_path, baseline_path));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if quick { 1 } else { 4 };
    println!("# MD-join reproduction — experiment tables");
    println!("\n(quick = {quick}; sizes scale with the flag — shapes are invariant)");
    type Experiment = (&'static str, fn(usize));
    let experiments: [Experiment; 14] = [
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
    ];
    for (name, f) in experiments {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let t0 = Instant::now();
        f(scale);
        record_wall(name, t0.elapsed());
    }
    println!("\nAll experiments completed; every equivalence assertion held.");
    if let Some(path) = json_path {
        write_json(&path, quick).expect("write --json baseline");
        println!("wrote work-counter baseline to {path}");
    }
}

fn e1(scale: usize) {
    let ctx = ExecContext::new();
    let spec = CubeSpec::new(
        &["prod", "month", "state"],
        vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
    );
    header(
        "E1 — Fig. 1 / Ex. 2.1: cube computation strategies (sum+count over prod×month×state)",
        &[
            "|R|",
            "wildcard-θ (ms)",
            "per-cuboid (ms)",
            "rollup-chain (ms)",
            "pipesort (ms)",
            "partitioned (ms)",
            "cells",
        ],
    );
    for rows in [2_000 * scale, 8_000 * scale] {
        let r = bench_sales(rows, 200);
        let (t_wild, a) = time(|| cube_via_wildcard_theta(&r, &spec, &ctx).unwrap());
        let (t_per, b) = time(|| cube_per_cuboid(&r, &spec, &ctx).unwrap());
        let (t_roll, c) = time(|| cube_rollup_chain(&r, &spec, &ctx).unwrap());
        let (t_pipe, d) = time(|| cube_pipesort(&r, &spec, &ctx).unwrap());
        let (t_part, e) = time(|| cube_partitioned(&r, &spec, 0, &ctx).unwrap());
        assert!(
            a.approx_same_multiset(&b, 1e-9)
                && b.approx_same_multiset(&c, 1e-9)
                && c.approx_same_multiset(&d, 1e-9)
                && d.approx_same_multiset(&e, 1e-9)
        );
        println!(
            "| {rows} | {} | {} | {} | {} | {} | {} |",
            ms(t_wild),
            ms(t_per),
            ms(t_roll),
            ms(t_pipe),
            ms(t_part),
            a.len()
        );
    }
}

fn e2(scale: usize) {
    let registry = Registry::standard();
    header(
        "E2 — Ex. 2.2 / Thm 4.3: tri-state pivot (3 MD-joins coalesced to 1 scan)",
        &[
            "|R|",
            "coalesced 1-scan (ms)",
            "sequential 3-scans (ms)",
            "classical hash (ms)",
            "classical sort-based (ms)",
            "scans coalesced/seq",
        ],
    );
    for rows in [10_000 * scale, 50_000 * scale] {
        let r = bench_sales(rows, rows / 100);
        let b = r.distinct_on(&["cust"]).unwrap();
        let blocks = tristate_blocks();
        let stats = Arc::new(ScanStats::new());
        let sctx = ExecContext::new().with_stats(stats.clone());
        let (t_co, out1) = time(|| md_join_multi(&b, &r, &blocks, &sctx).unwrap());
        let coalesced_scans = stats.scans() / 3;
        stats.reset();
        let (t_seq, out2) = time(|| {
            let mut acc = b.clone();
            for blk in &blocks {
                acc = md_join(&acc, &r, &blk.aggs, &blk.theta, &sctx).unwrap();
            }
            acc
        });
        let seq_scans = stats.scans() / 3;
        let (t_cls, out3) = time(|| mdj_naive::plans::example_2_2(&r, &registry).unwrap());
        let (t_sort, out4) =
            time(|| mdj_naive::plans::example_2_2_sort_based(&r, &registry).unwrap());
        assert!(out1.approx_same_multiset(&out2, 1e-9));
        let cols = ["cust", "avg_ny", "avg_nj", "avg_ct"];
        assert!(out1
            .project(&cols)
            .unwrap()
            .approx_same_multiset(&out3.project(&cols).unwrap(), 1e-9));
        assert!(out3.approx_same_multiset(&out4, 1e-9));
        println!(
            "| {rows} | {} | {} | {} | {} | {coalesced_scans}/{seq_scans} |",
            ms(t_co),
            ms(t_seq),
            ms(t_cls),
            ms(t_sort)
        );
    }
}

fn e3(scale: usize) {
    let ctx = ExecContext::new();
    let registry = Registry::standard();
    let dims = ["prod", "month", "state"];
    header(
        "E3 — Ex. 2.3 / 3.2: count above cube-cell average",
        &[
            "|R|",
            "MD unoptimized wildcard-θ (ms)",
            "MD optimized Thm 4.1 + §4.5 (ms)",
            "classical 8×(group-by + join) (ms)",
            "cells",
        ],
    );
    for rows in [500 * scale, 2_000 * scale] {
        let r = bench_sales(rows, 100);
        // Unoptimized: literal Example 3.2 against the merged cube base.
        let (t_raw, raw) = time(|| {
            let b = cube(&r, &dims).unwrap();
            let theta1 = cube_match_theta(&dims);
            let step1 =
                md_join(&b, &r, &[AggSpec::on_column("avg", "sale")], &theta1, &ctx).unwrap();
            let theta2 = and(
                cube_match_theta(&dims),
                gt(col_r("sale"), col_b("avg_sale")),
            );
            md_join(
                &step1,
                &r,
                &[AggSpec::count_star().with_alias("cnt")],
                &theta2,
                &ctx,
            )
            .unwrap()
        });
        // Optimized: Theorem 4.1 splits the cube base per cuboid so every
        // MD-join hash-probes (§4.5).
        let (t_md, md) = time(|| e3_optimized(&r, &dims, &ctx));
        let (t_cls, cls) = time(|| mdj_naive::plans::example_2_3(&r, &registry).unwrap());
        let raw_p = raw.project(&["prod", "month", "state", "cnt"]).unwrap();
        assert!(raw_p.approx_same_multiset(&cls, 1e-9));
        assert!(md.approx_same_multiset(&cls, 1e-9));
        println!(
            "| {rows} | {} | {} | {} | {} |",
            ms(t_raw),
            ms(t_md),
            ms(t_cls),
            md.len()
        );
    }
}

/// Example 2.3's optimized plan: per-cuboid MD-join pairs (avg then count),
/// hash-probed, unioned with ALL padding.
fn e3_optimized(r: &Relation, dims: &[&str; 3], ctx: &ExecContext) -> Relation {
    let n = dims.len();
    let mut out: Option<Relation> = None;
    for mask in (0..(1u32 << n)).rev() {
        let kept: Vec<&str> = dims
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, d)| *d)
            .collect();
        let b = r.distinct_on(&kept).unwrap();
        let theta = mdj_core::basevalues::cuboid_theta(&kept);
        let avg = md_join(&b, r, &[AggSpec::on_column("avg", "sale")], &theta, ctx).unwrap();
        let theta2 = and(
            mdj_core::basevalues::cuboid_theta(&kept),
            gt(col_r("sale"), col_b("avg_sale")),
        );
        let cnt = md_join(
            &avg,
            r,
            &[AggSpec::count_star().with_alias("cnt")],
            &theta2,
            ctx,
        )
        .unwrap();
        // Pad to (prod, month, state, cnt) with ALL for rolled-up dims.
        let mut fields: Vec<mdj_storage::Field> = dims
            .iter()
            .map(|d| mdj_storage::Field::new(*d, mdj_storage::DataType::Any))
            .collect();
        fields.push(mdj_storage::Field::new("cnt", mdj_storage::DataType::Int));
        let mut padded = Relation::empty(mdj_storage::Schema::new(fields));
        let cnt_col = cnt.schema().index_of("cnt").unwrap();
        for row in cnt.iter() {
            let mut vals = Vec::with_capacity(n + 1);
            for d in dims.iter() {
                match kept.iter().position(|k| k == d) {
                    Some(i) => vals.push(row[i].clone()),
                    None => vals.push(Value::All),
                }
            }
            vals.push(row[cnt_col].clone());
            padded.push_unchecked(mdj_storage::Row::new(vals));
        }
        out = Some(match out {
            None => padded,
            Some(acc) => acc.union(&padded).unwrap(),
        });
    }
    out.expect("at least the apex cuboid")
}

fn e4(scale: usize) {
    let ctx = ExecContext::new();
    let registry = Registry::standard();
    header(
        "E4 — §5 / Ex. 2.5: MD-join vs commercial-style multi-block plan",
        &[
            "|R|",
            "MD-join (ms)",
            "multi-block hash (ms)",
            "multi-block sort-based (ms)",
            "speedup vs sort-based",
        ],
    );
    for rows in [10_000 * scale, 40_000 * scale] {
        let r = bench_sales(rows, 200);
        let (t_md, md) = time(|| {
            let r97 = mdj_naive::ops::select(&r, &eq(col_r("year"), lit(1997i64))).unwrap();
            let b = r97.distinct_on(&["prod", "month"]).unwrap();
            let xy = vec![
                Block::new(
                    and(
                        eq(col_r("prod"), col_b("prod")),
                        eq(col_r("month"), sub(col_b("month"), lit(1i64))),
                    ),
                    vec![AggSpec::on_column("avg", "sale").with_alias("avg_x")],
                ),
                Block::new(
                    and(
                        eq(col_r("prod"), col_b("prod")),
                        eq(col_r("month"), add(col_b("month"), lit(1i64))),
                    ),
                    vec![AggSpec::on_column("avg", "sale").with_alias("avg_y")],
                ),
            ];
            let step1 = md_join_multi(&b, &r97, &xy, &ctx).unwrap();
            let theta_z = and_all([
                eq(col_r("prod"), col_b("prod")),
                eq(col_r("month"), col_b("month")),
                gt(col_r("sale"), col_b("avg_x")),
                lt(col_r("sale"), col_b("avg_y")),
            ]);
            md_join(
                &step1,
                &r97,
                &[AggSpec::count_star().with_alias("cnt")],
                &theta_z,
                &ctx,
            )
            .unwrap()
        });
        let (t_cls, cls) = time(|| mdj_naive::plans::example_2_5(&r, 1997, &registry).unwrap());
        let (t_sort, srt) =
            time(|| mdj_naive::plans::example_2_5_sort_based(&r, 1997, &registry).unwrap());
        let cols = ["prod", "month", "cnt"];
        assert!(md
            .project(&cols)
            .unwrap()
            .approx_same_multiset(&cls.project(&cols).unwrap(), 1e-9));
        assert!(cls.approx_same_multiset(&srt, 1e-9));
        println!(
            "| {rows} | {} | {} | {} | {:.1}× |",
            ms(t_md),
            ms(t_cls),
            ms(t_sort),
            t_sort.as_secs_f64() / t_md.as_secs_f64().max(1e-12)
        );
    }
}

fn e5(scale: usize) {
    let r = bench_sales(50_000 * scale, 2_000);
    let b = r.distinct_on(&["cust", "month"]).unwrap();
    let l = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
    let theta = and(
        eq(col_b("cust"), col_r("cust")),
        eq(col_b("month"), col_r("month")),
    );
    header(
        "E5 — Thm 4.1: partitioned evaluation and intra-operator parallelism \
         (single-core host: parallel time is *simulated* as the slowest \
         fragment, per the substitution note in DESIGN.md)",
        &["plan", "time (ms)", "scans of R", "tuples scanned"],
    );
    let stats = Arc::new(ScanStats::new());
    let sctx = ExecContext::new().with_stats(stats.clone());
    let (t, base_out) = time(|| md_join(&b, &r, &l, &theta, &sctx).unwrap());
    println!(
        "| direct (1 scan) | {} | {} | {} |",
        ms(t),
        stats.scans() / 3,
        stats.tuples_scanned() / 3
    );
    // Sequential multi-scan evaluation (the in-memory plan of §4.1.1).
    for m in [2usize, 4, 8] {
        stats.reset();
        let (t, out) = time(|| md_join_partitioned(&b, &r, &l, &theta, m, &sctx).unwrap());
        assert!(base_out.approx_same_multiset(&out, 1e-9));
        println!(
            "| partitioned m={m} (sequential) | {} | {} | {} |",
            ms(t),
            stats.scans() / 3,
            stats.tuples_scanned() / 3
        );
    }
    // §4.1.2 parallelism, simulated: time each B-fragment independently and
    // report the critical path (the max), since this host has one core.
    for m in [2usize, 4, 8] {
        let parts = mdj_storage::partition::chunk(&b, m);
        let mut worst = Duration::ZERO;
        let mut pieces: Vec<Relation> = Vec::new();
        for part in &parts {
            let (t, piece) = time(|| md_join(part, &r, &l, &theta, &ExecContext::new()).unwrap());
            worst = worst.max(t);
            pieces.push(piece);
        }
        let merged = pieces
            .into_iter()
            .reduce(|a, c| a.union(&c).unwrap())
            .unwrap();
        assert!(base_out.approx_same_multiset(&merged, 1e-9));
        println!(
            "| parallel B-partition, {m} sites (simulated max) | {} | {m}×full | {} |",
            ms(worst),
            r.len() * m
        );
    }
    // Obs 4.1: range-partition on month and push each range to R — every
    // site scans only its slice, so even the *total* work drops.
    for m in [2usize, 4] {
        let ranges = mdj_algebra::rules::partition::int_ranges(1, 12, m);
        let b_parts = mdj_storage::partition::by_ranges(&b, "month", &ranges).unwrap();
        let mut worst = Duration::ZERO;
        let mut total_tuples = 0usize;
        let mut pieces: Vec<Relation> = Vec::new();
        for (part, range) in b_parts.iter().zip(&ranges) {
            let slice = r.filter(|t| range.contains(&t[3]));
            total_tuples += slice.len();
            let (t, piece) =
                time(|| md_join(part, &slice, &l, &theta, &ExecContext::new()).unwrap());
            worst = worst.max(t);
            pieces.push(piece);
        }
        let merged = pieces
            .into_iter()
            .reduce(|a, c| a.union(&c).unwrap())
            .unwrap();
        assert!(base_out.approx_same_multiset(&merged, 1e-9));
        println!(
            "| parallel range-partition + Obs 4.1, {m} sites (simulated max) | {} | {m}×slice | {total_tuples} |",
            ms(worst)
        );
    }

    // Static-chunk vs morsel scheduling ablation on Zipf-skewed, clustered
    // data. Wall clock cannot separate the schedulers on a single-core host,
    // so the table reports each schedule's *makespan* in machine-independent
    // units: the largest per-worker aggregate-update count (the slowest
    // worker gates the join on a real multi-core machine). The base is every
    // (cust, prod) pair and θ joins on cust alone, so a hot customer's sale
    // tuples each fan out into hundreds of updates — and clustering puts them
    // all in the same static chunk.
    header(
        "E5b — static chunks vs work-stealing morsels under Zipf(1.1) skew \
         (8 workers; makespan = max per-worker updates)",
        &[
            "schedule",
            "makespan (updates)",
            "vs ideal",
            "steals",
            "vs static chunks",
        ],
    );
    let r = bench_sales_zipf(15_000 * scale, 5_000 * scale, 500, 1.1);
    let b = r.distinct_on(&["cust", "prod"]).unwrap();
    let join = MdJoin::new(&b, &r)
        .aggs(&[
            AggSpec::on_column("sum", "sale").with_alias("cust_total"),
            AggSpec::count_star().with_alias("cust_rows"),
        ])
        .theta(eq(col_b("cust"), col_r("cust")));
    let mut static_makespan = 0u64;
    for (label, strategy) in [
        ("static chunks", ExecStrategy::ChunkDetail),
        ("morsels (1024 rows)", ExecStrategy::MorselDetail),
    ] {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(1024)
            .with_stats(stats.clone());
        let out = join
            .clone()
            .strategy(strategy)
            .threads(8)
            .run(&ctx)
            .unwrap();
        assert_eq!(out.len(), b.len());
        let workers = stats.workers();
        let makespan = workers.iter().map(|w| w.updates).max().unwrap_or(0);
        let total: u64 = workers.iter().map(|w| w.updates).sum();
        let steals: u64 = workers.iter().map(|w| w.steals).sum();
        let ideal = (total / 8).max(1);
        if static_makespan == 0 {
            static_makespan = makespan;
            println!(
                "| {label} | {makespan} | {:.2}× | {steals} | 1.00× |",
                makespan as f64 / ideal as f64
            );
        } else {
            let speedup = static_makespan as f64 / makespan.max(1) as f64;
            println!(
                "| {label} | {makespan} | {:.2}× | {steals} | {speedup:.2}× |",
                makespan as f64 / ideal as f64
            );
            assert!(
                speedup >= 1.3,
                "morsel scheduling should beat static chunks ≥1.3× under skew, got {speedup:.2}×"
            );
        }
    }
}

fn e6(scale: usize) {
    let r = bench_sales(50_000 * scale, 1_000);
    let b = r.distinct_on(&["prod"]).unwrap();
    let l = [AggSpec::on_column("sum", "sale")];
    let index = SortedIndex::build_on(&r, &["year"]).unwrap();
    header(
        "E6 — Thm 4.2 / Obs 4.1 / Ex. 4.1: selection pushdown to a clustered index",
        &[
            "predicate",
            "no pushdown (ablation, ms)",
            "operator prefilter (ms)",
            "pushed σ materialized (ms)",
            "clustered index (ms)",
            "tuples full/slice",
        ],
    );
    for (label, lo, hi) in [
        ("year = 1999", 1999i64, 1999i64),
        ("1994 ≤ year ≤ 1996", 1994, 1996),
    ] {
        let theta_full = and_all([
            eq(col_r("prod"), col_b("prod")),
            ge(col_r("year"), lit(lo)),
            le(col_r("year"), lit(hi)),
        ]);
        let theta_res = eq(col_r("prod"), col_b("prod"));
        // Ablation: Theorem 4.2 disabled — the year range is re-checked per
        // candidate base row instead of filtering the scan.
        let no_push = ExecContext::new().without_prefilter();
        let (t_raw, out_raw) = time(|| md_join(&b, &r, &l, &theta_full, &no_push).unwrap());
        // Operator-level Theorem 4.2 (the default): detail-only conjuncts
        // prefilter each scanned tuple.
        let stats = Arc::new(ScanStats::new());
        let sctx = ExecContext::new().with_stats(stats.clone());
        let (t_full, out_full) = time(|| md_join(&b, &r, &l, &theta_full, &sctx).unwrap());
        let full_tuples = stats.tuples_scanned() / 3;
        // Theorem 4.2 as a materialized σ (what a plan-level rewrite does).
        let (t_push, out_push) = time(|| {
            let sigma = mdj_naive::ops::select(
                &r,
                &and(ge(col_r("year"), lit(lo)), le(col_r("year"), lit(hi))),
            )
            .unwrap();
            md_join(&b, &sigma, &l, &theta_res, &ExecContext::new()).unwrap()
        });
        // Example 4.1: the σ served by a clustered index — only the matching
        // run of tuples is even read.
        let mut slice_tuples = 0u64;
        let (t_idx, out_idx) = time(|| {
            let ids = index.range_first(
                Bound::Included(&Value::Int(lo)),
                Bound::Included(&Value::Int(hi)),
            );
            slice_tuples = ids.len() as u64;
            let slice = Relation::from_rows(
                r.schema().clone(),
                ids.iter().map(|&i| r.rows()[i].clone()).collect(),
            );
            md_join(&b, &slice, &l, &theta_res, &ExecContext::new()).unwrap()
        });
        assert!(out_raw.approx_same_multiset(&out_full, 1e-9));
        assert!(out_full.approx_same_multiset(&out_push, 1e-9));
        assert!(out_push.approx_same_multiset(&out_idx, 1e-9));
        println!(
            "| {label} | {} | {} | {} | {} | {full_tuples}/{slice_tuples} |",
            ms(t_raw),
            ms(t_full),
            ms(t_push),
            ms(t_idx)
        );
    }
}

fn e7(scale: usize) {
    let ctx = ExecContext::new();
    let sales = bench_sales(40_000 * scale, 1_000);
    let payments = bench_payments(40_000 * scale, 1_000);
    let b = sales.distinct_on(&["cust", "month"]).unwrap();
    let theta = and(
        eq(col_r("cust"), col_b("cust")),
        eq(col_r("month"), col_b("month")),
    );
    let l_sales = [AggSpec::on_column("sum", "sale")];
    let l_pay = [AggSpec::on_column("sum", "amount")];
    let join_on_b = |left: &Relation, right: &Relation| {
        let joined =
            mdj_naive::join::hash_join(left, right, &["cust", "month"], &["cust", "month"])
                .unwrap();
        let idx: Vec<usize> = (0..left.schema().len())
            .chain([left.schema().len() + 2])
            .collect();
        let schema = joined.schema().project(&idx);
        let rows = joined
            .iter()
            .map(|row| mdj_storage::Row::new(row.key(&idx)))
            .collect();
        Relation::from_rows(schema, rows)
    };
    header(
        "E7 — Thm 4.4 / Ex. 3.3: split into equijoin of MD-joins (multi-fact)",
        &["plan", "time (ms)"],
    );
    let (t_seq, seq) = time(|| {
        let s1 = md_join(&b, &sales, &l_sales, &theta, &ctx).unwrap();
        md_join(&s1, &payments, &l_pay, &theta, &ctx).unwrap()
    });
    println!("| sequential chain | {} |", ms(t_seq));
    let (t_split, split) = time(|| {
        let left = md_join(&b, &sales, &l_sales, &theta, &ctx).unwrap();
        let right = md_join(&b, &payments, &l_pay, &theta, &ctx).unwrap();
        join_on_b(&left, &right)
    });
    assert!(seq.approx_same_multiset(&split, 1e-9));
    println!("| split + equijoin (serial) | {} |", ms(t_split));
    // Two sites, simulated on this single-core host: each site's MD-join is
    // timed independently; the distributed wall-clock is the slower site
    // plus the equijoin of the two small results.
    let (t_left, left) = time(|| md_join(&b, &sales, &l_sales, &theta, &ctx).unwrap());
    let (t_right, right) = time(|| md_join(&b, &payments, &l_pay, &theta, &ctx).unwrap());
    let (t_join, par) = time(|| join_on_b(&left, &right));
    assert!(seq.approx_same_multiset(&par, 1e-9));
    println!(
        "| split, two sites in parallel (simulated max + join) | {} |",
        ms(t_left.max(t_right) + t_join)
    );
}

fn e8(scale: usize) {
    let r = bench_sales(10_000 * scale, 5_000);
    let l = [AggSpec::on_column("sum", "sale")];
    let theta = and(
        eq(col_b("cust"), col_r("cust")),
        eq(col_b("month"), col_r("month")),
    );
    header(
        "E8 — §4.5: Rel(t) probing — nested loop vs hash index on B, scalar \
         interpreter vs batched evaluator (scalar columns are single-shot \
         equivalence runs; vec columns are best-of-three)",
        &[
            "|B|",
            "NL scalar (ms)",
            "NL vec (ms)",
            "hash scalar (ms)",
            "hash vec (ms)",
            "probes NL/hash",
        ],
    );
    let b_full = r.distinct_on(&["cust", "month"]).unwrap();
    for b_rows in [16usize, 128, 1024, 8192] {
        let b = Relation::from_rows(
            b_full.schema().clone(),
            b_full.rows().iter().take(b_rows).cloned().collect(),
        );
        let run = |probe: ProbeStrategy, strat: ExecStrategy, stats: &Arc<ScanStats>| {
            let ctx = ExecContext::new()
                .with_strategy(probe)
                .with_stats(stats.clone());
            MdJoin::new(&b, &r)
                .aggs(&l)
                .theta(theta.clone())
                .strategy(strat)
                .threads(1)
                .run(&ctx)
                .unwrap()
        };
        // Scalar interpreter runs once per probe plan: it pins the answer and
        // the probe accounting the batched runs below must reproduce, and its
        // single-shot wall time is reported as-is (the O(|B|·|R|) scalar
        // nested loop is exactly the dead weight the batch layer removes, so
        // it is no longer the arm worth best-of-three precision).
        let nl_s = Arc::new(ScanStats::new());
        let t0 = Instant::now();
        let out_nl = run(ProbeStrategy::NestedLoop, ExecStrategy::Serial, &nl_s);
        let t_nl_s = t0.elapsed();
        let hp_s = Arc::new(ScanStats::new());
        let t0 = Instant::now();
        let out_hp = run(ProbeStrategy::HashProbe, ExecStrategy::Serial, &hp_s);
        let t_hp_s = t0.elapsed();
        assert!(out_nl.approx_same_multiset(&out_hp, 1e-9));
        // Batched evaluator, timed best-of-three: the pure-equality θ is
        // batch-covered under both probe plans (the NL form evaluates every
        // bound base row over the shared chunk), so neither run may fall
        // back to scalar or diverge from the interpreter's probe counters.
        let nl_v = Arc::new(ScanStats::new());
        let (t_nl_v, out_nl_v) = time(|| {
            nl_v.reset();
            run(ProbeStrategy::NestedLoop, ExecStrategy::Vectorized, &nl_v)
        });
        let hp_v = Arc::new(ScanStats::new());
        let (t_hp_v, out_hp_v) = time(|| {
            hp_v.reset();
            run(ProbeStrategy::HashProbe, ExecStrategy::Vectorized, &hp_v)
        });
        assert_eq!(out_nl.rows(), out_nl_v.rows(), "E8 NL |B|={b_rows}");
        assert_eq!(out_hp.rows(), out_hp_v.rows(), "E8 hash |B|={b_rows}");
        for (label, scalar, vec) in [("NL", &nl_s, &nl_v), ("hash", &hp_s, &hp_v)] {
            assert_eq!(scalar.probes(), vec.probes(), "E8 {label} |B|={b_rows}");
            assert_eq!(
                vec.batch_fallbacks(),
                0,
                "E8 {label} |B|={b_rows}: equality θ must stay batch-covered"
            );
        }
        println!(
            "| {} | {} | {} | {} | {} | {}/{} |",
            b.len(),
            ms(t_nl_s),
            ms(t_nl_v),
            ms(t_hp_s),
            ms(t_hp_v),
            nl_s.probes(),
            hp_s.probes()
        );
        record_counters(format!("e8/b{b_rows}/nl/serial"), t_nl_s, &nl_s);
        record_counters(format!("e8/b{b_rows}/nl/vectorized"), t_nl_v, &nl_v);
        record_counters(format!("e8/b{b_rows}/hash/serial"), t_hp_s, &hp_s);
        record_counters(format!("e8/b{b_rows}/hash/vectorized"), t_hp_v, &hp_v);
    }
}

fn e9(scale: usize) {
    let ctx = ExecContext::new();
    let r = bench_sales(15_000 * scale, 500);
    header(
        "E9 — Fig. 2: PIPESORT pipelines vs per-cuboid vs rollup-chain",
        &[
            "dims",
            "cuboids",
            "sorts (pipesort)",
            "per-cuboid (ms)",
            "pipesort (ms)",
            "rollup-chain (ms)",
        ],
    );
    let dim_sets: [&[&str]; 3] = [
        &["prod", "month"],
        &["prod", "month", "state"],
        &["prod", "month", "state", "year"],
    ];
    for dims in dim_sets {
        let spec = CubeSpec::new(
            dims,
            vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
        );
        let pipelines = build_pipelines(&spec);
        let (t_per, a) = time(|| cube_per_cuboid(&r, &spec, &ctx).unwrap());
        let (t_pipe, b) = time(|| cube_pipesort(&r, &spec, &ctx).unwrap());
        let (t_roll, c) = time(|| cube_rollup_chain(&r, &spec, &ctx).unwrap());
        assert!(a.approx_same_multiset(&b, 1e-9) && b.approx_same_multiset(&c, 1e-9));
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            dims.len(),
            spec.lattice().cuboid_count(),
            sort_count(&pipelines),
            ms(t_per),
            ms(t_pipe),
            ms(t_roll)
        );
    }
}

fn e10(scale: usize) {
    let ctx = ExecContext::new();
    let mut catalog = Catalog::new();
    catalog.register("Sales", bench_sales(10_000 * scale, 500));
    header(
        "E10 — Thm 4.3: series scheduling (O(k²)) and executed scan counts",
        &[
            "k",
            "deps",
            "scans before",
            "scans after",
            "schedule (µs)",
            "exec chain (ms)",
            "exec coalesced (ms)",
        ],
    );
    for k in [2usize, 4, 8, 16] {
        for dependent in [false, true] {
            let plan = e10_chain(k, dependent);
            let before = detail_scan_count(&plan);
            let (t_sched, coalesced) = time(|| coalesce_chains(plan.clone()));
            let after = detail_scan_count(&coalesced);
            let (t_chain, a) = time(|| execute(&plan, &catalog, &ctx).unwrap());
            let (t_co, b) = time(|| execute(&coalesced, &catalog, &ctx).unwrap());
            // Column order may differ after coalescing; compare projected.
            let names: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
            let mut cols = vec!["cust".to_string()];
            cols.extend(names);
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            assert!(a
                .project(&refs)
                .unwrap()
                .approx_same_multiset(&b.project(&refs).unwrap(), 1e-9));
            println!(
                "| {k} | {} | {before} | {after} | {:.1} | {} | {} |",
                if dependent { "i→i−2" } else { "none" },
                t_sched.as_secs_f64() * 1e6,
                ms(t_chain),
                ms(t_co)
            );
        }
    }
}

fn e11(scale: usize) {
    let r = bench_sales(40_000 * scale, 1_000);
    let b = r.distinct_on(&["cust"]).unwrap();
    let b_multi = r.distinct_on(&["cust", "month"]).unwrap();
    let b_state = r.distinct_on(&["state"]).unwrap();
    // All five aggregates are kernel-covered (sum/avg/min/max over the Float
    // sale column plus count(*)), and every θ below — including the non-equi
    // nested loop — is batch-covered, so each shape must report zero
    // fallbacks.
    let l = [
        AggSpec::on_column("sum", "sale"),
        AggSpec::on_column("avg", "sale"),
        AggSpec::on_column("min", "sale"),
        AggSpec::on_column("max", "sale"),
        AggSpec::count_star(),
    ];
    // The nested-loop shape probes |B| rows per tuple; a small B keeps its
    // runtime comparable to the hash-probed shapes.
    let b_small = Relation::from_rows(
        b.schema().clone(),
        b.rows().iter().take(64).cloned().collect(),
    );
    header(
        "E11 — vectorized batch execution vs scalar serial (identical rows and \
         work counters; Mt/s = detail tuples per second)",
        &[
            "θ shape",
            "scalar (ms)",
            "vectorized (ms)",
            "Mt/s scalar",
            "Mt/s vec",
            "speedup",
            "batches (fallbacks)",
        ],
    );
    // `covered` marks the shapes the batch layer handles without scalar
    // delegation: their vectorized runs must report zero batch fallbacks.
    let shapes: [(&str, &Relation, Expr, bool); 6] = [
        (
            "equality (fast path)",
            &b,
            eq(col_b("cust"), col_r("cust")),
            true,
        ),
        (
            "computed key",
            &b,
            eq(col_b("cust"), add(col_r("cust"), lit(0i64))),
            true,
        ),
        (
            "multi-column key",
            &b_multi,
            and(
                eq(col_b("cust"), col_r("cust")),
                eq(col_b("month"), col_r("month")),
            ),
            true,
        ),
        (
            "string key",
            &b_state,
            eq(col_b("state"), col_r("state")),
            true,
        ),
        (
            "mixed residual",
            &b,
            and(
                eq(col_b("cust"), col_r("cust")),
                ge(col_r("sale"), col_b("cust")),
            ),
            true,
        ),
        (
            "non-equi (vectorized NL)",
            &b_small,
            le(col_b("cust"), col_r("month")),
            true,
        ),
    ];
    for (label, bb, theta, covered) in shapes {
        let run = |strategy: ExecStrategy, stats: Option<Arc<ScanStats>>| {
            let mut ctx = ExecContext::new();
            if let Some(s) = stats {
                ctx = ctx.with_stats(s);
            }
            MdJoin::new(bb, &r)
                .aggs(&l)
                .theta(theta.clone())
                .strategy(strategy)
                .threads(1)
                .run(&ctx)
                .unwrap()
        };
        // Counter runs (uncounted in the timings): both paths must agree on
        // every work counter, and on the answer row-for-row.
        let s_stats = Arc::new(ScanStats::new());
        let serial_out = run(ExecStrategy::Serial, Some(s_stats.clone()));
        let v_stats = Arc::new(ScanStats::new());
        let vec_out = run(ExecStrategy::Vectorized, Some(v_stats.clone()));
        assert_eq!(serial_out.rows(), vec_out.rows(), "E11 {label}");
        assert_eq!(s_stats.scans(), v_stats.scans(), "E11 {label}");
        assert_eq!(
            s_stats.tuples_scanned(),
            v_stats.tuples_scanned(),
            "E11 {label}"
        );
        assert_eq!(s_stats.probes(), v_stats.probes(), "E11 {label}");
        assert_eq!(s_stats.updates(), v_stats.updates(), "E11 {label}");
        if covered {
            assert_eq!(
                v_stats.batch_fallbacks(),
                0,
                "E11 {label}: covered shape must not fall back to scalar"
            );
        }
        // Timed runs.
        let (t_s, _) = time(|| run(ExecStrategy::Serial, None));
        let (t_v, _) = time(|| run(ExecStrategy::Vectorized, None));
        let mts = |d: Duration| r.len() as f64 / d.as_secs_f64().max(1e-12) / 1e6;
        println!(
            "| {label} | {} | {} | {:.1} | {:.1} | {:.2}× | {} ({}) |",
            ms(t_s),
            ms(t_v),
            mts(t_s),
            mts(t_v),
            t_s.as_secs_f64() / t_v.as_secs_f64().max(1e-12),
            v_stats.batches(),
            v_stats.batch_fallbacks()
        );
        let slug = label.split(' ').next().unwrap_or(label);
        record_counters(format!("e11/{slug}/serial"), t_s, &s_stats);
        record_counters(format!("e11/{slug}/vectorized"), t_v, &v_stats);
    }

    // Fused generalized (Theorem 4.3) batch execution: k E8-style pivot
    // condition sets — per-month slices of an equality join — evaluated as
    // one single-scan batched query sharing each chunk transposition across
    // all k sets, vs the serial generalized interpreter and vs k sequential
    // vectorized MD-joins (k scans). Every set is batch-covered: the fused
    // runs must report zero scalar condition sets.
    header(
        "E11b — fused generalized MD-join: k pivot condition sets in one \
         batched scan vs serial 1-scan vs k sequential vectorized scans",
        &[
            "k",
            "serial 1-scan (ms)",
            "sequential vec (ms)",
            "fused vec (ms)",
            "fused/serial",
            "sets (scalar)",
        ],
    );
    for k in [2usize, 4, 8] {
        let blocks: Vec<Block> = (0..k as i64)
            .map(|m| {
                Block::new(
                    and(
                        eq(col_b("cust"), col_r("cust")),
                        eq(col_r("month"), lit(m + 1)),
                    ),
                    vec![
                        AggSpec::on_column("sum", "sale").with_alias(format!("sum_{m}")),
                        AggSpec::on_column("count", "sale").with_alias(format!("cnt_{m}")),
                    ],
                )
            })
            .collect();
        let run_multi = |strategy: ExecStrategy, stats: Option<Arc<ScanStats>>| {
            let mut ctx = ExecContext::new();
            if let Some(s) = stats {
                ctx = ctx.with_stats(s);
            }
            MdJoin::new(&b, &r)
                .blocks(blocks.iter().cloned())
                .strategy(strategy)
                .run(&ctx)
                .unwrap()
        };
        let run_sequential = || {
            for blk in &blocks {
                MdJoin::new(&b, &r)
                    .aggs(&blk.aggs)
                    .theta(blk.theta.clone())
                    .strategy(ExecStrategy::Vectorized)
                    .threads(1)
                    .run(&ExecContext::new())
                    .unwrap();
            }
        };
        // Counter runs: the fused executor must match the serial generalized
        // interpreter row-for-row with identical work accounting, keep the
        // single shared scan, and batch every condition set end to end.
        let s_stats = Arc::new(ScanStats::new());
        let serial_out = run_multi(ExecStrategy::Serial, Some(s_stats.clone()));
        let f_stats = Arc::new(ScanStats::new());
        let fused_out = run_multi(ExecStrategy::Vectorized, Some(f_stats.clone()));
        assert_eq!(serial_out.rows(), fused_out.rows(), "E11b k={k}");
        assert_eq!(s_stats.scans(), f_stats.scans(), "E11b k={k}");
        assert_eq!(s_stats.probes(), f_stats.probes(), "E11b k={k}");
        assert_eq!(s_stats.updates(), f_stats.updates(), "E11b k={k}");
        assert_eq!(f_stats.scans(), 1, "E11b k={k}: fused run must scan once");
        assert_eq!(f_stats.gen_sets(), k as u64, "E11b k={k}");
        assert_eq!(
            f_stats.gen_set_fallbacks(),
            0,
            "E11b k={k}: every pivot set must stay batch-covered"
        );
        let (t_serial, _) = time(|| run_multi(ExecStrategy::Serial, None));
        let (t_seq, _) = time(run_sequential);
        let (t_fused, _) = time(|| run_multi(ExecStrategy::Vectorized, None));
        println!(
            "| {k} | {} | {} | {} | {:.2}× | {}/{} |",
            ms(t_serial),
            ms(t_seq),
            ms(t_fused),
            t_serial.as_secs_f64() / t_fused.as_secs_f64().max(1e-12),
            f_stats.gen_set_fallbacks(),
            f_stats.gen_sets()
        );
        record_counters(format!("e11/fused-k{k}/serial"), t_serial, &s_stats);
        record_counters(format!("e11/fused-k{k}/vectorized"), t_fused, &f_stats);
    }
}

fn e12(scale: usize) {
    use mdj_core::governor::{index_bytes, index_key_bytes, state_bytes};
    use mdj_core::SpillPolicy;
    let r = bench_sales(40_000 * scale, 1_000);
    let b = r.distinct_on(&["cust", "month"]).unwrap();
    let l = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
    let theta = and(
        eq(col_b("cust"), col_r("cust")),
        eq(col_b("month"), col_r("month")),
    );
    // A budget for ~30% of B: the serial plan must breach and degrade, and
    // the costed partition count (m=4, ~25% of B per partition) leaves
    // enough headroom that the tightly balanced hash buckets of thousands
    // of base keys fit on the first attempt — the ablation is a
    // deterministic single spill pass.
    let per_row = state_bytes(1, l.len()) + index_bytes(1) + index_key_bytes(1, 2);
    let budget = b.len() * 3 / 10 * per_row;
    let spill_dir = std::env::temp_dir().join(format!("mdj-repro-e12-{}", std::process::id()));
    header(
        "E12 — degradation ablation under a budget for ~30% of B: in-memory vs \
         Theorem 4.1 rescan vs single-pass spill (identical rows; the cost \
         model prices m·|R| re-scan work against 7·|R|+overhead spill I/O)",
        &[
            "plan",
            "time (ms)",
            "scans of R",
            "tuples scanned",
            "spill parts",
            "bytes spilled",
            "bytes read",
        ],
    );
    let mut reference: Option<Relation> = None;
    for (label, slug, budgeted, policy) in [
        (
            "in-memory (no budget)",
            "in-memory",
            false,
            SpillPolicy::Auto,
        ),
        (
            "rescan degradation (SpillPolicy::Never)",
            "rescan",
            true,
            SpillPolicy::Never,
        ),
        (
            "spill degradation (SpillPolicy::Always)",
            "spill",
            true,
            SpillPolicy::Always,
        ),
    ] {
        let stats = Arc::new(ScanStats::new());
        let mut ctx = ExecContext::new()
            .with_stats(stats.clone())
            .with_spill_policy(policy)
            .with_spill_dir(&spill_dir);
        if budgeted {
            ctx = ctx.with_budget_bytes(budget);
        }
        let (t, out) = time(|| md_join(&b, &r, &l, &theta, &ctx).unwrap());
        match &reference {
            None => reference = Some(out),
            // Both degradation modes must be row-identical to in-memory.
            Some(expected) => assert_eq!(expected.rows(), out.rows(), "E12 {label}"),
        }
        // `time` runs the query three times; report per-run counters.
        println!(
            "| {label} | {} | {} | {} | {} | {} | {} |",
            ms(t),
            stats.scans() / 3,
            stats.tuples_scanned() / 3,
            stats.spill_partitions() / 3,
            stats.bytes_spilled() / 3,
            stats.spill_read_bytes() / 3
        );
        record_counters(format!("e12/{slug}"), t, &stats);
    }
    if let Ok(entries) = std::fs::read_dir(&spill_dir) {
        assert_eq!(entries.count(), 0, "E12 leaked spill run files");
    }
    let _ = std::fs::remove_dir(&spill_dir);
}

/// `bench_sales` with the measure re-typed to integer cents. Theorem 4.5
/// roll-up re-associates the sum, which is bit-transparent on `Int` but not
/// on `Float` — so E13's cached-vs-direct equivalences can assert exact
/// equality instead of a tolerance.
fn int_cents_sales(rows: usize, customers: usize) -> Relation {
    let src = bench_sales(rows, customers);
    let schema = Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("prod", DataType::Int),
        ("day", DataType::Int),
        ("month", DataType::Int),
        ("year", DataType::Int),
        ("state", DataType::Str),
        ("cents", DataType::Int),
    ]);
    let rows = src
        .iter()
        .map(|row| {
            let mut vals = row.0.clone();
            let last = vals.len() - 1;
            if let Value::Float(f) = vals[last] {
                vals[last] = Value::Int((f * 100.0).round() as i64);
            }
            Row::new(vals)
        })
        .collect();
    Relation::from_rows(schema, rows)
}

fn e13(scale: usize) {
    let sales = int_cents_sales(40_000 * scale, 1_000);
    let engine = EngineConfig::new()
        .register_table("Sales", sales)
        .with_cuboid_cache(64 << 20)
        .build();
    let cat = engine.catalog();
    header(
        "E13 — dashboard replay over the cuboid cache: a repeated fine query is \
         served from cache, a coarser query rolls up from the cached finer \
         cuboid (Theorem 4.5), and an appended batch is folded into the \
         resident cuboid in place (Algorithm 3.1) so the refreshed answer \
         never rescans R",
        &[
            "step",
            "time (ms)",
            "rows",
            "hits",
            "rollup hits",
            "misses",
            "ingest batches",
        ],
    );
    let l = vec![AggSpec::on_column("sum", "cents"), AggSpec::count_star()];
    let fine = Plan::table("Sales")
        .group_by_base(&["cust", "month"])
        .md_join(
            Plan::table("Sales"),
            l.clone(),
            cuboid_theta(&["cust", "month"]),
        );
    let coarse = Plan::table("Sales").group_by_base(&["cust"]).md_join(
        Plan::table("Sales"),
        l.clone(),
        cuboid_theta(&["cust"]),
    );
    let ctx_with = |stats: &Arc<ScanStats>| {
        ExecContext::from_parts(engine.clone(), QueryCtx::new().with_stats(stats.clone()))
    };
    let step = |label: &str, slug: &str, t: Duration, out: &Relation, stats: &Arc<ScanStats>| {
        println!(
            "| {label} | {} | {} | {} | {} | {} | {} |",
            ms(t),
            out.len(),
            stats.cache_hits(),
            stats.cache_rollup_hits(),
            stats.cache_misses(),
            stats.ingest_batches()
        );
        record_counters(format!("e13/{slug}"), t, stats);
    };

    // Cold: computes the (cust, month) cuboid and caches it.
    let s_cold = Arc::new(ScanStats::new());
    let t0 = Instant::now();
    let cold = execute(&fine, cat, &ctx_with(&s_cold)).unwrap();
    let t_cold = t0.elapsed();
    assert_eq!(s_cold.cache_misses(), 1, "E13 cold run must miss");
    step("cold (computes + caches)", "cold", t_cold, &cold, &s_cold);

    // Warm: the identical query is answered from the cache — bit-identical
    // to both the cold answer and an uncached execution, and ≥10× faster
    // than the cold computation even at --quick sizes.
    let s_warm = Arc::new(ScanStats::new());
    let warm_ctx = ctx_with(&s_warm);
    let (t_warm, warm) = time(|| execute(&fine, cat, &warm_ctx).unwrap());
    assert!(s_warm.cache_hits() >= 1, "E13 warm run must hit");
    assert!(warm.same_multiset(&cold), "E13 warm != cold");
    let direct = execute(&fine, cat, &ExecContext::new()).unwrap();
    assert!(warm.same_multiset(&direct), "E13 cached != uncached");
    assert!(
        t_warm * 10 <= t_cold,
        "E13 warm re-answer not 10x faster: cold {t_cold:?}, warm {t_warm:?}"
    );
    step("warm repeat (cache hit)", "warm", t_warm, &warm, &s_warm);

    // Roll-up: the coarser (cust) cuboid is adapted from the cached finer
    // one — sum stays sum, count re-aggregates as sum — without touching R.
    let s_roll = Arc::new(ScanStats::new());
    let t0 = Instant::now();
    let rolled = execute(&coarse, cat, &ctx_with(&s_roll)).unwrap();
    let t_roll = t0.elapsed();
    assert_eq!(
        s_roll.cache_rollup_hits(),
        1,
        "E13 coarse query must roll up"
    );
    let direct_coarse = execute(&coarse, cat, &ExecContext::new()).unwrap();
    assert!(
        rolled.same_multiset(&direct_coarse),
        "E13 roll-up != direct"
    );
    step(
        "coarser (Thm 4.5 roll-up)",
        "rollup",
        t_roll,
        &rolled,
        &s_roll,
    );

    // Ingest + refresh: the appended batch is folded into the resident
    // cuboid in place (sum/count are distributive, so nothing is dropped),
    // and the refreshed answer — served from the maintained entry — is
    // identical to recomputing over the grown relation from scratch.
    let s_fresh = Arc::new(ScanStats::new());
    let fresh_ctx = ctx_with(&s_fresh);
    let batch: Vec<Row> = (0..64)
        .map(|i| {
            Row::new(vec![
                Value::Int(i % 7),
                Value::Int(i % 11),
                Value::Int(i % 28 + 1),
                Value::Int(i % 12 + 1),
                Value::Int(2024),
                Value::str("NY"),
                Value::Int(100 + i),
            ])
        })
        .collect();
    let t0 = Instant::now();
    let report = fresh_ctx.ingest("Sales", batch).unwrap();
    let refreshed = execute(&fine, cat, &fresh_ctx).unwrap();
    let t_refresh = t0.elapsed();
    assert_eq!(report.rows, 64);
    assert_eq!(
        report.cache_invalidated, 0,
        "E13 sum/count entries must be maintained, not dropped"
    );
    assert!(
        report.cache_maintained >= 1,
        "E13 ingest must maintain the cuboid"
    );
    assert!(
        s_fresh.cache_hits() >= 1,
        "E13 refresh must be served from cache"
    );
    assert_eq!(s_fresh.ingest_batches(), 1);
    let rescan = execute(&fine, cat, &ExecContext::new()).unwrap();
    assert!(
        refreshed.same_multiset(&rescan),
        "E13 maintained cuboid != recompute"
    );
    step(
        "ingest 64 rows + refresh (maintained)",
        "refresh",
        t_refresh,
        &refreshed,
        &s_fresh,
    );
}

fn e14(scale: usize) {
    use mdj_core::{paged_md_join, PagedScan};
    use mdj_storage::{BufferPool, PagedStore};
    // E8's workload, made disk-resident: the detail relation is written
    // through the pager clustered on `month` and every run re-reads it page
    // by page through a buffer pool holding at most a quarter of the table,
    // so the I/O counters — not just wall time — are part of the table.
    let r = bench_sales(10_000 * scale, 5_000);
    let b_full = r.distinct_on(&["cust", "month"]).unwrap();
    let b = Relation::from_rows(
        b_full.schema().clone(),
        b_full.rows().iter().take(1024).cloned().collect(),
    );
    let l = [AggSpec::on_column("sum", "sale")];
    let theta = and(
        eq(col_b("cust"), col_r("cust")),
        eq(col_b("month"), col_r("month")),
    );
    let dir = std::env::temp_dir().join(format!("mdj-repro-e14-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("E14 scratch dir");
    let (store, _) = PagedStore::open(&dir).expect("E14 paged store");
    let table = store
        .create_table("Sales", &r, "month", 4096)
        .expect("E14 table");
    let pool = BufferPool::new(table.data_len() / 4);
    assert!(
        pool.budget() >= 4096 && pool.budget() * 4 <= table.data_len(),
        "E14 pool must be at most a quarter of the table"
    );
    let scan = PagedScan::new(table.clone(), pool.clone());
    // In-memory reference over the clustered row order: every paged variant
    // below must reproduce it bit-for-bit.
    let clustered = scan
        .materialize(&ExecContext::new())
        .expect("E14 materialize");
    pool.clear();
    let reference = md_join(&b, &clustered, &l, &theta, &ExecContext::new()).unwrap();
    header(
        "E14 — disk-resident ablation of E1/E8: the same MD-join over pages \
         instead of memory, pool = table/4 (Theorem 4.2 range pushdown prunes \
         whole pages via the manifest min/max, before any I/O)",
        &[
            "plan",
            "time (ms)",
            "pages read",
            "of",
            "bytes read",
            "evictions",
            "rows",
        ],
    );
    // Single-shot timings: repeating a run would serve pages from the pool
    // and make the I/O counters depend on the repetition count.
    // `slug: None` keeps a variant out of the JSON baseline: the morsel
    // run's `pool_evictions` depends on worker interleaving (±1 run to
    // run), so only the deterministic single-threaded variants are gated.
    let run = |label: &str,
               slug: Option<&str>,
               strategy: ExecStrategy,
               threads: Option<usize>,
               theta: &Expr,
               expect_rows: Option<&Relation>| {
        pool.clear();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(1024)
            .with_stats(stats.clone());
        let t0 = Instant::now();
        let out = paged_md_join(&b, &scan, &l, theta, strategy, threads, &ctx).unwrap();
        let t = t0.elapsed();
        if let Some(expected) = expect_rows {
            // Parallel strategies may re-associate float sums, so compare
            // values with a relative epsilon (the fuzz suite proves strict
            // bit-identity separately, over dyadic inputs).
            assert_eq!(expected.len(), out.len(), "E14 {label}: row count");
            for (want, got) in expected.rows().iter().zip(out.rows()) {
                for (a, b) in want.values().iter().zip(got.values()) {
                    match (a, b) {
                        (Value::Float(x), Value::Float(y)) => assert!(
                            (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                            "E14 {label}: {x} vs {y}"
                        ),
                        _ => assert_eq!(a, b, "E14 {label}"),
                    }
                }
            }
        }
        println!(
            "| {label} | {} | {} | {} | {} | {} | {} |",
            ms(t),
            stats.pages_read(),
            table.page_count(),
            stats.bytes_read(),
            stats.pool_evictions(),
            out.len()
        );
        if let Some(slug) = slug {
            record_counters(format!("e14/{slug}"), t, &stats);
        }
        stats
    };
    let full = run(
        "full scan, serial",
        Some("full/serial"),
        ExecStrategy::Serial,
        Some(1),
        &theta,
        Some(&reference),
    );
    assert_eq!(
        full.pages_read() as usize,
        table.page_count(),
        "E14 serial full scan reads every page exactly once"
    );
    assert_eq!(full.bytes_read(), table.data_len(), "E14 full-scan bytes");
    assert!(
        full.pool_evictions() > 0,
        "E14 quarter-size pool must evict"
    );
    run(
        "full scan, vectorized",
        Some("full/vectorized"),
        ExecStrategy::Vectorized,
        Some(1),
        &theta,
        Some(&reference),
    );
    run(
        "full scan, morsel ×4",
        None,
        ExecStrategy::Morsel,
        Some(4),
        &theta,
        Some(&reference),
    );
    // Theorem 4.2: a detail-only range on the clustered key is folded into
    // the scan and prunes pages from the manifest min/max without reading
    // them. The answer equals the in-memory join with the same θ.
    let theta_pruned = and(
        theta.clone(),
        and(ge(col_r("month"), lit(4i64)), le(col_r("month"), lit(6i64))),
    );
    let pruned_ref = md_join(&b, &clustered, &l, &theta_pruned, &ExecContext::new()).unwrap();
    let pruned = run(
        "month ∈ [4,6], serial (Thm 4.2 page pruning)",
        Some("pruned/serial"),
        ExecStrategy::Serial,
        Some(1),
        &theta_pruned,
        Some(&pruned_ref),
    );
    assert!(
        pruned.pages_read() < full.pages_read(),
        "E14 pushdown must cut pages_read: {} vs {}",
        pruned.pages_read(),
        full.pages_read()
    );
    assert!(pruned.pages_read() > 0, "E14 three months of pages remain");
    let _ = std::fs::remove_dir_all(&dir);
}

fn e10_chain(k: usize, dependent: bool) -> Plan {
    let mut plan = Plan::table("Sales").group_by_base(&["cust"]);
    for i in 0..k {
        let theta = if dependent && i >= 2 {
            and_all([
                eq(col_b("cust"), col_r("cust")),
                eq(col_r("month"), lit((i % 12 + 1) as i64)),
                gt(col_b(format!("c{}", i - 2)), lit(-1i64)),
            ])
        } else {
            and(
                eq(col_b("cust"), col_r("cust")),
                eq(col_r("month"), lit((i % 12 + 1) as i64)),
            )
        };
        plan = plan.md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star().with_alias(format!("c{i}"))],
            theta,
        );
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_neutralizes_hostile_labels() {
        let hostile = "e11/\"quote\\back\nslash\ttab\u{1}ctl";
        let escaped = json_escape(hostile);
        // No raw quote/backslash/control char survives unescaped.
        assert_eq!(escaped, "e11/\\\"quote\\\\back\\nslash\\ttab\\u0001ctl");
        // Round-trip: the --check parser decodes exactly the original label.
        assert_eq!(parse_json_string(&format!("{escaped}\", rest")), hostile);
        // Plain labels pass through untouched.
        assert_eq!(json_escape("e11/equality/serial"), "e11/equality/serial");
    }

    #[test]
    fn hostile_label_emits_parseable_baseline_line() {
        let line = format!(
            "    {{\"name\": \"{}\", \"wall_ms\": 1.500, \"scans\": 1, \"tuples\": 2, \
             \"probes\": 3, \"updates\": 4, \"batches\": 5, \"batch_fallbacks\": 0}},",
            json_escape("evil \"label\" with \\ and \n")
        );
        let entries = parse_baseline(&line);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "evil \"label\" with \\ and \n");
        assert_eq!(
            entries[0].counters,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]
        );
    }

    #[test]
    fn check_parses_writer_output_and_skips_wall_only_entries() {
        // A pre-spill 6-counter entry and a current 9-counter entry parse
        // side by side, each carrying exactly the counters it has.
        let text = "{\n  \"tool\": \"repro\",\n  \"quick\": true,\n  \"experiments\": [\n    \
                    {\"name\": \"e1\", \"wall_ms\": 10.000},\n    \
                    {\"name\": \"e11/equality/serial\", \"wall_ms\": 1.000, \"scans\": 1, \
                    \"tuples\": 40000, \"probes\": 40000, \"updates\": 200000, \
                    \"batches\": 0, \"batch_fallbacks\": 0},\n    \
                    {\"name\": \"e12/spill\", \"wall_ms\": 2.000, \"scans\": 2, \
                    \"tuples\": 80000, \"probes\": 40000, \"updates\": 200000, \
                    \"batches\": 0, \"batch_fallbacks\": 0, \"bytes_spilled\": 65536, \
                    \"spill_partitions\": 4, \"spill_read_bytes\": 65536}\n  ]\n}\n";
        let entries = parse_baseline(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "e11/equality/serial");
        assert_eq!(
            entries[0].counters,
            vec![(0, 1), (1, 40000), (2, 40000), (3, 200000), (4, 0), (5, 0)]
        );
        assert_eq!(entries[1].name, "e12/spill");
        assert_eq!(entries[1].counters.len(), 9);
        assert!(entries[1].counters.contains(&(6, 65536)));
        assert!(entries[1].counters.contains(&(7, 4)));
        assert!(entries[1].counters.contains(&(8, 65536)));
    }

    #[test]
    fn check_flags_grown_counters_only() {
        let base = vec![CheckEntry::dense(
            "e11/equality/vectorized",
            [1, 40000, 40000, 200000, 10, 0, 0, 0, 0],
        )];
        // Identical counters: clean.
        let same = vec![CheckEntry::dense(
            "e11/equality/vectorized",
            [1, 40000, 40000, 200000, 10, 0, 0, 0, 0],
        )];
        assert!(compare_entries(&same, &base).is_empty());
        // A shrunk counter (less work) is not a regression.
        let better = vec![CheckEntry::dense(
            "e11/equality/vectorized",
            [1, 40000, 39000, 200000, 10, 0, 0, 0, 0],
        )];
        assert!(compare_entries(&better, &base).is_empty());
        // A grown counter is.
        let worse = vec![CheckEntry::dense(
            "e11/equality/vectorized",
            [1, 40000, 40000, 200000, 10, 3, 0, 0, 0],
        )];
        let regressions = compare_entries(&worse, &base);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("batch_fallbacks regressed 0 -> 3"));
        // Entries present only in the new run are new coverage and pass...
        let extra = vec![
            CheckEntry::dense(
                "e11/equality/vectorized",
                [1, 40000, 40000, 200000, 10, 0, 0, 0, 0],
            ),
            CheckEntry::dense("e11/new-shape/vectorized", [9, 9, 9, 9, 9, 9, 9, 9, 9]),
        ];
        assert!(compare_entries(&extra, &base).is_empty());
        // ...but a baseline entry that disappeared from the new run is a
        // lost gate and fails loudly, not a silent skip.
        let disjoint = vec![CheckEntry::dense(
            "e11/new-shape/vectorized",
            [9, 9, 9, 9, 9, 9, 9, 9, 9],
        )];
        let missing = compare_entries(&disjoint, &base);
        assert_eq!(missing.len(), 1);
        assert!(
            missing[0].contains("e11/equality/vectorized: entry missing from the new run"),
            "{missing:?}"
        );
    }

    #[test]
    fn check_flags_disappearing_counters_with_an_explicit_diff() {
        // The baseline gates nine counters; the new run dropped two of them
        // (e.g. a refactor stopped emitting the spill counters). The old
        // intersection gate would have passed this silently — it must fail,
        // naming each vanished counter and the value it used to gate.
        let base = vec![CheckEntry::dense(
            "e12/spill",
            [2, 100, 100, 100, 0, 0, 65536, 4, 65536],
        )];
        let shrunk = vec![CheckEntry {
            name: "e12/spill".into(),
            counters: [2u64, 100, 100, 100, 0, 0, 65536]
                .into_iter()
                .enumerate()
                .collect(),
        }];
        let regressions = compare_entries(&shrunk, &base);
        assert_eq!(regressions.len(), 2, "{regressions:?}");
        assert!(regressions[0]
            .contains("spill_partitions missing from the new run (baseline gates it at 4)"));
        assert!(regressions[1]
            .contains("spill_read_bytes missing from the new run (baseline gates it at 65536)"));
        // A new run carrying a superset of the baseline's counters stays
        // clean: sparseness is tolerated in the old-baseline direction only.
        let superset = vec![CheckEntry {
            name: "e12/spill".into(),
            counters: vec![
                (0, 2),
                (1, 100),
                (2, 100),
                (3, 100),
                (4, 0),
                (5, 0),
                (6, 65536),
                (7, 4),
                (8, 65536),
                (15, 3),
                (19, 1),
            ],
        }];
        assert!(compare_entries(&superset, &base).is_empty());
    }

    #[test]
    fn check_parses_and_gates_the_cache_counters() {
        // An E13-era entry carries the cuboid-cache and ingest counters...
        let line = "    {\"name\": \"e13/warm\", \"wall_ms\": 0.050, \
                    \"scans\": 0, \"tuples\": 0, \"probes\": 0, \"updates\": 0, \
                    \"batches\": 0, \"batch_fallbacks\": 0, \"bytes_spilled\": 0, \
                    \"spill_partitions\": 0, \"spill_read_bytes\": 0, \"fallback_theta\": 0, \
                    \"fallback_prefilter\": 0, \"fallback_key\": 0, \"fallback_agg\": 0, \
                    \"gen_sets\": 0, \"gen_set_fallbacks\": 0, \"cache_hits\": 3, \
                    \"cache_rollup_hits\": 0, \"cache_misses\": 0, \
                    \"cache_invalidations\": 0, \"ingest_batches\": 0},";
        let entries = parse_baseline(line);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].counters.len(), 20);
        assert!(entries[0].counters.contains(&(15, 3)));
        // ...and a warm query newly falling out of the cache (hits stay, but
        // misses grow) fails the gate.
        let with = |misses: u64| {
            vec![CheckEntry {
                name: "e13/warm".into(),
                counters: vec![(15, 3), (17, misses)],
            }]
        };
        assert!(compare_entries(&with(0), &with(0)).is_empty());
        let regressions = compare_entries(&with(1), &with(0));
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("cache_misses regressed 0 -> 1"));
    }

    #[test]
    fn check_parses_and_gates_the_paged_counters() {
        // An E14-era entry carries the paged-I/O counters at the tail...
        let line = "    {\"name\": \"e14/pruned/serial\", \"wall_ms\": 0.050, \
                    \"scans\": 1, \"tuples\": 0, \"probes\": 0, \"updates\": 0, \
                    \"batches\": 0, \"batch_fallbacks\": 0, \"bytes_spilled\": 0, \
                    \"spill_partitions\": 0, \"spill_read_bytes\": 0, \"fallback_theta\": 0, \
                    \"fallback_prefilter\": 0, \"fallback_key\": 0, \"fallback_agg\": 0, \
                    \"gen_sets\": 0, \"gen_set_fallbacks\": 0, \"cache_hits\": 0, \
                    \"cache_rollup_hits\": 0, \"cache_misses\": 0, \
                    \"cache_invalidations\": 0, \"ingest_batches\": 0, \
                    \"bytes_read\": 40960, \"pages_read\": 10, \"pool_evictions\": 6},";
        let entries = parse_baseline(line);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].counters.len(), 23);
        assert!(entries[0].counters.contains(&(20, 40960)));
        assert!(entries[0].counters.contains(&(21, 10)));
        assert!(entries[0].counters.contains(&(22, 6)));
        // ...and a pruned scan newly touching extra pages fails the gate:
        // losing the Theorem 4.2 pushdown is an I/O regression even when the
        // answer (and every in-memory counter) stays the same.
        let with = |pages: u64| {
            vec![CheckEntry {
                name: "e14/pruned/serial".into(),
                counters: vec![(20, pages * 4096), (21, pages), (22, 6)],
            }]
        };
        assert!(compare_entries(&with(10), &with(10)).is_empty());
        let regressions = compare_entries(&with(12), &with(10));
        assert_eq!(regressions.len(), 2);
        assert!(regressions
            .iter()
            .any(|r| r.contains("pages_read regressed 10 -> 12")));
        assert!(regressions
            .iter()
            .any(|r| r.contains("bytes_read regressed 40960 -> 49152")));
    }

    #[test]
    fn check_compares_sparse_entries_over_the_key_intersection() {
        // A baseline written before the spill counters existed gates only
        // the six counters it carries against a current 9-counter run...
        let old_base = vec![CheckEntry {
            name: "e11/equality/serial".into(),
            counters: (0..6).map(|i| (i, 100)).collect(),
        }];
        let current = vec![CheckEntry::dense(
            "e11/equality/serial",
            [100, 100, 100, 100, 100, 100, 77777, 5, 77777],
        )];
        assert!(compare_entries(&current, &old_base).is_empty());
        // ...a regression in a shared counter still fires...
        let grown = vec![CheckEntry::dense(
            "e11/equality/serial",
            [100, 100, 101, 100, 100, 100, 77777, 5, 77777],
        )];
        let regressions = compare_entries(&grown, &old_base);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("probes regressed 100 -> 101"));
        // ...and a 9-counter baseline gates the spill counters too.
        let new_base = vec![CheckEntry::dense(
            "e12/spill",
            [2, 100, 100, 100, 0, 0, 65536, 4, 65536],
        )];
        let spill_grew = vec![CheckEntry::dense(
            "e12/spill",
            [2, 100, 100, 100, 0, 0, 70000, 4, 70000],
        )];
        let regressions = compare_entries(&spill_grew, &new_base);
        assert_eq!(regressions.len(), 2);
        assert!(regressions[0].contains("bytes_spilled regressed 65536 -> 70000"));
        assert!(regressions[1].contains("spill_read_bytes regressed 65536 -> 70000"));
    }

    #[test]
    fn check_gates_fallback_attribution_and_generalized_counters() {
        // A BENCH_3-era entry parses the attribution and generalized
        // counters the writer now emits...
        let line = "    {\"name\": \"e11/fused-k4/vectorized\", \"wall_ms\": 3.000, \
                    \"scans\": 1, \"tuples\": 40000, \"probes\": 160000, \"updates\": 80000, \
                    \"batches\": 40, \"batch_fallbacks\": 0, \"bytes_spilled\": 0, \
                    \"spill_partitions\": 0, \"spill_read_bytes\": 0, \"fallback_theta\": 0, \
                    \"fallback_prefilter\": 0, \"fallback_key\": 0, \"fallback_agg\": 0, \
                    \"gen_sets\": 4, \"gen_set_fallbacks\": 0},";
        let entries = parse_baseline(line);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].counters.len(), 15);
        assert!(entries[0].counters.contains(&(13, 4)));
        assert!(entries[0].counters.contains(&(14, 0)));
        // ...and a condition set newly delegating to scalar — or a batch
        // newly falling back for an attributed reason — fails the gate,
        // while the overall set count holding steady stays clean.
        let with = |theta: u64, gen_fall: u64| {
            vec![CheckEntry {
                name: "e11/fused-k4/vectorized".into(),
                counters: vec![(9, theta), (13, 4), (14, gen_fall)],
            }]
        };
        assert!(compare_entries(&with(0, 0), &with(0, 0)).is_empty());
        let regressions = compare_entries(&with(5, 1), &with(0, 0));
        assert_eq!(regressions.len(), 2);
        assert!(regressions[0].contains("fallback_theta regressed 0 -> 5"));
        assert!(regressions[1].contains("gen_set_fallbacks regressed 0 -> 1"));
    }
}
