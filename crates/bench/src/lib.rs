//! Shared fixtures for the benchmark suite and the `repro` harness.
//!
//! Every experiment Eₙ from DESIGN.md gets one Criterion bench file plus one
//! row-printing function in the `repro` binary; both use these builders so
//! the data is identical across runs.

use mdj_agg::AggSpec;
use mdj_core::ExecContext;
use mdj_datagen::{payments, sales, PaymentsConfig, SalesConfig};
use mdj_storage::Relation;

/// Standard Sales table for benches: seeded, mild product skew.
pub fn bench_sales(rows: usize, customers: usize) -> Relation {
    sales(
        &SalesConfig::default()
            .with_rows(rows)
            .with_customers(customers)
            .with_products(20)
            .with_states(10)
            .with_years(1994, 1999)
            .with_product_skew(0.5)
            .with_seed(20010402), // ICDE 2001 ;-)
    )
}

/// Standard Payments table aligned with [`bench_sales`].
pub fn bench_payments(rows: usize, customers: usize) -> Relation {
    payments(
        &PaymentsConfig::default()
            .with_rows(rows)
            .with_customers(customers)
            .with_seed(20010403),
    )
}

/// The tri-state grouping-variable blocks of Example 2.2.
pub fn tristate_blocks() -> Vec<mdj_core::generalized::Block> {
    use mdj_expr::builder::*;
    ["NY", "NJ", "CT"]
        .iter()
        .map(|st| {
            mdj_core::generalized::Block::new(
                and(
                    eq(col_r("cust"), col_b("cust")),
                    eq(col_r("state"), lit(*st)),
                ),
                vec![AggSpec::on_column("avg", "sale")
                    .with_alias(format!("avg_{}", st.to_lowercase()))],
            )
        })
        .collect()
}

/// Default context (auto probing, no stats).
pub fn ctx() -> ExecContext {
    ExecContext::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(bench_sales(100, 10), bench_sales(100, 10));
        assert_eq!(bench_payments(100, 10), bench_payments(100, 10));
        assert_eq!(tristate_blocks().len(), 3);
    }
}
