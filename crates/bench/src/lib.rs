//! Shared fixtures for the benchmark suite and the `repro` harness.
//!
//! Every experiment Eₙ from DESIGN.md gets one Criterion bench file plus one
//! row-printing function in the `repro` binary; both use these builders so
//! the data is identical across runs.

use mdj_agg::AggSpec;
use mdj_core::{Block, ExecContext, ExecStrategy, MdJoin, Result};
use mdj_datagen::{payments, sales, PaymentsConfig, SalesConfig};
use mdj_expr::Expr;
use mdj_storage::Relation;

/// Standard Sales table for benches: seeded, mild product skew.
pub fn bench_sales(rows: usize, customers: usize) -> Relation {
    sales(
        &SalesConfig::default()
            .with_rows(rows)
            .with_customers(customers)
            .with_products(20)
            .with_states(10)
            .with_years(1994, 1999)
            .with_product_skew(0.5)
            .with_seed(20010402), // ICDE 2001 ;-)
    )
}

/// Standard Payments table aligned with [`bench_sales`].
pub fn bench_payments(rows: usize, customers: usize) -> Relation {
    payments(
        &PaymentsConfig::default()
            .with_rows(rows)
            .with_customers(customers)
            .with_seed(20010403),
    )
}

/// The tri-state grouping-variable blocks of Example 2.2.
pub fn tristate_blocks() -> Vec<mdj_core::generalized::Block> {
    use mdj_expr::builder::*;
    ["NY", "NJ", "CT"]
        .iter()
        .map(|st| {
            mdj_core::generalized::Block::new(
                and(
                    eq(col_r("cust"), col_b("cust")),
                    eq(col_r("state"), lit(*st)),
                ),
                vec![AggSpec::on_column("avg", "sale")
                    .with_alias(format!("avg_{}", st.to_lowercase()))],
            )
        })
        .collect()
}

/// Sales with Zipf-skewed customer ids, clustered (sorted) by customer — the
/// adversarial layout for static chunk scheduling: a hot customer's rows sit
/// in one contiguous run, so one-chunk-per-thread plans hand a single worker
/// the whole hot slice when `skew ≥ 1`.
pub fn bench_sales_zipf(rows: usize, customers: usize, products: usize, skew: f64) -> Relation {
    use mdj_datagen::Zipf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(20010404);
    let cust_dist = Zipf::new(customers, skew);
    let base = sales(
        &SalesConfig::default()
            .with_rows(rows)
            .with_customers(customers)
            .with_products(products)
            .with_states(10)
            .with_years(1994, 1999)
            .with_seed(20010402),
    );
    let schema = base.schema().clone();
    let cust_col = schema.index_of("cust").expect("sales schema has cust");
    let rows: Vec<mdj_storage::Row> = base
        .into_rows()
        .into_iter()
        .map(|row| {
            let mut vals = row.into_values();
            vals[cust_col] = mdj_storage::Value::Int(cust_dist.sample(&mut rng) as i64);
            mdj_storage::Row::new(vals)
        })
        .collect();
    let mut rel = Relation::from_rows(schema, rows);
    rel.sort_by(&["cust"]).expect("cust column exists");
    rel
}

/// Serial MD-join through the [`MdJoin`] builder with the classic
/// free-function signature the bench files were written against.
pub fn serial_md_join(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(ctx)
}

/// Generalized (multi-θ) MD-join through the builder.
pub fn multi_md_join(
    b: &Relation,
    r: &Relation,
    blocks: &[Block],
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r).blocks(blocks.iter().cloned()).run(ctx)
}

/// Default context (auto probing, no stats).
pub fn ctx() -> ExecContext {
    ExecContext::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(bench_sales(100, 10), bench_sales(100, 10));
        assert_eq!(bench_payments(100, 10), bench_payments(100, 10));
        assert_eq!(tristate_blocks().len(), 3);
    }
}
