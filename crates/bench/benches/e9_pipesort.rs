//! E9 (Figure 2): PIPESORT pipelined paths vs per-cuboid recomputation and
//! roll-up chains, as dimensionality grows.
//!
//! Expected shape: per-cuboid grows with 2ⁿ scans of the detail table;
//! pipesort and rollup-chain read it once and pay only for intermediate
//! sorts/aggregations, so the gap widens with n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::{bench_sales, ctx};
use mdj_cube::naive::cube_per_cuboid;
use mdj_cube::pipesort::cube_pipesort;
use mdj_cube::rollup_chain::cube_rollup_chain;
use mdj_cube::CubeSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_pipesort");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let r = bench_sales(30_000, 500);
    let dim_sets: [&[&str]; 3] = [
        &["prod", "month"],
        &["prod", "month", "state"],
        &["prod", "month", "state", "year"],
    ];
    for dims in dim_sets {
        let spec = CubeSpec::new(
            dims,
            vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
        );
        let n = dims.len();
        group.bench_with_input(BenchmarkId::new("per_cuboid", n), &r, |bch, r| {
            bch.iter(|| cube_per_cuboid(r, &spec, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pipesort", n), &r, |bch, r| {
            bch.iter(|| cube_pipesort(r, &spec, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rollup_chain", n), &r, |bch, r| {
            bch.iter(|| cube_rollup_chain(r, &spec, &ctx).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
