//! E7 (Theorem 4.4 / Example 3.3): a chain over two fact tables vs the split
//! equijoin of independent MD-joins, sequentially and with one thread per
//! "site" (the paper's distributed Sales example).
//!
//! Expected shape: split ≈ sequential when run serially (same total work,
//! plus a cheap equijoin on B's key); two-site parallel split approaches the
//! slower of the two MD-joins.

use criterion::{criterion_group, criterion_main, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::serial_md_join;
use mdj_bench::{bench_payments, bench_sales, ctx};
use mdj_expr::builder::*;
use mdj_storage::Relation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_split_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let sales = bench_sales(80_000, 1_000);
    let payments = bench_payments(80_000, 1_000);
    let b = sales.distinct_on(&["cust", "month"]).unwrap();
    let theta = and(
        eq(col_r("cust"), col_b("cust")),
        eq(col_r("month"), col_b("month")),
    );
    let l_sales = [AggSpec::on_column("sum", "sale")];
    let l_pay = [AggSpec::on_column("sum", "amount")];

    group.bench_function("sequential_chain", |bch| {
        bch.iter(|| {
            let s1 = serial_md_join(&b, &sales, &l_sales, &theta, &ctx).unwrap();
            serial_md_join(&s1, &payments, &l_pay, &theta, &ctx).unwrap()
        })
    });
    group.bench_function("split_then_join", |bch| {
        bch.iter(|| {
            let left = serial_md_join(&b, &sales, &l_sales, &theta, &ctx).unwrap();
            let right = serial_md_join(&b, &payments, &l_pay, &theta, &ctx).unwrap();
            join_on_b(&left, &right)
        })
    });
    group.bench_function("split_two_sites_parallel", |bch| {
        bch.iter(|| {
            let (left, right) = crossbeam::thread::scope(|scope| {
                let h1 =
                    scope.spawn(|_| serial_md_join(&b, &sales, &l_sales, &theta, &ctx).unwrap());
                let h2 =
                    scope.spawn(|_| serial_md_join(&b, &payments, &l_pay, &theta, &ctx).unwrap());
                (h1.join().unwrap(), h2.join().unwrap())
            })
            .unwrap();
            join_on_b(&left, &right)
        })
    });
    group.finish();
}

fn join_on_b(left: &Relation, right: &Relation) -> Relation {
    let joined =
        mdj_naive::join::hash_join(left, right, &["cust", "month"], &["cust", "month"]).unwrap();
    let idx: Vec<usize> = (0..left.schema().len())
        .chain([left.schema().len() + 2])
        .collect();
    let schema = joined.schema().project(&idx);
    let rows = joined
        .iter()
        .map(|row| mdj_storage::Row::new(row.key(&idx)))
        .collect();
    Relation::from_rows(schema, rows)
}

criterion_group!(benches, bench);
criterion_main!(benches);
