//! E6 (Theorem 4.2 / Observation 4.1 / Example 4.1): selection pushdown to a
//! clustered index.
//!
//! Expected shape: the full-scan plan is flat in selectivity; the pushed plan
//! scales with the fraction of matching tuples; the clustered-index plan
//! additionally avoids even reading non-matching tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::serial_md_join;
use mdj_bench::{bench_sales, ctx};
use mdj_expr::builder::*;
use mdj_storage::{Relation, SortedIndex, Value};
use std::ops::Bound;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pushdown");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let r = bench_sales(100_000, 1_000);
    let b = r.distinct_on(&["prod"]).unwrap();
    let l = [AggSpec::on_column("sum", "sale")];
    // Clustered index on year (Example 4.1's date index).
    let index = SortedIndex::build_on(&r, &["year"]).unwrap();

    // Selectivity sweep: 1 year (1/6) vs 3 years (1/2) of 1994..=1999.
    for (label, lo, hi) in [("year_1999", 1999i64, 1999i64), ("years_94_96", 1994, 1996)] {
        let theta_full = and_all([
            eq(col_r("prod"), col_b("prod")),
            ge(col_r("year"), lit(lo)),
            le(col_r("year"), lit(hi)),
        ]);
        let theta_residual = eq(col_r("prod"), col_b("prod"));
        group.bench_with_input(BenchmarkId::new("full_scan", label), &r, |bch, r| {
            bch.iter(|| serial_md_join(&b, r, &l, &theta_full, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pushed_sigma", label), &r, |bch, r| {
            bch.iter(|| {
                let sigma = mdj_naive::ops::select(
                    r,
                    &and(ge(col_r("year"), lit(lo)), le(col_r("year"), lit(hi))),
                )
                .unwrap();
                serial_md_join(&b, &sigma, &l, &theta_residual, &ctx).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("clustered_index", label), &r, |bch, r| {
            bch.iter(|| {
                let ids = index.range_first(
                    Bound::Included(&Value::Int(lo)),
                    Bound::Included(&Value::Int(hi)),
                );
                let slice = Relation::from_rows(
                    r.schema().clone(),
                    ids.iter().map(|&i| r.rows()[i].clone()).collect(),
                );
                serial_md_join(&b, &slice, &l, &theta_residual, &ctx).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
