//! E4 (Section 5's performance claim, Example 2.5): the MD-join evaluation
//! of "count sales between neighbor months' averages" vs the multi-block
//! relational plan a commercial DBMS would execute.
//!
//! Expected shape: order-of-magnitude-class separation at scale (the paper
//! reports "an order of magnitude faster" for the EMF prototype).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::{AggSpec, Registry};
use mdj_bench::{bench_sales, ctx};
use mdj_bench::{multi_md_join, serial_md_join};
use mdj_core::Block;
use mdj_expr::builder::*;
use mdj_naive::ops::select;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_vs_naive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let registry = Registry::standard();
    for rows in [10_000usize, 50_000] {
        let r = bench_sales(rows, 200);
        group.bench_with_input(BenchmarkId::new("md_join", rows), &r, |bch, r| {
            bch.iter(|| {
                // σ_{year=1997}(Sales) once (Theorem 4.2).
                let r97 = select(r, &eq(col_r("year"), lit(1997i64))).unwrap();
                let b = r97.distinct_on(&["prod", "month"]).unwrap();
                // X and Y coalesce into one scan (independent θs).
                let xy = vec![
                    Block::new(
                        and(
                            eq(col_r("prod"), col_b("prod")),
                            eq(col_r("month"), sub(col_b("month"), lit(1i64))),
                        ),
                        vec![AggSpec::on_column("avg", "sale").with_alias("avg_x")],
                    ),
                    Block::new(
                        and(
                            eq(col_r("prod"), col_b("prod")),
                            eq(col_r("month"), add(col_b("month"), lit(1i64))),
                        ),
                        vec![AggSpec::on_column("avg", "sale").with_alias("avg_y")],
                    ),
                ];
                let step1 = multi_md_join(&b, &r97, &xy, &ctx).unwrap();
                let theta_z = and_all([
                    eq(col_r("prod"), col_b("prod")),
                    eq(col_r("month"), col_b("month")),
                    gt(col_r("sale"), col_b("avg_x")),
                    lt(col_r("sale"), col_b("avg_y")),
                ]);
                serial_md_join(
                    &step1,
                    &r97,
                    &[AggSpec::count_star().with_alias("cnt")],
                    &theta_z,
                    &ctx,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("classical_hash", rows), &r, |bch, r| {
            bch.iter(|| mdj_naive::plans::example_2_5(r, 1997, &registry).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("classical_sort_based", rows),
            &r,
            |bch, r| {
                bch.iter(|| mdj_naive::plans::example_2_5_sort_based(r, 1997, &registry).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
