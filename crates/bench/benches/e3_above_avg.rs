//! E3 (Example 2.3 / 3.2): count of above-cell-average sales over the full
//! cube — the MD-join chain (unoptimized wildcard-θ and optimized per-cuboid
//! forms) vs the eight-group-bys-plus-joins plan.
//!
//! Expected shape: the optimized MD-join chain wins; the unoptimized
//! wildcard-θ form shows why the paper's Theorem 4.1 / §4.5 rewrites matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::{AggSpec, Registry};
use mdj_bench::{bench_sales, ctx, serial_md_join};
use mdj_core::basevalues::{cube, cube_match_theta, cuboid_theta};
use mdj_core::ExecContext;
use mdj_expr::builder::*;
use mdj_storage::{Relation, Value};

/// Optimized plan: per-cuboid MD-join pairs, hash-probed (Thm 4.1 + §4.5).
fn optimized(r: &Relation, dims: &[&str; 3], ctx: &ExecContext) -> Relation {
    let n = dims.len();
    let mut out: Option<Relation> = None;
    for mask in (0..(1u32 << n)).rev() {
        let kept: Vec<&str> = dims
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, d)| *d)
            .collect();
        let b = r.distinct_on(&kept).unwrap();
        let avg = serial_md_join(
            &b,
            r,
            &[AggSpec::on_column("avg", "sale")],
            &cuboid_theta(&kept),
            ctx,
        )
        .unwrap();
        let theta2 = and(cuboid_theta(&kept), gt(col_r("sale"), col_b("avg_sale")));
        let cnt = serial_md_join(
            &avg,
            r,
            &[AggSpec::count_star().with_alias("cnt")],
            &theta2,
            ctx,
        )
        .unwrap();
        let mut fields: Vec<mdj_storage::Field> = dims
            .iter()
            .map(|d| mdj_storage::Field::new(*d, mdj_storage::DataType::Any))
            .collect();
        fields.push(mdj_storage::Field::new("cnt", mdj_storage::DataType::Int));
        let mut padded = Relation::empty(mdj_storage::Schema::new(fields));
        let cnt_col = cnt.schema().index_of("cnt").unwrap();
        for row in cnt.iter() {
            let mut vals = Vec::with_capacity(n + 1);
            for d in dims.iter() {
                match kept.iter().position(|k| k == d) {
                    Some(i) => vals.push(row[i].clone()),
                    None => vals.push(Value::All),
                }
            }
            vals.push(row[cnt_col].clone());
            padded.push_unchecked(mdj_storage::Row::new(vals));
        }
        out = Some(match out {
            None => padded,
            Some(acc) => acc.union(&padded).unwrap(),
        });
    }
    out.expect("apex cuboid exists")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_above_avg");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let registry = Registry::standard();
    let dims = ["prod", "month", "state"];
    for rows in [1_000usize, 4_000] {
        let r = bench_sales(rows, 100);
        if rows <= 1_000 {
            group.bench_with_input(BenchmarkId::new("md_wildcard_unopt", rows), &r, |bch, r| {
                bch.iter(|| {
                    let b = cube(r, &dims).unwrap();
                    let step1 = serial_md_join(
                        &b,
                        r,
                        &[AggSpec::on_column("avg", "sale")],
                        &cube_match_theta(&dims),
                        &ctx,
                    )
                    .unwrap();
                    let theta2 = and(
                        cube_match_theta(&dims),
                        gt(col_r("sale"), col_b("avg_sale")),
                    );
                    serial_md_join(
                        &step1,
                        r,
                        &[AggSpec::count_star().with_alias("cnt")],
                        &theta2,
                        &ctx,
                    )
                    .unwrap()
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("md_optimized", rows), &r, |bch, r| {
            bch.iter(|| optimized(r, &dims, &ctx))
        });
        group.bench_with_input(
            BenchmarkId::new("classical_8_groupbys", rows),
            &r,
            |bch, r| bch.iter(|| mdj_naive::plans::example_2_3(r, &registry).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
