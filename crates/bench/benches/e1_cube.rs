//! E1 (Figure 1 / Example 2.1): cube computation strategies.
//!
//! Expected shape (paper: [AAD+96]/[RS96] beat naive per-cuboid scans, which
//! beat the wildcard-θ single MD-join): wildcard ≫ per-cuboid > pipesort ≈
//! rollup-chain, with partitioned close to rollup-chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::{bench_sales, ctx};
use mdj_cube::naive::{cube_per_cuboid, cube_via_wildcard_theta};
use mdj_cube::partitioned::cube_partitioned;
use mdj_cube::pipesort::cube_pipesort;
use mdj_cube::rollup_chain::cube_rollup_chain;
use mdj_cube::CubeSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_cube");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let spec = CubeSpec::new(
        &["prod", "month", "state"],
        vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
    );
    let ctx = ctx();
    for rows in [2_000usize, 10_000] {
        let r = bench_sales(rows, 200);
        if rows <= 2_000 {
            group.bench_with_input(BenchmarkId::new("wildcard_theta", rows), &r, |b, r| {
                b.iter(|| cube_via_wildcard_theta(r, &spec, &ctx).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("per_cuboid", rows), &r, |b, r| {
            b.iter(|| cube_per_cuboid(r, &spec, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rollup_chain", rows), &r, |b, r| {
            b.iter(|| cube_rollup_chain(r, &spec, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pipesort", rows), &r, |b, r| {
            b.iter(|| cube_pipesort(r, &spec, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("partitioned_rs96", rows), &r, |b, r| {
            b.iter(|| cube_partitioned(r, &spec, 0, &ctx).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
