//! Kernel reductions and the fused generalized MD-join.
//!
//! Two groups:
//!
//! * `kernels`: the chunked `mdj_agg::kernels` update loops over synthetic
//!   selections — build with `--features simd` to measure the AVX2 reduction
//!   paths against the branch-free scalar loops (the binary prints the same
//!   bench names either way, so the two builds diff directly).
//! * `generalized`: a k-set pivot evaluated as k sequential vectorized
//!   MD-joins vs the fused single-scan executor sharing one chunk
//!   transposition per batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::{AggSpec, KernelKind};
use mdj_bench::bench_sales;
use mdj_core::{Block, ExecContext, ExecStrategy, MdJoin};
use mdj_expr::builder::*;

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("generalized_simd/kernels");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    const N: usize = 1 << 16;
    let ints: Vec<i64> = (0..N as i64).map(|i| i.wrapping_mul(0x9E37)).collect();
    let floats: Vec<f64> = (0..N).map(|i| (i as f64) * 0.25 - 1000.0).collect();
    let nulls: Vec<bool> = (0..N).map(|i| i % 11 == 0).collect();
    let sel: Vec<u32> = (0..N as u32).filter(|i| i % 3 != 0).collect();
    for kind in [
        KernelKind::Sum,
        KernelKind::Min,
        KernelKind::Max,
        KernelKind::Count { star: false },
    ] {
        group.bench_with_input(
            BenchmarkId::new("ints", format!("{kind:?}")),
            &kind,
            |bch, kind| {
                bch.iter(|| {
                    let mut state = kind.init();
                    state.update_ints(&ints, &nulls, &sel).unwrap();
                    state.finalize()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("floats", format!("{kind:?}")),
            &kind,
            |bch, kind| {
                bch.iter(|| {
                    let mut state = kind.init();
                    state.update_floats(&floats, &nulls, &sel).unwrap();
                    state.finalize()
                })
            },
        );
    }
    group.finish();
}

fn generalized(c: &mut Criterion) {
    let mut group = c.benchmark_group("generalized_simd/fused");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let r = bench_sales(40_000, 1_000);
    let b = r.distinct_on(&["cust"]).unwrap();
    let ctx = ExecContext::new();
    let block = |m: i64| {
        Block::new(
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("month"), lit(m + 1)),
            ),
            vec![
                AggSpec::on_column("sum", "sale").with_alias(format!("sum_{m}")),
                AggSpec::on_column("count", "sale").with_alias(format!("cnt_{m}")),
            ],
        )
    };
    for k in [2usize, 4, 8] {
        let blocks: Vec<Block> = (0..k as i64).map(block).collect();
        group.bench_with_input(BenchmarkId::new("sequential", k), &blocks, |bch, blocks| {
            bch.iter(|| {
                // k single vectorized MD-joins, one R scan each.
                for blk in blocks {
                    std::hint::black_box(
                        MdJoin::new(&b, &r)
                            .aggs(&blk.aggs)
                            .theta(blk.theta.clone())
                            .strategy(ExecStrategy::Vectorized)
                            .threads(1)
                            .run(&ctx)
                            .unwrap(),
                    );
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", k), &blocks, |bch, blocks| {
            bch.iter(|| {
                let mut join = MdJoin::new(&b, &r).strategy(ExecStrategy::Vectorized);
                join = join.blocks(blocks.iter().cloned());
                join.run(&ctx).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, kernels, generalized);
criterion_main!(benches);
