//! E11: vectorized batch execution vs the scalar serial evaluator.
//!
//! Expected shape: on kernel-covered aggregate lists with a hash-probeable θ
//! the batched path wins well over 1.5× (typed aggregate kernels + batched
//! integer-key probing); when θ forces the nested loop every batch falls
//! back to the scalar interpreter and the two paths converge to parity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::bench_sales;
use mdj_core::{ExecContext, ExecStrategy, MdJoin};
use mdj_expr::builder::*;
use mdj_expr::Expr;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_vectorized");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let r = bench_sales(40_000, 1_000);
    let b = r.distinct_on(&["cust"]).unwrap();
    let l = [
        AggSpec::on_column("sum", "sale"),
        AggSpec::on_column("avg", "sale"),
        AggSpec::on_column("min", "sale"),
        AggSpec::on_column("max", "sale"),
        AggSpec::count_star(),
    ];
    let shapes: [(&str, Expr); 3] = [
        ("equality", eq(col_b("cust"), col_r("cust"))),
        (
            "computed_key",
            eq(col_b("cust"), add(col_r("cust"), lit(0i64))),
        ),
        (
            "mixed_residual",
            and(
                eq(col_b("cust"), col_r("cust")),
                ge(col_r("sale"), col_b("cust")),
            ),
        ),
    ];
    let ctx = ExecContext::new();
    for (label, theta) in &shapes {
        for (variant, strategy) in [
            ("scalar", ExecStrategy::Serial),
            ("vectorized", ExecStrategy::Vectorized),
        ] {
            group.bench_with_input(BenchmarkId::new(variant, label), theta, |bch, theta| {
                bch.iter(|| {
                    MdJoin::new(&b, &r)
                        .aggs(&l)
                        .theta(theta.clone())
                        .strategy(strategy)
                        .threads(1)
                        .run(&ctx)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
