//! E2 (Example 2.2 / Theorem 4.3): the tri-state pivot — a series of three
//! MD-joins vs the coalesced generalized MD-join vs the classical multi-block
//! plan.
//!
//! Expected shape: coalesced (1 scan) < sequential (3 scans) < classical
//! (4 subqueries + 3 outer joins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::Registry;
use mdj_bench::{bench_sales, ctx, multi_md_join, serial_md_join, tristate_blocks};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_pivot_coalesce");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let registry = Registry::standard();
    for rows in [20_000usize, 100_000] {
        let r = bench_sales(rows, rows / 100);
        let b = r.distinct_on(&["cust"]).unwrap();
        let blocks = tristate_blocks();
        group.bench_with_input(BenchmarkId::new("coalesced_1_scan", rows), &r, |bch, r| {
            bch.iter(|| multi_md_join(&b, r, &blocks, &ctx).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("sequential_3_scans", rows),
            &r,
            |bch, r| {
                bch.iter(|| {
                    let mut acc = b.clone();
                    for blk in &blocks {
                        acc = serial_md_join(&acc, r, &blk.aggs, &blk.theta, &ctx).unwrap();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("classical_hash", rows), &r, |bch, r| {
            bch.iter(|| mdj_naive::plans::example_2_2(r, &registry).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("classical_sort_based", rows),
            &r,
            |bch, r| bch.iter(|| mdj_naive::plans::example_2_2_sort_based(r, &registry).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
