//! E5 (Theorem 4.1): base-table partitioning and intra-operator parallelism.
//!
//! Expected shape: partitioned (m scans) costs ≈ m× the single scan —
//! "a well-defined increase in the number of scans of R" — while parallel
//! execution scales down with threads until the per-thread scan dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::{bench_sales, ctx};
use mdj_core::parallel::{md_join_parallel, md_join_parallel_detail};
use mdj_core::partitioned::md_join_partitioned;
use mdj_core::md_join;
use mdj_expr::builder::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_partition_parallel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let r = bench_sales(100_000, 2_000);
    let b = r.distinct_on(&["cust", "month"]).unwrap();
    let l = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
    let theta = and(eq(col_b("cust"), col_r("cust")), eq(col_b("month"), col_r("month")));

    group.bench_function("direct_1_scan", |bch| {
        bch.iter(|| md_join(&b, &r, &l, &theta, &ctx).unwrap())
    });
    for m in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("partitioned_m_scans", m), &m, |bch, &m| {
            bch.iter(|| md_join_partitioned(&b, &r, &l, &theta, m, &ctx).unwrap())
        });
    }
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel_base", threads), &threads, |bch, &t| {
            bch.iter(|| md_join_parallel(&b, &r, &l, &theta, t, &ctx).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("parallel_detail_merge", threads),
            &threads,
            |bch, &t| bch.iter(|| md_join_parallel_detail(&b, &r, &l, &theta, t, &ctx).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
