//! E5 (Theorem 4.1): base-table partitioning, intra-operator parallelism,
//! and the static-chunk vs morsel-driven scheduling ablation.
//!
//! Expected shape: partitioned (m scans) costs ≈ m× the single scan —
//! "a well-defined increase in the number of scans of R" — while parallel
//! execution scales down with threads until the per-thread scan dominates.
//! On Zipf-skewed, customer-clustered data the static one-chunk-per-thread
//! plans inherit the skew (one worker gets the hot slice and the others
//! wait), whereas the work-stealing morsel executor rebalances at morsel
//! granularity and should win by ≥1.3× at 8 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::{bench_sales, bench_sales_zipf, ctx};
use mdj_core::{ExecContext, ExecStrategy, MdJoin};
use mdj_expr::builder::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_partition_parallel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let r = bench_sales(100_000, 2_000);
    let b = r.distinct_on(&["cust", "month"]).unwrap();
    let l = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
    let theta = and(
        eq(col_b("cust"), col_r("cust")),
        eq(col_b("month"), col_r("month")),
    );
    let join = MdJoin::new(&b, &r).aggs(&l).theta(theta);

    group.bench_function("direct_1_scan", |bch| {
        let j = join.clone().strategy(ExecStrategy::Serial);
        bch.iter(|| j.run(&ctx).unwrap())
    });
    for m in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("partitioned_m_scans", m), &m, |bch, &m| {
            let j = join
                .clone()
                .strategy(ExecStrategy::Partitioned { partitions: m });
            bch.iter(|| j.run(&ctx).unwrap())
        });
    }
    for threads in [2usize, 4, 8] {
        for (name, strategy) in [
            ("parallel_base", ExecStrategy::ChunkBase),
            ("parallel_detail_merge", ExecStrategy::ChunkDetail),
            ("morsel", ExecStrategy::Morsel),
        ] {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |bch, &t| {
                let j = join.clone().strategy(strategy).threads(t);
                bch.iter(|| j.run(&ctx).unwrap())
            });
        }
    }
    group.finish();

    // ------------------------------------------------------------------
    // Scheduling ablation: static chunks vs work-stealing morsels on
    // Zipf(1.1) customers with the detail table clustered by customer.
    //
    // The base is every (cust, prod) pair and θ joins on cust alone — the
    // Example 2.1 "share of customer total" denominator, where each sale
    // must update the running total of *every* product row of its customer.
    // A hot Zipf customer has bought hundreds of distinct products, so each
    // of its (contiguous, thanks to clustering) sale tuples fans out into
    // hundreds of aggregate updates, while a tail customer's tuple updates
    // one or two. Static chunking hands the hot run to a single worker and
    // the others idle; morsel stealing rebalances it.
    //
    // Wall clock only separates the schedulers on a multi-core host; the
    // `repro` binary's E5b table reports the same ablation in
    // machine-independent units (max per-worker updates from WorkerStats).
    // ------------------------------------------------------------------
    let mut group = c.benchmark_group("e5_morsel_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let r = bench_sales_zipf(60_000, 20_000, 500, 1.1);
    let b = r.distinct_on(&["cust", "prod"]).unwrap();
    let fanout = MdJoin::new(&b, &r)
        .aggs(&[
            AggSpec::on_column("sum", "sale").with_alias("cust_total"),
            AggSpec::count_star().with_alias("cust_rows"),
        ])
        .theta(eq(col_b("cust"), col_r("cust")));
    let threads = 8usize;

    group.bench_function("static_chunk_8t", |bch| {
        let j = fanout
            .clone()
            .strategy(ExecStrategy::ChunkDetail)
            .threads(threads);
        bch.iter(|| j.run(&ctx).unwrap())
    });
    for morsel_rows in [1_024usize, 4_096] {
        let mctx = ExecContext::new().with_morsel_size(morsel_rows);
        group.bench_with_input(
            BenchmarkId::new("morsel_8t", morsel_rows),
            &morsel_rows,
            |bch, _| {
                let j = fanout
                    .clone()
                    .strategy(ExecStrategy::MorselDetail)
                    .threads(threads);
                bch.iter(|| j.run(&mctx).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
