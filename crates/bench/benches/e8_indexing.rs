//! E8 (Section 4.5): nested-loop Algorithm 3.1 vs Rel(t) hash probing as the
//! base table grows.
//!
//! Expected shape: nested loop degrades linearly in |B| (every detail tuple
//! examines all of B); the hash probe stays flat. The crossover sits at very
//! small |B|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_bench::bench_sales;
use mdj_bench::serial_md_join;
use mdj_core::{ExecContext, ProbeStrategy};
use mdj_expr::builder::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_indexing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let r = bench_sales(10_000, 5_000);
    let l = [AggSpec::on_column("sum", "sale")];
    let theta = and(
        eq(col_b("cust"), col_r("cust")),
        eq(col_b("month"), col_r("month")),
    );
    for b_rows in [16usize, 128, 1024] {
        let b_full = r.distinct_on(&["cust", "month"]).unwrap();
        let b = mdj_storage::Relation::from_rows(
            b_full.schema().clone(),
            b_full.rows().iter().take(b_rows).cloned().collect(),
        );
        let nl = ExecContext::new().with_strategy(ProbeStrategy::NestedLoop);
        let hp = ExecContext::new().with_strategy(ProbeStrategy::HashProbe);
        group.bench_with_input(BenchmarkId::new("nested_loop", b.len()), &b, |bch, b| {
            bch.iter(|| serial_md_join(b, &r, &l, &theta, &nl).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hash_probe", b.len()), &b, |bch, b| {
            bch.iter(|| serial_md_join(b, &r, &l, &theta, &hp).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
