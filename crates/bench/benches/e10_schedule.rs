//! E10 (Theorem 4.3): the O(k²) series-coalescing scheduler and the executed
//! cost of scheduled vs unscheduled chains.
//!
//! Expected shape: scheduling itself is microseconds even at k=16; executing
//! the coalesced plan beats the k-scan chain roughly in proportion to the
//! number of fused stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdj_agg::AggSpec;
use mdj_algebra::rules::coalesce_chains;
use mdj_algebra::{execute, Plan};
use mdj_bench::{bench_sales, ctx};
use mdj_expr::builder::*;
use mdj_storage::Catalog;

/// A k-stage chain; stage i depends on stage i-2 when `dependent` is set
/// (so roughly half the stages fuse).
fn chain(k: usize, dependent: bool) -> Plan {
    let mut plan = Plan::table("Sales").group_by_base(&["cust"]);
    for i in 0..k {
        let theta = if dependent && i >= 2 {
            and_all([
                eq(col_b("cust"), col_r("cust")),
                eq(col_r("month"), lit((i % 12 + 1) as i64)),
                gt(col_b(format!("c{}", i - 2)), lit(-1i64)),
            ])
        } else {
            and(
                eq(col_b("cust"), col_r("cust")),
                eq(col_r("month"), lit((i % 12 + 1) as i64)),
            )
        };
        plan = plan.md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star().with_alias(format!("c{i}"))],
            theta,
        );
    }
    plan
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_schedule");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ctx = ctx();
    let mut catalog = Catalog::new();
    catalog.register("Sales", bench_sales(20_000, 500));

    for k in [2usize, 4, 8, 16] {
        let independent = chain(k, false);
        group.bench_with_input(
            BenchmarkId::new("schedule_only", k),
            &independent,
            |bch, p| bch.iter(|| coalesce_chains(p.clone())),
        );
        group.bench_with_input(BenchmarkId::new("exec_chain", k), &independent, |bch, p| {
            bch.iter(|| execute(p, &catalog, &ctx).unwrap())
        });
        let coalesced = coalesce_chains(independent.clone());
        group.bench_with_input(
            BenchmarkId::new("exec_coalesced", k),
            &coalesced,
            |bch, p| bch.iter(|| execute(p, &catalog, &ctx).unwrap()),
        );
        let dependent = coalesce_chains(chain(k, true));
        group.bench_with_input(
            BenchmarkId::new("exec_coalesced_dependent", k),
            &dependent,
            |bch, p| bch.iter(|| execute(p, &catalog, &ctx).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
