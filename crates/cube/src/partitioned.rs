//! The Ross–Srivastava partitioned cube \[RS96\] in MD-join algebra
//! (Section 4.4's closing derivation).
//!
//! When the detail table exceeds memory, pick a partition dimension `Dᵢ` and
//! split `R` on its values. The paper shows the algebra:
//!
//! ```text
//! MD(B, R, l, θ) = ⋃_z MD(σ_{Dᵢ=z}(B), R, l, θ)            (Thm 4.1)
//!               = ⋃_z MD(σ_{Dᵢ=z}(B), σ_{R.Dᵢ=z}(R), l, θ)  (Obs 4.1)
//! ```
//!
//! Each fragment — the subcube over the remaining dimensions for one value
//! `z` — is computed in memory; the cuboids with `Dᵢ = ALL` roll up from the
//! per-value results via Theorem 4.5.

use crate::common::{serial_md_join, CubeSpec};
use mdj_agg::rollup::rollup_specs;
use mdj_core::basevalues::{cuboid_theta, group_by};
use mdj_core::{ExecContext, Result};
use mdj_storage::{partition, Relation, Row, Schema};

/// Compute the cube by partitioning the detail table on `spec.dims[part_dim]`.
/// Requires distributive aggregates (the `ALL`-side rolls up via `l'`).
pub fn cube_partitioned(
    r: &Relation,
    spec: &CubeSpec,
    part_dim: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    assert!(
        part_dim < spec.dims.len(),
        "partition dimension out of range"
    );
    let schema = spec.output_schema(r, ctx.registry())?;
    let rolled = rollup_specs(&spec.aggs, ctx.registry())?;
    let part_name = spec.dims[part_dim].clone();
    let rest_dims: Vec<&str> = spec
        .dims
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != part_dim)
        .map(|(_, d)| d.as_str())
        .collect();
    let rest_spec = CubeSpec::new(&rest_dims, spec.aggs.clone());
    let rest_schema_cols = rest_dims.len();

    // σ_{R.Dᵢ=z}(R) for every value z (Observation 4.1 applied to the data).
    let parts = partition::by_distinct_values(r, &part_name)?;

    // Per-value subcubes over the remaining dims, each fully in memory.
    // Accumulate rows of the (Dᵢ = concrete) half of the cube, and keep the
    // per-value subcube rows for the roll-up below: (z, rest-cube-row) with
    // *rest* dims possibly ALL.
    let mut with_value = Relation::empty(schema.clone());
    let mut union_sub = {
        let mut fields = vec![mdj_storage::Field::new(
            part_name.clone(),
            mdj_storage::DataType::Any,
        )];
        fields.extend(
            rest_spec
                .output_schema(r, ctx.registry())?
                .fields()
                .iter()
                .cloned(),
        );
        Relation::empty(Schema::new(fields))
    };
    for (z, slice) in &parts {
        let sub = crate::rollup_chain::cube_rollup_chain(slice, &rest_spec, ctx)?;
        for row in sub.iter() {
            // Prefix the partition value.
            let mut vals = Vec::with_capacity(row.len() + 1);
            vals.push(z.clone());
            vals.extend(row.values().iter().cloned());
            union_sub.push_unchecked(Row::new(vals));
        }
    }
    // The (Dᵢ = z) half: reshape union_sub into the full dim order.
    for row in union_sub.iter() {
        let mut vals = Vec::with_capacity(schema.len());
        // Dims in spec order: part dim from col 0, rest from cols 1..
        let mut rest_iter = 0usize;
        for (i, _) in spec.dims.iter().enumerate() {
            if i == part_dim {
                vals.push(row[0].clone());
            } else {
                vals.push(row[1 + rest_iter].clone());
                rest_iter += 1;
            }
        }
        vals.extend(row.values()[1 + rest_schema_cols..].iter().cloned());
        with_value.push_unchecked(Row::new(vals));
    }

    // The (Dᵢ = ALL) half: roll union_sub up over the partition dimension.
    // For every rest-mask cuboid the rows live in union_sub already; group by
    // the rest dims (ALL markers group like ordinary values) and apply l'.
    let rest_names: Vec<&str> = rest_dims.clone();
    let b = group_by(&union_sub, &rest_names)?;
    let rolled_up = serial_md_join(&b, &union_sub, &rolled, &cuboid_theta(&rest_names), ctx)?;
    let mut all_side = Relation::empty(schema.clone());
    for row in rolled_up.iter() {
        let mut vals = Vec::with_capacity(schema.len());
        let mut rest_iter = 0usize;
        for (i, _) in spec.dims.iter().enumerate() {
            if i == part_dim {
                vals.push(mdj_storage::Value::All);
            } else {
                vals.push(row[rest_iter].clone());
                rest_iter += 1;
            }
        }
        vals.extend(row.values()[rest_schema_cols..].iter().cloned());
        all_side.push_unchecked(Row::new(vals));
    }

    with_value.union(&all_side).map_err(Into::into)
}

/// Choose the partition dimension with the most distinct values (the
/// heuristic \[RS96\] suggests: more partitions ⇒ smaller in-memory subcubes).
pub fn choose_partition_dim(r: &Relation, spec: &CubeSpec) -> Result<usize> {
    let mut best = 0usize;
    let mut best_card = 0usize;
    for (i, d) in spec.dims.iter().enumerate() {
        let card = r.distinct_on(&[d.as_str()])?.len();
        if card > best_card {
            best = i;
            best_card = card;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::cube_per_cuboid;
    use mdj_agg::AggSpec;
    use mdj_storage::{DataType, Value};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let mk = |p: i64, m: i64, st: &str, s: f64| {
            Row::from_values(vec![
                Value::Int(p),
                Value::Int(m),
                Value::str(st),
                Value::Float(s),
            ])
        };
        Relation::from_rows(
            schema,
            vec![
                mk(1, 1, "NY", 1.0),
                mk(1, 2, "NY", 2.0),
                mk(2, 1, "CA", 4.0),
                mk(2, 1, "NY", 8.0),
                mk(2, 2, "CA", 16.0),
                mk(3, 3, "NJ", 32.0),
            ],
        )
    }

    fn spec() -> CubeSpec {
        CubeSpec::new(
            &["prod", "month", "state"],
            vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
        )
    }

    #[test]
    fn partitioned_matches_baseline_any_dimension() {
        let r = rel();
        let ctx = ExecContext::new();
        let baseline = cube_per_cuboid(&r, &spec(), &ctx).unwrap();
        for dim in 0..3 {
            let out = cube_partitioned(&r, &spec(), dim, &ctx).unwrap();
            assert!(
                baseline.same_multiset(&out),
                "partition dim {dim}:\n{baseline}\nvs\n{out}"
            );
        }
    }

    #[test]
    fn choose_partition_dim_picks_widest() {
        let r = rel();
        // prods: 3 distinct, months: 3, states: 3 — tie; first wins. Make
        // prod clearly widest:
        let dim = choose_partition_dim(&r, &spec()).unwrap();
        assert_eq!(dim, 0);
    }

    #[test]
    fn single_value_partition_dimension() {
        // Degenerate: partition dim has one value → one in-memory subcube.
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
        ]);
        let r = Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Int(1), Value::Float(1.0)]),
                Row::from_values(vec![Value::Int(1), Value::Int(2), Value::Float(2.0)]),
            ],
        );
        let sp = CubeSpec::new(&["prod", "month"], vec![AggSpec::on_column("sum", "sale")]);
        let ctx = ExecContext::new();
        let a = cube_partitioned(&r, &sp, 0, &ctx).unwrap();
        let b = cube_per_cuboid(&r, &sp, &ctx).unwrap();
        assert!(a.same_multiset(&b));
    }
}
