//! # mdj-cube
//!
//! Data-cube computation expressed through the MD-join algebra (Section 4.4).
//!
//! The paper's Theorem 4.5 (roll-up: a coarser cuboid is an MD-join over a
//! finer cuboid with adapted aggregates `l'`) together with Theorem 4.1
//! (partitioning) and Theorem 4.2 / Observation 4.1 (pushdown) algebraically
//! express the classic efficient cube algorithms — PIPESORT of \[AAD+96\] and
//! the partitioned cube of Ross–Srivastava \[RS96\]. This crate implements:
//!
//! * [`naive`] — two baselines: a single MD-join against the whole cube base
//!   table with the `ALL`-wildcard θ (the direct reading of Example 2.1), and
//!   the per-cuboid expansion via Theorem 4.1 (Example 4.2's first step).
//! * [`rollup_chain`] — greedy smallest-parent roll-up: every cuboid is
//!   computed from its cheapest already-computed parent via Theorem 4.5.
//! * [`pipesort`] — pipelined paths over sort orders (Figure 2): one sort per
//!   path, all cuboids on a path computed in a single pass.
//! * [`partitioned`] — the Ross–Srivastava partitioned cube: partition the
//!   detail table on one dimension's values (Theorem 4.1 + Observation 4.1),
//!   build each in-memory subcube, and roll the partitions up.
//!
//! All four produce identical relations (verified by tests and the E1/E9
//! benches); they differ in scans, sorts, and memory — which is the paper's
//! point: the *algebra* exposes these alternatives to a cost-based optimizer.

pub mod common;
pub mod holistic_cube;
pub mod lattice;
pub mod naive;
pub mod partitioned;
pub mod pipesort;
pub mod rollup_chain;
pub mod sets;

pub use common::CubeSpec;
pub use lattice::Lattice;
