//! Cubes over holistic aggregates (footnote 2 of the paper).
//!
//! Theorem 4.5's roll-up requires distributive aggregates, so a cube of
//! `median(sale)` or `mode(prod)` cannot reuse finer cuboids — every cuboid
//! must aggregate the detail table. Two strategies are provided:
//!
//! * [`cube_holistic`] — exact: the per-cuboid expansion (Theorem 4.1 +
//!   hash probing), one pass over `R` per cuboid, holistic state per cell.
//! * [`approximate_spec`] — the paper's suggested escape hatch: "some
//!   holistic aggregates can be made algebraic by using approximation, e.g.
//!   approximate medians \[MRL98\]". Swapping `median` for `approx_median`
//!   bounds every cell's state; the result is then roll-up-*evaluable* per
//!   cuboid with bounded memory (though still not mergeable across cuboids).

use crate::common::{pad_cuboid, serial_md_join, CubeSpec};
use mdj_agg::{AggClass, AggSpec, Registry};
use mdj_core::basevalues::{cuboid_theta, group_by};
use mdj_core::{ExecContext, Result};
use mdj_storage::Relation;

/// True if any aggregate in the spec is holistic (unbounded state).
pub fn has_holistic(spec: &CubeSpec, registry: &Registry) -> bool {
    spec.aggs.iter().any(|s| {
        registry
            .get(&s.function)
            .map(|a| a.class() == AggClass::Holistic)
            .unwrap_or(false)
    })
}

/// Exact holistic cube: per-cuboid MD-joins straight from the detail table.
/// Works for *any* aggregate mix (the generic fallback the optimizer uses
/// when Theorem 4.5 does not apply).
pub fn cube_holistic(r: &Relation, spec: &CubeSpec, ctx: &ExecContext) -> Result<Relation> {
    let lattice = spec.lattice();
    let schema = spec.output_schema(r, ctx.registry())?;
    let mut out = Relation::empty(schema.clone());
    for mask in lattice.masks_fine_to_coarse() {
        let kept = spec.kept(mask);
        let b = group_by(r, &kept)?;
        let cuboid = serial_md_join(&b, r, &spec.aggs, &cuboid_theta(&kept), ctx)?;
        out = out.union(&pad_cuboid(&cuboid, spec, mask, &schema))?;
    }
    Ok(out)
}

/// Rewrite a spec's exact medians into bounded-state approximate medians
/// (the \[MRL98\] substitution the paper cites). Other aggregates pass through.
pub fn approximate_spec(spec: &CubeSpec) -> CubeSpec {
    let aggs = spec
        .aggs
        .iter()
        .map(|s| {
            if s.function == "median" {
                let mut out = AggSpec::new("approx_median", s.input.clone());
                out.alias = Some(s.output_name());
                out
            } else {
                s.clone()
            }
        })
        .collect();
    CubeSpec {
        dims: spec.dims.clone(),
        aggs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_storage::{DataType, Row, Schema, Value};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Int),
        ]);
        let mk = |p: i64, st: &str, s: i64| {
            Row::from_values(vec![Value::Int(p), Value::str(st), Value::Int(s)])
        };
        Relation::from_rows(
            schema,
            vec![
                mk(1, "NY", 10),
                mk(1, "NY", 20),
                mk(1, "CA", 30),
                mk(2, "NY", 40),
                mk(2, "CA", 50),
                mk(2, "CA", 60),
                mk(2, "CA", 70),
            ],
        )
    }

    fn spec() -> CubeSpec {
        CubeSpec::new(
            &["prod", "state"],
            vec![
                AggSpec::on_column("median", "sale"),
                AggSpec::on_column("mode", "sale"),
                AggSpec::on_column("count_distinct", "sale"),
            ],
        )
    }

    #[test]
    fn holistic_cube_cells_are_exact() {
        let ctx = ExecContext::new();
        let out = cube_holistic(&rel(), &spec(), &ctx).unwrap();
        // Apex: median of {10..70} = 40; mode ties → smallest = 10;
        // 7 distinct values.
        let apex = out.iter().find(|r| r[0].is_all() && r[1].is_all()).unwrap();
        assert_eq!(apex[2], Value::Float(40.0));
        assert_eq!(apex[3], Value::Int(10));
        assert_eq!(apex[4], Value::Int(7));
        // Cell (2, CA): {50, 60, 70} → median 60.
        let cell = out
            .iter()
            .find(|r| r[0] == Value::Int(2) && r[1] == Value::str("CA"))
            .unwrap();
        assert_eq!(cell[2], Value::Float(60.0));
        assert_eq!(cell[4], Value::Int(3));
    }

    #[test]
    fn rollup_chain_rejects_holistic_but_fallback_succeeds() {
        let ctx = ExecContext::new();
        assert!(has_holistic(&spec(), ctx.registry()));
        assert!(crate::rollup_chain::cube_rollup_chain(&rel(), &spec(), &ctx).is_err());
        assert!(cube_holistic(&rel(), &spec(), &ctx).is_ok());
    }

    #[test]
    fn approximate_substitution_bounds_state_and_stays_close() {
        let ctx = ExecContext::new();
        let exact = cube_holistic(&rel(), &spec(), &ctx).unwrap();
        let approx = cube_holistic(&rel(), &approximate_spec(&spec()), &ctx).unwrap();
        assert!(!has_holistic(
            &CubeSpec::new(
                &["prod", "state"],
                vec![AggSpec::on_column("approx_median", "sale")]
            ),
            ctx.registry()
        ));
        // Same schema (aliases preserved), same cells; medians agree exactly
        // at this size (the reservoir never fills).
        assert_eq!(exact.schema().names(), approx.schema().names());
        assert!(exact.same_multiset(&approx));
    }

    #[test]
    fn holistic_cube_matches_distributive_path_on_shared_aggregates() {
        // For a purely distributive spec, the holistic fallback and the
        // roll-up chain must agree.
        let ctx = ExecContext::new();
        let dspec = CubeSpec::new(
            &["prod", "state"],
            vec![AggSpec::count_star(), AggSpec::on_column("sum", "sale")],
        );
        let a = cube_holistic(&rel(), &dspec, &ctx).unwrap();
        let b = crate::rollup_chain::cube_rollup_chain(&rel(), &dspec, &ctx).unwrap();
        assert!(a.same_multiset(&b));
    }
}
