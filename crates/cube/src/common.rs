//! Shared cube machinery: the cube specification, cuboid padding, and sorted
//! single-pass aggregation.

use crate::lattice::{Lattice, Mask};
use mdj_agg::{AggInput, AggSpec, AggState, Registry};
use mdj_core::{ExecContext, ExecStrategy, MdJoin, Result};
use mdj_expr::Expr;
use mdj_storage::{DataType, Field, Relation, Row, Schema, Value};

/// One single-threaded MD-join via the [`MdJoin`] builder. The cube
/// algorithms schedule their own evaluation order (and any parallelism)
/// across cuboids, so each per-cuboid join stays single-threaded — but it
/// runs the *vectorized* evaluator (`threads(1)` pins it to one core): a
/// cuboid's θ is pure equality over the kept dimensions, which the batch
/// layer covers end to end, and shapes it cannot cover (e.g. the naive
/// cube-match θ with `ALL` wildcards) fall back per batch with output
/// identical to the serial interpreter by construction.
pub(crate) fn serial_md_join(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Vectorized)
        .threads(1)
        .run(ctx)
}

/// What cube to compute: the dimension columns and the aggregate list `l`.
#[derive(Debug, Clone)]
pub struct CubeSpec {
    pub dims: Vec<String>,
    pub aggs: Vec<AggSpec>,
}

impl CubeSpec {
    pub fn new(dims: &[&str], aggs: Vec<AggSpec>) -> Self {
        CubeSpec {
            dims: dims.iter().map(|s| s.to_string()).collect(),
            aggs,
        }
    }

    pub fn lattice(&self) -> Lattice {
        Lattice::new(self.dims.len())
    }

    /// Kept dimension names for a mask.
    pub fn kept(&self, mask: Mask) -> Vec<&str> {
        self.lattice()
            .kept_dims(mask)
            .into_iter()
            .map(|i| self.dims[i].as_str())
            .collect()
    }

    /// The full output schema: every dimension (type `Any`, as cells hold
    /// `ALL`) followed by the aggregate output columns typed against `r`.
    pub fn output_schema(&self, r: &Relation, registry: &Registry) -> Result<Schema> {
        let mut fields: Vec<Field> = Vec::with_capacity(self.dims.len() + self.aggs.len());
        for d in &self.dims {
            let i = r.schema().index_of(d)?;
            fields.push(Field::new(d.clone(), r.schema().field(i).dtype));
        }
        for spec in &self.aggs {
            let agg = registry.get(&spec.function)?;
            let input_type = match &spec.input {
                AggInput::Star => DataType::Int,
                AggInput::Column(c) => {
                    let i = r.schema().index_of(c)?;
                    r.schema().field(i).dtype
                }
            };
            fields.push(Field::new(spec.output_name(), agg.output_type(input_type)));
        }
        Ok(Schema::new(fields))
    }
}

/// Reshape a cuboid relation `(kept dims…, aggs…)` to the full
/// `(dims…, aggs…)` schema, inserting `ALL` for rolled-up dimensions.
pub fn pad_cuboid(cuboid: &Relation, spec: &CubeSpec, mask: Mask, schema: &Schema) -> Relation {
    let kept = spec.kept(mask);
    let mut out = Relation::empty(schema.clone());
    for row in cuboid.iter() {
        let mut vals = Vec::with_capacity(schema.len());
        for d in &spec.dims {
            match kept.iter().position(|k| k == d) {
                Some(i) => vals.push(row[i].clone()),
                None => vals.push(Value::All),
            }
        }
        vals.extend(row.values()[kept.len()..].iter().cloned());
        out.push_unchecked(Row::new(vals));
    }
    out
}

/// Single-pass aggregation over a relation **sorted by `key_cols`**: emit one
/// row per key run. This is the pipelined evaluator PIPESORT relies on ("a
/// more efficient algorithm is possible because the detail relation is
/// provided in sorted order" — Section 4.4).
pub fn sorted_group_agg(
    sorted: &Relation,
    key_cols: &[usize],
    specs: &[AggSpec],
    registry: &Registry,
) -> Result<Relation> {
    let mut bound: Vec<(mdj_agg::traits::AggRef, Option<usize>, Field)> = Vec::new();
    for spec in specs {
        let agg = registry.get(&spec.function)?;
        let (col, input_type) = match &spec.input {
            AggInput::Star => (None, DataType::Int),
            AggInput::Column(c) => {
                let i = sorted.schema().index_of(c)?;
                (Some(i), sorted.schema().field(i).dtype)
            }
        };
        bound.push((
            agg.clone(),
            col,
            Field::new(spec.output_name(), agg.output_type(input_type)),
        ));
    }
    let mut fields: Vec<Field> = key_cols
        .iter()
        .map(|&i| sorted.schema().field(i).clone())
        .collect();
    fields.extend(bound.iter().map(|(_, _, f)| f.clone()));
    let mut out = Relation::empty(Schema::new(fields));

    let mut current_key: Option<Vec<Value>> = None;
    let mut states: Vec<Box<dyn AggState>> = Vec::new();
    let flush = |key: &[Value], states: &[Box<dyn AggState>], out: &mut Relation| {
        let mut vals = key.to_vec();
        vals.extend(states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    };
    for row in sorted.iter() {
        let key = row.key(key_cols);
        if current_key.as_deref() != Some(&key[..]) {
            if let Some(k) = current_key.take() {
                flush(&k, &states, &mut out);
            }
            states = bound.iter().map(|(agg, _, _)| agg.init()).collect();
            current_key = Some(key);
        }
        for (j, (_, col, _)) in bound.iter().enumerate() {
            let v = match col {
                Some(c) => &row[*c],
                None => &Value::Null,
            };
            states[j].update(v)?;
        }
    }
    if let Some(k) = current_key {
        flush(&k, &states, &mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(1.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(2.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("CA"), Value::Float(4.0)]),
            ],
        )
    }

    fn spec() -> CubeSpec {
        CubeSpec::new(
            &["prod", "state"],
            vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
        )
    }

    #[test]
    fn output_schema_types() {
        let s = spec().output_schema(&rel(), &Registry::standard()).unwrap();
        assert_eq!(s.names(), vec!["prod", "state", "sum_sale", "count_star"]);
        assert_eq!(s.field(0).dtype, DataType::Int);
        assert_eq!(s.field(2).dtype, DataType::Float);
        assert_eq!(s.field(3).dtype, DataType::Int);
    }

    #[test]
    fn kept_names_follow_mask_bits() {
        let sp = spec();
        assert_eq!(sp.kept(0b01), vec!["prod"]);
        assert_eq!(sp.kept(0b10), vec!["state"]);
        assert_eq!(sp.kept(0b11), vec!["prod", "state"]);
        assert!(sp.kept(0).is_empty());
    }

    #[test]
    fn pad_inserts_all() {
        let sp = spec();
        let reg = Registry::standard();
        let schema = sp.output_schema(&rel(), &reg).unwrap();
        // A (state)-only cuboid: schema (state, sum_sale, count_star).
        let cuboid = Relation::from_rows(
            Schema::from_pairs(&[
                ("state", DataType::Str),
                ("sum_sale", DataType::Float),
                ("count_star", DataType::Int),
            ]),
            vec![Row::from_values(vec![
                Value::str("NY"),
                Value::Float(3.0),
                Value::Int(2),
            ])],
        );
        let padded = pad_cuboid(&cuboid, &sp, 0b10, &schema);
        assert_eq!(padded.rows()[0][0], Value::All);
        assert_eq!(padded.rows()[0][1], Value::str("NY"));
        assert_eq!(padded.rows()[0][2], Value::Float(3.0));
    }

    #[test]
    fn sorted_group_agg_one_pass() {
        let mut r = rel();
        r.sort_by(&["prod", "state"]).unwrap();
        let out = sorted_group_agg(
            &r,
            &[0, 1],
            &[AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let p1 = out.rows().iter().find(|x| x[0] == Value::Int(1)).unwrap();
        assert_eq!(p1[2], Value::Float(3.0));
        assert_eq!(p1[3], Value::Int(2));
    }

    #[test]
    fn sorted_group_agg_empty_keys_is_grand_total() {
        let r = rel();
        let out = sorted_group_agg(
            &r,
            &[],
            &[AggSpec::on_column("sum", "sale")],
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Float(7.0));
    }

    #[test]
    fn sorted_group_agg_empty_input() {
        let r = Relation::empty(rel().schema().clone());
        let out =
            sorted_group_agg(&r, &[0], &[AggSpec::count_star()], &Registry::standard()).unwrap();
        assert!(out.is_empty());
    }
}
