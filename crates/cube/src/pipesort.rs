//! PIPESORT-style pipelined cube computation (Figure 2, \[AAD+96\]).
//!
//! The lattice is covered by *pipelines*: each pipeline fixes a sort order of
//! the dimensions and computes every cuboid that is a prefix of that order in
//! **one pass** over the sorted data (prefix group boundaries nest). Moving
//! between pipelines costs a sort — the dashed "resort" edges of Figure 2.
//! In the paper's algebra each pipeline is the Theorem 4.5 chain
//! `MD(π_X, MD(π_{XY}, R, l, θ), l', θ)` annotated with "the detail relation
//! is provided in sorted order", and pipeline construction is plan selection
//! over those annotated expressions.
//!
//! The pipeline set is built greedily: repeatedly take the widest uncovered
//! cuboid, extend its dimension list to a full sort order, and claim every
//! uncovered prefix. For 2 dimensions this reproduces Figure 2 exactly:
//! pipeline `AB → A → ∅` plus a resort pipeline for `B`.

use crate::common::{pad_cuboid, serial_md_join, sorted_group_agg, CubeSpec};
use crate::lattice::Mask;
use mdj_agg::rollup::rollup_specs;
use mdj_core::basevalues::{cuboid_theta, group_by};
use mdj_core::{ExecContext, Result};
use mdj_storage::Relation;

/// One pipelined path: a dimension order plus the prefix lengths (cuboids)
/// this pipeline emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Dimension indices (into `spec.dims`) in sort order.
    pub order: Vec<usize>,
    /// Prefix lengths emitted, descending. Length `k` means the cuboid over
    /// `order[..k]`.
    pub prefixes: Vec<usize>,
}

impl Pipeline {
    /// The mask of the prefix of length `k`.
    pub fn prefix_mask(&self, k: usize) -> Mask {
        self.order[..k].iter().fold(0, |m, &d| m | (1 << d))
    }
}

/// Greedily cover the lattice with pipelines.
pub fn build_pipelines(spec: &CubeSpec) -> Vec<Pipeline> {
    let lattice = spec.lattice();
    let n = lattice.dims();
    let mut uncovered: Vec<Mask> = lattice.masks_fine_to_coarse();
    let mut pipelines = Vec::new();
    while let Some(&seed) = uncovered.first() {
        // Order: the seed's dims (ascending), then the rest.
        let mut order: Vec<usize> = lattice.kept_dims(seed);
        for d in 0..n {
            if !order.contains(&d) {
                order.push(d);
            }
        }
        let pipeline_masks: Vec<(usize, Mask)> = (0..=n)
            .map(|k| (k, order[..k].iter().fold(0, |m, &d| m | (1 << d))))
            .collect();
        let mut prefixes: Vec<usize> = pipeline_masks
            .iter()
            .filter(|(_, m)| uncovered.contains(m))
            .map(|(k, _)| *k)
            .collect();
        prefixes.sort_by(|a, b| b.cmp(a));
        uncovered.retain(|m| {
            !pipeline_masks
                .iter()
                .any(|(k, pm)| pm == m && prefixes.contains(k))
        });
        pipelines.push(Pipeline { order, prefixes });
    }
    pipelines
}

/// Number of sorts the pipeline set implies (one per pipeline; Figure 2's
/// dashed edges plus the initial sort).
pub fn sort_count(pipelines: &[Pipeline]) -> usize {
    pipelines.len()
}

/// Compute the cube via pipelined sorts. Requires distributive aggregates
/// (each pipeline below the finest cuboid rolls up via Theorem 4.5's `l'`).
pub fn cube_pipesort(r: &Relation, spec: &CubeSpec, ctx: &ExecContext) -> Result<Relation> {
    let lattice = spec.lattice();
    let schema = spec.output_schema(r, ctx.registry())?;
    let rolled = rollup_specs(&spec.aggs, ctx.registry())?;
    let pipelines = build_pipelines(spec);

    // Finest cuboid once, from the detail table (hash-probed MD-join).
    let full_kept = spec.kept(lattice.full());
    let base_b = group_by(r, &full_kept)?;
    let base = serial_md_join(&base_b, r, &spec.aggs, &cuboid_theta(&full_kept), ctx)?;

    let mut out = Relation::empty(schema.clone());
    for pipeline in &pipelines {
        // One (re)sort per pipeline.
        let mut sorted = base.clone();
        let order_names: Vec<&str> = pipeline
            .order
            .iter()
            .map(|&d| spec.dims[d].as_str())
            .collect();
        sorted.sort_by(&order_names)?;
        // One pass per emitted prefix (each pass is sequential over the
        // already-sorted data; no re-sort).
        for &k in &pipeline.prefixes {
            let mask = pipeline.prefix_mask(k);
            let cuboid = if mask == lattice.full() {
                base.clone()
            } else {
                let key_cols: Vec<usize> = order_names[..k]
                    .iter()
                    .map(|n| sorted.schema().index_of(n))
                    .collect::<std::result::Result<_, _>>()?;
                let in_pipeline_order =
                    sorted_group_agg(&sorted, &key_cols, &rolled, ctx.registry())?;
                // Reorder key columns to the canonical ascending-dim order.
                let mut names: Vec<String> =
                    spec.kept(mask).iter().map(|s| s.to_string()).collect();
                names.extend(rolled.iter().map(|s| s.output_name()));
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                in_pipeline_order.project(&name_refs)?
            };
            out = out.union(&pad_cuboid(&cuboid, spec, mask, &schema))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::cube_per_cuboid;
    use mdj_agg::AggSpec;
    use mdj_storage::{DataType, Row, Schema};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("m", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            (0..30)
                .map(|i| Row::from_values([i % 3, i % 4, i % 5, i]))
                .collect(),
        )
    }

    fn spec3() -> CubeSpec {
        CubeSpec::new(
            &["a", "b", "c"],
            vec![AggSpec::on_column("sum", "m"), AggSpec::count_star()],
        )
    }

    #[test]
    fn figure_2_two_dim_pipelines() {
        let sp = CubeSpec::new(&["a", "b"], vec![AggSpec::on_column("sum", "m")]);
        let pipelines = build_pipelines(&sp);
        // Pipeline 1: AB → A → ∅ (order [a, b], prefixes [2, 1, 0]).
        // Pipeline 2: resort for B (order [b, a], prefixes [1]).
        assert_eq!(pipelines.len(), 2);
        assert_eq!(pipelines[0].order, vec![0, 1]);
        assert_eq!(pipelines[0].prefixes, vec![2, 1, 0]);
        assert_eq!(pipelines[1].order, vec![1, 0]);
        assert_eq!(pipelines[1].prefixes, vec![1]);
        assert_eq!(sort_count(&pipelines), 2);
    }

    #[test]
    fn pipelines_cover_the_lattice_exactly_once() {
        for dims in 1..=4usize {
            let names: Vec<String> = (0..dims).map(|i| format!("d{i}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let sp = CubeSpec::new(&refs, vec![AggSpec::count_star()]);
            let pipelines = build_pipelines(&sp);
            let mut seen = std::collections::HashSet::new();
            for p in &pipelines {
                for &k in &p.prefixes {
                    assert!(seen.insert(p.prefix_mask(k)), "mask emitted twice");
                }
            }
            assert_eq!(seen.len(), 1 << dims, "dims={dims}");
        }
    }

    #[test]
    fn pipesort_matches_baseline() {
        let r = rel();
        let ctx = ExecContext::new();
        let a = cube_pipesort(&r, &spec3(), &ctx).unwrap();
        let b = cube_per_cuboid(&r, &spec3(), &ctx).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn fewer_sorts_than_cuboids() {
        // The whole point: 2^n cuboids, far fewer sorts.
        let sp = spec3();
        let pipelines = build_pipelines(&sp);
        assert!(sort_count(&pipelines) < sp.lattice().cuboid_count());
        // For n=3 the greedy cover needs 3 pipelines ((abc,ab,a,∅), (b,bc),
        // (c,ac)) or similar ≤ C(3,1)+1 shapes.
        assert!(sort_count(&pipelines) <= 4);
    }

    #[test]
    fn non_distributive_rejected() {
        let r = rel();
        let ctx = ExecContext::new();
        let sp = CubeSpec::new(&["a", "b"], vec![AggSpec::on_column("median", "m")]);
        assert!(cube_pipesort(&r, &sp, &ctx).is_err());
    }
}
