//! Baseline cube computations.
//!
//! Two shapes, both straight from the paper:
//!
//! * [`cube_via_wildcard_theta`] — one MD-join of the detail table against
//!   the *whole* cube base table, with the `ALL`-wildcard θ. Semantically the
//!   most direct reading of Example 2.1, but the OR-form θ defeats hash
//!   probing, so every detail tuple examines 2ⁿ-ish base rows.
//! * [`cube_per_cuboid`] — Example 4.2's first expansion: Theorem 4.1 splits
//!   the base table per cuboid, and each cuboid's θ is a plain conjunctive
//!   equality (hash-probe friendly). `2ⁿ` scans of the detail table.

use crate::common::{pad_cuboid, serial_md_join, CubeSpec};
use mdj_core::basevalues::{cube, cube_match_theta, cuboid_theta, group_by};
use mdj_core::{ExecContext, Result};
use mdj_storage::Relation;

/// One MD-join over the merged cube base table (wildcard θ, nested-loop
/// probing).
pub fn cube_via_wildcard_theta(
    r: &Relation,
    spec: &CubeSpec,
    ctx: &ExecContext,
) -> Result<Relation> {
    let dims: Vec<&str> = spec.dims.iter().map(String::as_str).collect();
    let b = cube(r, &dims)?;
    serial_md_join(&b, r, &spec.aggs, &cube_match_theta(&dims), ctx)
}

/// Theorem 4.1 expansion: one hash-probed MD-join per cuboid, results padded
/// with `ALL` and unioned.
pub fn cube_per_cuboid(r: &Relation, spec: &CubeSpec, ctx: &ExecContext) -> Result<Relation> {
    let lattice = spec.lattice();
    let schema = spec.output_schema(r, ctx.registry())?;
    let mut out = Relation::empty(schema.clone());
    for mask in lattice.masks_fine_to_coarse() {
        let kept = spec.kept(mask);
        let b = group_by(r, &kept)?;
        let cuboid = serial_md_join(&b, r, &spec.aggs, &cuboid_theta(&kept), ctx)?;
        let padded = pad_cuboid(&cuboid, spec, mask, &schema);
        out = out.union(&padded)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_agg::AggSpec;
    use mdj_storage::{DataType, Row, Schema, Value};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Int(1), Value::Float(1.0)]),
                Row::from_values(vec![Value::Int(1), Value::Int(2), Value::Float(2.0)]),
                Row::from_values(vec![Value::Int(2), Value::Int(1), Value::Float(4.0)]),
                Row::from_values(vec![Value::Int(2), Value::Int(1), Value::Float(8.0)]),
            ],
        )
    }

    fn spec() -> CubeSpec {
        CubeSpec::new(
            &["prod", "month"],
            vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
        )
    }

    #[test]
    fn both_baselines_agree() {
        let r = rel();
        let ctx = ExecContext::new();
        let a = cube_via_wildcard_theta(&r, &spec(), &ctx).unwrap();
        let b = cube_per_cuboid(&r, &spec(), &ctx).unwrap();
        assert!(a.same_multiset(&b), "\n{a}\nvs\n{b}");
    }

    #[test]
    fn cube_cell_values() {
        let r = rel();
        let ctx = ExecContext::new();
        let out = cube_per_cuboid(&r, &spec(), &ctx).unwrap();
        // Cells: (1,1),(1,2),(2,1) + prods 2 + months 2 + apex 1 = 8.
        assert_eq!(out.len(), 8);
        let apex = out
            .rows()
            .iter()
            .find(|x| x[0].is_all() && x[1].is_all())
            .unwrap();
        assert_eq!(apex[2], Value::Float(15.0));
        assert_eq!(apex[3], Value::Int(4));
        let p2 = out
            .rows()
            .iter()
            .find(|x| x[0] == Value::Int(2) && x[1].is_all())
            .unwrap();
        assert_eq!(p2[2], Value::Float(12.0));
        let m1 = out
            .rows()
            .iter()
            .find(|x| x[0].is_all() && x[1] == Value::Int(1))
            .unwrap();
        assert_eq!(m1[2], Value::Float(13.0));
        assert_eq!(m1[3], Value::Int(3));
    }

    #[test]
    fn empty_detail_table() {
        let r = Relation::empty(rel().schema().clone());
        let ctx = ExecContext::new();
        let out = cube_per_cuboid(&r, &spec(), &ctx).unwrap();
        assert!(out.is_empty()); // no cells exist without data
    }

    #[test]
    fn single_dimension_cube() {
        let r = rel();
        let ctx = ExecContext::new();
        let sp = CubeSpec::new(&["prod"], vec![AggSpec::count_star()]);
        let out = cube_per_cuboid(&r, &sp, &ctx).unwrap();
        assert_eq!(out.len(), 3); // prods 1,2 + apex
    }
}
