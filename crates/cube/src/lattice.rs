//! The cuboid search lattice: one node per subset of the cube dimensions.
//!
//! Cuboids are bitmasks over the dimension list (bit `i` set ⇒ dimension `i`
//! kept). The full mask is the finest cuboid (the base group-by); mask 0 is
//! the apex (grand total). PIPESORT walks this lattice level by level
//! (\[AAD+96\], Figure 2 of the MD-join paper).

/// A cuboid identified by its kept-dimension bitmask.
pub type Mask = u32;

/// The cuboid lattice over `n` dimensions (`n ≤ 20` guarded).
#[derive(Debug, Clone)]
pub struct Lattice {
    n: usize,
}

impl Lattice {
    /// # Panics
    /// Panics if `n > 20` (2^n cuboids would be absurd for this engine).
    pub fn new(n: usize) -> Self {
        assert!(n <= 20, "cube dimensionality {n} too large");
        Lattice { n }
    }

    pub fn dims(&self) -> usize {
        self.n
    }

    /// The finest cuboid (all dimensions kept).
    pub fn full(&self) -> Mask {
        ((1u64 << self.n) - 1) as Mask
    }

    /// Number of cuboids (2^n).
    pub fn cuboid_count(&self) -> usize {
        1usize << self.n
    }

    /// All masks, finest (most bits) first, then by ascending value within a
    /// level — a valid coarse-from-fine computation order.
    pub fn masks_fine_to_coarse(&self) -> Vec<Mask> {
        let mut v: Vec<Mask> = (0..self.cuboid_count() as Mask).collect();
        v.sort_by_key(|m| std::cmp::Reverse((m.count_ones(), std::cmp::Reverse(*m))));
        v
    }

    /// Level = number of kept dimensions.
    pub fn level(&self, mask: Mask) -> u32 {
        mask.count_ones()
    }

    /// Direct parents of `mask`: cuboids with exactly one more dimension.
    pub fn parents(&self, mask: Mask) -> Vec<Mask> {
        (0..self.n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| mask | (1 << i))
            .collect()
    }

    /// Direct children of `mask`: cuboids with exactly one fewer dimension.
    pub fn children(&self, mask: Mask) -> Vec<Mask> {
        (0..self.n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| mask & !(1 << i))
            .collect()
    }

    /// Whether `coarse` can be rolled up from `fine` (subset relation).
    pub fn rolls_up_from(&self, coarse: Mask, fine: Mask) -> bool {
        coarse & fine == coarse && coarse != fine
    }

    /// Masks at a given level.
    pub fn level_masks(&self, level: u32) -> Vec<Mask> {
        (0..self.cuboid_count() as Mask)
            .filter(|m| m.count_ones() == level)
            .collect()
    }

    /// The kept-dimension indices of `mask`, ascending.
    pub fn kept_dims(&self, mask: Mask) -> Vec<usize> {
        (0..self.n).filter(|i| mask & (1 << i) != 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_levels() {
        let l = Lattice::new(3);
        assert_eq!(l.cuboid_count(), 8);
        assert_eq!(l.full(), 0b111);
        assert_eq!(l.level(0b101), 2);
        assert_eq!(l.level_masks(1), vec![0b001, 0b010, 0b100]);
    }

    #[test]
    fn parents_and_children() {
        let l = Lattice::new(3);
        assert_eq!(l.parents(0b001), vec![0b011, 0b101]);
        assert_eq!(l.children(0b011), vec![0b010, 0b001]);
        assert!(l.parents(l.full()).is_empty());
        assert!(l.children(0).is_empty());
    }

    #[test]
    fn fine_to_coarse_order_is_valid() {
        let l = Lattice::new(3);
        let order = l.masks_fine_to_coarse();
        assert_eq!(order.len(), 8);
        assert_eq!(order[0], 0b111);
        assert_eq!(*order.last().unwrap(), 0);
        // Every cuboid appears after at least one of its parents.
        for (i, &m) in order.iter().enumerate() {
            if m != l.full() {
                let has_earlier_parent = order[..i].iter().any(|&p| l.rolls_up_from(m, p));
                assert!(has_earlier_parent, "mask {m:b} has no earlier parent");
            }
        }
    }

    #[test]
    fn rollup_relation() {
        let l = Lattice::new(3);
        assert!(l.rolls_up_from(0b001, 0b011));
        assert!(l.rolls_up_from(0b000, 0b111));
        assert!(!l.rolls_up_from(0b011, 0b001));
        assert!(!l.rolls_up_from(0b011, 0b011));
        assert!(!l.rolls_up_from(0b110, 0b011));
    }

    #[test]
    fn kept_dims() {
        let l = Lattice::new(4);
        assert_eq!(l.kept_dims(0b1010), vec![1, 3]);
        assert!(l.kept_dims(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn too_many_dims_panics() {
        let _ = Lattice::new(21);
    }
}
