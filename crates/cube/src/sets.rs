//! Aggregation over an arbitrary *collection* of cuboids — the engine behind
//! `ANALYZE BY rollup/unpivot/grouping sets` and the Theorem 4.1 expansion of
//! `ANALYZE BY cube`.
//!
//! The paper's Example 4.2 expands a cube MD-join into a union of per-cuboid
//! MD-joins; the same expansion evaluates any *subset* of the lattice (the
//! "materializing an optimal set of subcubes" use case of the conclusions).
//! Each listed cuboid gets a hash-probed MD-join with a plain conjunctive θ,
//! so the wildcard `ALL`-θ (and its nested-loop probing) never runs.

use crate::common::{pad_cuboid, serial_md_join, CubeSpec};
use crate::lattice::Mask;
use mdj_core::basevalues::{cuboid_theta, group_by};
use mdj_core::{CoreError, ExecContext, Result};
use mdj_storage::Relation;

/// Which cuboids a grouping shape materializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetShape {
    /// All 2ⁿ cuboids.
    Cube,
    /// The n+1 prefix cuboids (SQL99 ROLLUP).
    Rollup,
    /// The n singleton cuboids (\[GFC98\] unpivot marginals).
    Unpivot,
    /// An explicit list of kept-dimension masks (SQL99 GROUPING SETS).
    Explicit(Vec<Mask>),
}

/// The masks a shape denotes over `n` dimensions. Masks use bit `i` for
/// `dims[i]`, matching [`crate::lattice::Lattice`].
pub fn shape_masks(n: usize, shape: &SetShape) -> Vec<Mask> {
    match shape {
        SetShape::Cube => {
            let mut v: Vec<Mask> = (0..(1u64 << n) as Mask).collect();
            v.reverse(); // fine-to-coarse, matching the other cube drivers
            v
        }
        SetShape::Rollup => (0..=n).rev().map(|k| ((1u64 << k) - 1) as Mask).collect(),
        SetShape::Unpivot => (0..n).map(|i| 1 << i).collect(),
        SetShape::Explicit(masks) => masks.clone(),
    }
}

/// Evaluate the aggregates over every listed cuboid: one hash-probed MD-join
/// per cuboid, outputs padded with `ALL` and unioned. Duplicate masks are
/// evaluated once. Works for *any* aggregate mix (holistic included) —
/// this is the generic Theorem 4.1 expansion, not the Theorem 4.5 roll-up.
pub fn sets_agg(
    r: &Relation,
    spec: &CubeSpec,
    masks: &[Mask],
    ctx: &ExecContext,
) -> Result<Relation> {
    let n = spec.dims.len();
    let bound = (1u64 << n) as Mask;
    let schema = spec.output_schema(r, ctx.registry())?;
    let mut out = Relation::empty(schema.clone());
    let mut done: Vec<Mask> = Vec::new();
    for &mask in masks {
        if mask >= bound {
            return Err(CoreError::BadConfig(format!(
                "cuboid mask {mask:#b} out of range for {n} dimensions"
            )));
        }
        if done.contains(&mask) {
            continue;
        }
        done.push(mask);
        let kept = spec.kept(mask);
        let b = group_by(r, &kept)?;
        let cuboid = serial_md_join(&b, r, &spec.aggs, &cuboid_theta(&kept), ctx)?;
        out = out.union(&pad_cuboid(&cuboid, spec, mask, &schema))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::cube_per_cuboid;
    use mdj_agg::AggSpec;
    use mdj_storage::{DataType, Row, Schema, Value};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("v", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            (0..24)
                .map(|i| Row::from_values([i % 3, i % 4, i]))
                .collect(),
        )
    }

    fn spec() -> CubeSpec {
        CubeSpec::new(
            &["a", "b"],
            vec![AggSpec::on_column("sum", "v"), AggSpec::count_star()],
        )
    }

    #[test]
    fn shape_masks_enumerate_correctly() {
        assert_eq!(
            shape_masks(2, &SetShape::Cube),
            vec![0b11, 0b10, 0b01, 0b00]
        );
        assert_eq!(
            shape_masks(3, &SetShape::Rollup),
            vec![0b111, 0b011, 0b001, 0b000]
        );
        assert_eq!(
            shape_masks(3, &SetShape::Unpivot),
            vec![0b001, 0b010, 0b100]
        );
        assert_eq!(
            shape_masks(3, &SetShape::Explicit(vec![0b101])),
            vec![0b101]
        );
    }

    #[test]
    fn cube_shape_equals_per_cuboid_driver() {
        let r = rel();
        let ctx = ExecContext::new();
        let masks = shape_masks(2, &SetShape::Cube);
        let a = sets_agg(&r, &spec(), &masks, &ctx).unwrap();
        let b = cube_per_cuboid(&r, &spec(), &ctx).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn rollup_is_the_prefix_subset_of_the_cube() {
        let r = rel();
        let ctx = ExecContext::new();
        let cube = sets_agg(&r, &spec(), &shape_masks(2, &SetShape::Cube), &ctx).unwrap();
        let rollup = sets_agg(&r, &spec(), &shape_masks(2, &SetShape::Rollup), &ctx).unwrap();
        assert!(rollup.len() < cube.len());
        let cube_rows: std::collections::HashSet<_> = cube.iter().cloned().collect();
        for row in rollup.iter() {
            assert!(cube_rows.contains(row));
        }
        // No (ALL, b) rows.
        assert!(!rollup.iter().any(|r| r[0].is_all() && !r[1].is_all()));
    }

    #[test]
    fn explicit_sets_and_dedup() {
        let r = rel();
        let ctx = ExecContext::new();
        let masks = vec![0b01, 0b01, 0b10];
        let out = sets_agg(&r, &spec(), &masks, &ctx).unwrap();
        // a-marginals (3) + b-marginals (4), the duplicate 0b01 ignored.
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn holistic_aggregates_supported() {
        let r = rel();
        let ctx = ExecContext::new();
        let sp = CubeSpec::new(&["a"], vec![AggSpec::on_column("median", "v")]);
        let out = sets_agg(&r, &sp, &shape_masks(1, &SetShape::Cube), &ctx).unwrap();
        let apex = out.iter().find(|row| row[0].is_all()).unwrap();
        assert_eq!(apex[1], Value::Float(11.5)); // median of 0..=23
    }

    #[test]
    fn out_of_range_mask_rejected() {
        let r = rel();
        let ctx = ExecContext::new();
        assert!(sets_agg(&r, &spec(), &[0b100], &ctx).is_err());
    }
}
