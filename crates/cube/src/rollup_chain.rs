//! Theorem 4.5 roll-up chains: every cuboid computed from its cheapest
//! already-computed parent.
//!
//! `MD(π_{X,ALL}(S), R, l, θ) = MD(π_{X,ALL}(S), MD(π_{X,Y}(S), R, l, θ), l', θ)`
//!
//! — the coarser cuboid over dimensions `X` aggregates the *finer cuboid*
//! over `X ∪ Y` instead of re-scanning the detail table, with `l'` the
//! roll-up-adapted aggregate list (count→sum). Only the finest cuboid reads
//! `R`; everything else reads a (much smaller) intermediate. The parent
//! choice is greedy-by-size, which is how \[AAD+96\]-style planners pick
//! roll-up edges when sizes are known.

use crate::common::{pad_cuboid, serial_md_join, CubeSpec};
use crate::lattice::Mask;
use mdj_agg::rollup::rollup_specs;
use mdj_core::basevalues::{cuboid_theta, group_by};
use mdj_core::{CoreError, ExecContext, Result};
use mdj_storage::Relation;
use std::collections::HashMap;

/// Compute the full cube via roll-up chains. Requires every aggregate in
/// `spec.aggs` to be distributive (Theorem 4.5's precondition); errors with
/// [`mdj_agg::AggError::NotRollupable`] otherwise.
pub fn cube_rollup_chain(r: &Relation, spec: &CubeSpec, ctx: &ExecContext) -> Result<Relation> {
    let lattice = spec.lattice();
    let schema = spec.output_schema(r, ctx.registry())?;
    let rolled = rollup_specs(&spec.aggs, ctx.registry())?;

    // Unpadded cuboid relations, keyed by mask.
    let mut computed: HashMap<Mask, Relation> = HashMap::new();
    let mut out = Relation::empty(schema.clone());

    for mask in lattice.masks_fine_to_coarse() {
        let kept = spec.kept(mask);
        let cuboid = if mask == lattice.full() {
            // Finest cuboid: from the detail table with the original l.
            let b = group_by(r, &kept)?;
            serial_md_join(&b, r, &spec.aggs, &cuboid_theta(&kept), ctx)?
        } else {
            // Coarser cuboid: from the smallest computed strict superset.
            let parent_mask = computed
                .keys()
                .copied()
                .filter(|&p| lattice.rolls_up_from(mask, p))
                .min_by_key(|p| computed[p].len())
                .ok_or_else(|| CoreError::BadConfig("no computed parent".into()))?;
            let parent = &computed[&parent_mask];
            let b = group_by(parent, &kept)?;
            serial_md_join(&b, parent, &rolled, &cuboid_theta(&kept), ctx)?
        };
        out = out.union(&pad_cuboid(&cuboid, spec, mask, &schema))?;
        computed.insert(mask, cuboid);
    }
    Ok(out)
}

/// Theorem 4.5 as a standalone equivalence, usable by property tests: roll
/// one specific coarser cuboid up from a finer one and compare with direct
/// computation.
pub fn rollup_one(
    r: &Relation,
    spec: &CubeSpec,
    coarse: Mask,
    fine: Mask,
    ctx: &ExecContext,
) -> Result<(Relation, Relation)> {
    let lattice = spec.lattice();
    assert!(
        lattice.rolls_up_from(coarse, fine),
        "coarse {coarse:b} must be a strict subset of fine {fine:b}"
    );
    let fine_kept = spec.kept(fine);
    let coarse_kept = spec.kept(coarse);
    // Finer cuboid from detail.
    let fine_b = group_by(r, &fine_kept)?;
    let fine_rel = serial_md_join(&fine_b, r, &spec.aggs, &cuboid_theta(&fine_kept), ctx)?;
    // Roll up.
    let rolled_specs = rollup_specs(&spec.aggs, ctx.registry())?;
    let coarse_b = group_by(&fine_rel, &coarse_kept)?;
    let via_rollup = serial_md_join(
        &coarse_b,
        &fine_rel,
        &rolled_specs,
        &cuboid_theta(&coarse_kept),
        ctx,
    )?;
    // Direct.
    let direct_b = group_by(r, &coarse_kept)?;
    let direct = serial_md_join(&direct_b, r, &spec.aggs, &cuboid_theta(&coarse_kept), ctx)?;
    Ok((via_rollup, direct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::cube_per_cuboid;
    use mdj_agg::AggSpec;
    use mdj_storage::{DataType, Row, Schema, Value};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let mk = |p: i64, m: i64, st: &str, s: f64| {
            Row::from_values(vec![
                Value::Int(p),
                Value::Int(m),
                Value::str(st),
                Value::Float(s),
            ])
        };
        Relation::from_rows(
            schema,
            vec![
                mk(1, 1, "NY", 1.0),
                mk(1, 2, "NY", 2.0),
                mk(2, 1, "CA", 4.0),
                mk(2, 1, "NY", 8.0),
                mk(2, 2, "CA", 16.0),
                mk(1, 1, "NY", 32.0),
            ],
        )
    }

    fn spec() -> CubeSpec {
        CubeSpec::new(
            &["prod", "month", "state"],
            vec![
                AggSpec::on_column("sum", "sale"),
                AggSpec::count_star(),
                AggSpec::on_column("min", "sale"),
                AggSpec::on_column("max", "sale"),
            ],
        )
    }

    #[test]
    fn rollup_chain_matches_per_cuboid_baseline() {
        let r = rel();
        let ctx = ExecContext::new();
        let a = cube_rollup_chain(&r, &spec(), &ctx).unwrap();
        let b = cube_per_cuboid(&r, &spec(), &ctx).unwrap();
        assert!(a.same_multiset(&b), "\n{a}\nvs\n{b}");
    }

    #[test]
    fn theorem_4_5_single_rollup_equivalence() {
        let r = rel();
        let ctx = ExecContext::new();
        let sp = spec();
        // (prod) rolled up from (prod, month).
        let (via, direct) = rollup_one(&r, &sp, 0b001, 0b011, &ctx).unwrap();
        assert!(via.same_multiset(&direct));
        // Apex rolled up from (state).
        let (via, direct) = rollup_one(&r, &sp, 0b000, 0b100, &ctx).unwrap();
        assert!(via.same_multiset(&direct));
    }

    #[test]
    fn count_becomes_sum_through_the_chain() {
        // The classic pitfall Theorem 4.5's l' fixes: re-counting the finer
        // cuboid would report cuboid sizes, not tuple counts.
        let r = rel();
        let ctx = ExecContext::new();
        let out = cube_rollup_chain(&r, &spec(), &ctx).unwrap();
        let apex = out
            .rows()
            .iter()
            .find(|x| x[0].is_all() && x[1].is_all() && x[2].is_all())
            .unwrap();
        assert_eq!(apex[4], Value::Int(6)); // count over 6 detail tuples
        assert_eq!(apex[3], Value::Float(63.0));
        assert_eq!(apex[5], Value::Float(1.0)); // min
        assert_eq!(apex[6], Value::Float(32.0)); // max
    }

    #[test]
    fn non_distributive_aggregates_rejected() {
        let r = rel();
        let ctx = ExecContext::new();
        let sp = CubeSpec::new(&["prod", "month"], vec![AggSpec::on_column("avg", "sale")]);
        let err = cube_rollup_chain(&r, &sp, &ctx);
        assert!(err.is_err());
    }

    #[test]
    fn detail_scanned_once_only() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let r = rel();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        cube_rollup_chain(&r, &spec(), &ctx).unwrap();
        // The finest cuboid's MD-join is the only scan over the 6-row detail
        // table; all other scans are over intermediates. With 3 dims there
        // are 8 MD-joins total, but total tuples scanned is far below
        // 8 × |R| only because intermediates shrink — verify the finest scan
        // count: exactly one scan of 6 tuples plus intermediate scans.
        let snapshots = stats.snapshot();
        assert_eq!(snapshots.scans, 8);
        // First scan reads R (6 tuples); the rest read intermediates whose
        // sizes are the cuboid row counts.
        assert!(snapshots.tuples_scanned < 8 * 6);
    }
}
