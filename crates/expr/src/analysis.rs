//! θ-condition analysis: the decompositions behind Theorems 4.2/4.3/4.4,
//! Observation 4.1, and Section 4.5 index selection.

use crate::ast::{BinOp, ColRef, Expr, Side};
use mdj_storage::Value;
use std::ops::Bound;

/// Flatten a conjunction into its conjuncts (`a AND b AND c` → `[a, b, c]`).
/// Non-conjunctive expressions are a single conjunct. The constant `true`
/// flattens to no conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<Expr> {
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            Expr::Lit(Value::Bool(true)) => {}
            other => out.push(other.clone()),
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Which sides an expression touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sides {
    pub base: bool,
    pub detail: bool,
}

/// Classify an expression by the sides it references.
pub fn sides(expr: &Expr) -> Sides {
    Sides {
        base: expr.uses_side(Side::Base),
        detail: expr.uses_side(Side::Detail),
    }
}

/// A θ split by side, per Theorem 4.2: `θ = θ₁ AND θ₂` where `θ₂` involves
/// only attributes of `R` (pushable into `σ_{θ₂}(R)`). We also separate
/// base-only conjuncts (pushable into a selection on `B`) and constant
/// conjuncts.
#[derive(Debug, Clone, PartialEq)]
pub struct ThetaSplit {
    /// Conjuncts over both sides — the residual θ₁ that the MD-join must test.
    pub mixed: Vec<Expr>,
    /// Conjuncts over `R` only (Theorem 4.2: push to a selection on `R`).
    pub detail_only: Vec<Expr>,
    /// Conjuncts over `B` only (push to a selection on `B`).
    pub base_only: Vec<Expr>,
    /// Conjuncts referencing no columns at all.
    pub constant: Vec<Expr>,
}

impl ThetaSplit {
    /// Recombine the residual condition that remains on the MD-join after
    /// detail-only conjuncts are pushed (base-only and constant conjuncts are
    /// kept too unless the caller pushes them as well).
    pub fn residual(&self) -> Expr {
        crate::builder::and_all(
            self.mixed
                .iter()
                .chain(&self.base_only)
                .chain(&self.constant)
                .cloned(),
        )
    }

    /// The pushable detail-side selection predicate, if any.
    pub fn detail_predicate(&self) -> Option<Expr> {
        if self.detail_only.is_empty() {
            None
        } else {
            Some(crate::builder::and_all(self.detail_only.iter().cloned()))
        }
    }
}

/// Split θ into side classes (Theorem 4.2 precondition).
pub fn split_theta(theta: &Expr) -> ThetaSplit {
    let mut split = ThetaSplit {
        mixed: Vec::new(),
        detail_only: Vec::new(),
        base_only: Vec::new(),
        constant: Vec::new(),
    };
    for c in conjuncts(theta) {
        let s = sides(&c);
        match (s.base, s.detail) {
            (true, true) => split.mixed.push(c),
            (false, true) => split.detail_only.push(c),
            (true, false) => split.base_only.push(c),
            (false, false) => split.constant.push(c),
        }
    }
    split
}

/// An equality conjunct `B.b = R.r` between bare columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EquiPair {
    pub base_col: String,
    pub detail_col: String,
}

/// Extract `B.x = R.y` pairs from θ's conjuncts. These drive:
/// * Section 4.5: build a hash index on `B`'s columns `{x}` and probe it with
///   values `t[y]` from each detail tuple — `Rel(t)` lookup;
/// * Observation 4.1: a range selection on `B.x` rewrites to the same range on
///   `R.y`.
pub fn equi_pairs(theta: &Expr) -> Vec<EquiPair> {
    let mut out = Vec::new();
    for c in conjuncts(theta) {
        if let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = &c
        {
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col(a), Expr::Col(b)) if a.side != b.side => {
                    let (bc, rc) = if a.side == Side::Base { (a, b) } else { (b, a) };
                    out.push(EquiPair {
                        base_col: bc.name.clone(),
                        detail_col: rc.name.clone(),
                    });
                }
                _ => {}
            }
        }
    }
    out
}

/// A *probe binding*: `B.col = f(R-row)` where `f` references only the detail
/// side. Generalizes [`equi_pairs`] to computed keys, which Section 4.5 needs
/// for Example 2.5's θ (`B.month = R.month + 1` — index `B` on `month`, probe
/// with `t.month + 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeBinding {
    pub base_col: String,
    /// Detail-only expression producing the probe value.
    pub detail_expr: Expr,
}

/// Try to rewrite one side of an equality into `B.col = <detail-only expr>`.
///
/// Handles the bare column and one level of `+`/`-` isolation, so θs written
/// either way round probe equally well (`B.month = R.month + 1` and
/// `R.month = B.month - 1` both bind `month`):
///
/// * `B.col`            = D  →  `B.col = D`
/// * `B.col + e`        = D  →  `B.col = D - e`
/// * `B.col - e`        = D  →  `B.col = D + e`
/// * `e + B.col`        = D  →  `B.col = D - e`
/// * `e - B.col`        = D  →  `B.col = e - D`
///
/// where `e` and `D` reference only the detail side (or constants).
fn isolate_base_col(base_side: &Expr, detail_side: &Expr) -> Option<ProbeBinding> {
    if detail_side.uses_side(Side::Base) {
        return None;
    }
    let bin = |op: BinOp, lhs: &Expr, rhs: &Expr| Expr::Binary {
        op,
        lhs: Box::new(lhs.clone()),
        rhs: Box::new(rhs.clone()),
    };
    match base_side {
        Expr::Col(ColRef {
            side: Side::Base,
            name,
        }) => Some(ProbeBinding {
            base_col: name.clone(),
            detail_expr: detail_side.clone(),
        }),
        Expr::Binary { op, lhs, rhs } if matches!(op, BinOp::Add | BinOp::Sub) => {
            match (lhs.as_ref(), rhs.as_ref()) {
                (
                    Expr::Col(ColRef {
                        side: Side::Base,
                        name,
                    }),
                    e,
                ) if !e.uses_side(Side::Base) => {
                    let inverse = if *op == BinOp::Add {
                        BinOp::Sub
                    } else {
                        BinOp::Add
                    };
                    Some(ProbeBinding {
                        base_col: name.clone(),
                        detail_expr: bin(inverse, detail_side, e),
                    })
                }
                (
                    e,
                    Expr::Col(ColRef {
                        side: Side::Base,
                        name,
                    }),
                ) if !e.uses_side(Side::Base) => {
                    let detail_expr = if *op == BinOp::Add {
                        bin(BinOp::Sub, detail_side, e) // e + B.col = D
                    } else {
                        bin(BinOp::Sub, e, detail_side) // e - B.col = D
                    };
                    Some(ProbeBinding {
                        base_col: name.clone(),
                        detail_expr,
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Extract probe bindings from θ. A conjunct qualifies when one side of an
/// equality resolves (possibly after one `+`/`-` isolation step) to a bare
/// `B` column with the rest of the conjunct referencing only `R`. Remaining
/// conjuncts become the residual predicate re-checked per candidate.
pub fn probe_bindings(theta: &Expr) -> (Vec<ProbeBinding>, Vec<Expr>) {
    let mut bindings = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts(theta) {
        let mut matched = false;
        if let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = &c
        {
            for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                if let Some(binding) = isolate_base_col(a, b) {
                    bindings.push(binding);
                    matched = true;
                    break;
                }
            }
        }
        if !matched {
            residual.push(c);
        }
    }
    (bindings, residual)
}

/// A one-column range extracted from detail-only conjuncts, for clustered
/// index scans (Example 4.1: `Sales.year >= 1994 AND Sales.year <= 1996`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRange {
    pub column: String,
    pub lower: Bound<Value>,
    pub upper: Bound<Value>,
}

/// Extract the tightest range on `column` implied by the given detail-only
/// conjuncts, returning the conjuncts that did not contribute. Supports
/// `R.col (op) literal` and `literal (op) R.col` for `=, <, <=, >, >=`.
pub fn extract_range(conjs: &[Expr], column: &str) -> (Option<ColumnRange>, Vec<Expr>) {
    let mut lower: Bound<Value> = Bound::Unbounded;
    let mut upper: Bound<Value> = Bound::Unbounded;
    let mut rest = Vec::new();
    let mut any = false;

    let tighten_lower = |cur: &mut Bound<Value>, new: Bound<Value>| {
        let newer = match (&*cur, &new) {
            (Bound::Unbounded, _) => true,
            (_, Bound::Unbounded) => false,
            (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
                match b.cmp(a) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => {
                        matches!(new, Bound::Excluded(_)) && matches!(cur, Bound::Included(_))
                    }
                }
            }
        };
        if newer {
            *cur = new;
        }
    };
    let tighten_upper = |cur: &mut Bound<Value>, new: Bound<Value>| {
        let newer = match (&*cur, &new) {
            (Bound::Unbounded, _) => true,
            (_, Bound::Unbounded) => false,
            (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        matches!(new, Bound::Excluded(_)) && matches!(cur, Bound::Included(_))
                    }
                }
            }
        };
        if newer {
            *cur = new;
        }
    };

    for c in conjs {
        let mut used = false;
        if let Expr::Binary { op, lhs, rhs } = c {
            // Normalize to `col (op) lit`.
            let norm = match (lhs.as_ref(), rhs.as_ref()) {
                (
                    Expr::Col(ColRef {
                        side: Side::Detail,
                        name,
                    }),
                    Expr::Lit(v),
                ) if name == column => Some((*op, v.clone())),
                (
                    Expr::Lit(v),
                    Expr::Col(ColRef {
                        side: Side::Detail,
                        name,
                    }),
                ) if name == column => Some((op.flip(), v.clone())),
                _ => None,
            };
            if let Some((op, v)) = norm {
                used = true;
                any = true;
                match op {
                    BinOp::Eq => {
                        tighten_lower(&mut lower, Bound::Included(v.clone()));
                        tighten_upper(&mut upper, Bound::Included(v));
                    }
                    BinOp::Lt => tighten_upper(&mut upper, Bound::Excluded(v)),
                    BinOp::Le => tighten_upper(&mut upper, Bound::Included(v)),
                    BinOp::Gt => tighten_lower(&mut lower, Bound::Excluded(v)),
                    BinOp::Ge => tighten_lower(&mut lower, Bound::Included(v)),
                    _ => {
                        any = matches!((&lower, &upper), (Bound::Unbounded, Bound::Unbounded))
                            .then_some(false)
                            .unwrap_or(any);
                        used = false;
                    }
                }
            }
        }
        if !used {
            rest.push(c.clone());
        }
    }
    let range = if any {
        Some(ColumnRange {
            column: column.to_string(),
            lower,
            upper,
        })
    } else {
        None
    };
    (range, rest)
}

/// θ-independence test for Theorem 4.3: two MD-joins over base `B` commute
/// when each θ references only `B`'s *original* columns plus its own detail
/// table — i.e. neither θ mentions aggregate columns produced by the other.
/// `produced_by_first` is the set of column names the first MD-join appends.
pub fn theta_independent_of(theta: &Expr, produced_by_first: &[String]) -> bool {
    let mut independent = true;
    theta.visit_cols(&mut |c| {
        if c.side == Side::Base && produced_by_first.iter().any(|p| p == &c.name) {
            independent = false;
        }
    });
    independent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = and(
            and(eq(col_b("a"), col_r("a")), gt(col_r("x"), lit(1i64))),
            lt(col_r("x"), lit(9i64)),
        );
        assert_eq!(conjuncts(&e).len(), 3);
        assert!(conjuncts(&Expr::always_true()).is_empty());
        // OR is opaque — a single conjunct.
        let e = or(lit(true), lit(false));
        assert_eq!(conjuncts(&e).len(), 1);
    }

    #[test]
    fn split_theta_classifies_sides() {
        // Example 4.1's θ₁: Sales.prod=prod AND year>=1994 AND year<=1996
        let theta = and_all([
            eq(col_r("prod"), col_b("prod")),
            ge(col_r("year"), lit(1994i64)),
            le(col_r("year"), lit(1996i64)),
        ]);
        let s = split_theta(&theta);
        assert_eq!(s.mixed.len(), 1);
        assert_eq!(s.detail_only.len(), 2);
        assert!(s.base_only.is_empty());
        assert!(s.detail_predicate().is_some());
        let resid = s.residual();
        assert_eq!(conjuncts(&resid).len(), 1);
    }

    #[test]
    fn equi_pairs_found_in_both_orders() {
        let theta = and(
            eq(col_b("cust"), col_r("c")),
            eq(col_r("month"), col_b("m")),
        );
        let pairs = equi_pairs(&theta);
        assert_eq!(
            pairs,
            vec![
                EquiPair {
                    base_col: "cust".into(),
                    detail_col: "c".into()
                },
                EquiPair {
                    base_col: "m".into(),
                    detail_col: "month".into()
                },
            ]
        );
    }

    #[test]
    fn equi_pairs_ignore_same_side_and_computed() {
        let theta = and(
            eq(col_r("a"), col_r("b")),
            eq(col_b("m"), add(col_r("month"), lit(1i64))),
        );
        assert!(equi_pairs(&theta).is_empty());
    }

    #[test]
    fn probe_bindings_capture_computed_keys() {
        // Example 2.5 previous-month θ.
        let theta = and(
            eq(col_r("cust"), col_b("cust")),
            eq(col_b("month"), add(col_r("month"), lit(1i64))),
        );
        let (bindings, residual) = probe_bindings(&theta);
        assert_eq!(bindings.len(), 2);
        assert!(residual.is_empty());
        assert_eq!(bindings[0].base_col, "cust");
        assert_eq!(bindings[1].base_col, "month");
        assert_eq!(bindings[1].detail_expr, add(col_r("month"), lit(1i64)));
    }

    #[test]
    fn probe_bindings_isolate_shifted_base_columns() {
        // R.month = B.month - 1  =>  B.month = R.month + 1 (probe-able).
        let theta = eq(col_r("month"), sub(col_b("month"), lit(1i64)));
        let (bindings, residual) = probe_bindings(&theta);
        assert_eq!(bindings.len(), 1);
        assert!(residual.is_empty());
        assert_eq!(bindings[0].base_col, "month");
        assert_eq!(bindings[0].detail_expr, add(col_r("month"), lit(1i64)));
        // B.month + 1 = R.month  =>  B.month = R.month - 1.
        let theta = eq(add(col_b("month"), lit(1i64)), col_r("month"));
        let (bindings, _) = probe_bindings(&theta);
        assert_eq!(bindings[0].detail_expr, sub(col_r("month"), lit(1i64)));
        // 12 - B.month = R.month  =>  B.month = 12 - R.month.
        let theta = eq(sub(lit(12i64), col_b("month")), col_r("month"));
        let (bindings, _) = probe_bindings(&theta);
        assert_eq!(bindings[0].detail_expr, sub(lit(12i64), col_r("month")));
    }

    #[test]
    fn isolation_refuses_base_on_both_sides() {
        // B.x + B.y = R.m: not isolatable.
        let theta = eq(add(col_b("x"), col_b("y")), col_r("m"));
        let (bindings, residual) = probe_bindings(&theta);
        assert!(bindings.is_empty());
        assert_eq!(residual.len(), 1);
    }

    #[test]
    fn probe_bindings_leave_inequalities_residual() {
        let theta = and(
            eq(col_b("prod"), col_r("prod")),
            gt(col_r("sale"), col_b("avg_sale")),
        );
        let (bindings, residual) = probe_bindings(&theta);
        assert_eq!(bindings.len(), 1);
        assert_eq!(residual.len(), 1);
    }

    #[test]
    fn probe_binding_rejects_base_referencing_value() {
        // B.x = B.y + 1 is not probe-able.
        let theta = eq(col_b("x"), add(col_b("y"), lit(1i64)));
        let (bindings, residual) = probe_bindings(&theta);
        assert!(bindings.is_empty());
        assert_eq!(residual.len(), 1);
    }

    #[test]
    fn extract_range_example_4_1() {
        let theta = and_all([
            eq(col_r("prod"), col_b("prod")),
            ge(col_r("year"), lit(1994i64)),
            le(col_r("year"), lit(1996i64)),
        ]);
        let s = split_theta(&theta);
        let (range, rest) = extract_range(&s.detail_only, "year");
        let range = range.unwrap();
        assert_eq!(range.lower, Bound::Included(Value::Int(1994)));
        assert_eq!(range.upper, Bound::Included(Value::Int(1996)));
        assert!(rest.is_empty());
    }

    #[test]
    fn extract_range_tightens_and_handles_flipped_literals() {
        let conjs = vec![
            gt(lit(10i64), col_r("x")), // x < 10
            ge(col_r("x"), lit(2i64)),
            lt(col_r("x"), lit(8i64)), // tighter upper
        ];
        let (range, rest) = extract_range(&conjs, "x");
        let range = range.unwrap();
        assert_eq!(range.lower, Bound::Included(Value::Int(2)));
        assert_eq!(range.upper, Bound::Excluded(Value::Int(8)));
        assert!(rest.is_empty());
    }

    #[test]
    fn extract_range_equality_pins_both_bounds() {
        let conjs = vec![eq(col_r("year"), lit(1999i64))];
        let (range, _) = extract_range(&conjs, "year");
        let range = range.unwrap();
        assert_eq!(range.lower, Bound::Included(Value::Int(1999)));
        assert_eq!(range.upper, Bound::Included(Value::Int(1999)));
    }

    #[test]
    fn extract_range_keeps_unrelated_conjuncts() {
        let conjs = vec![
            ge(col_r("year"), lit(1994i64)),
            gt(col_r("sale"), lit(0i64)),
        ];
        let (range, rest) = extract_range(&conjs, "year");
        assert!(range.is_some());
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn theta_independence() {
        // Example 3.2: θ₂ references avg_sale produced by the first MD-join.
        let theta2 = and(
            group_theta(&["prod", "month", "state"]),
            gt(col_r("sale"), col_b("avg_sale")),
        );
        assert!(!theta_independent_of(&theta2, &["avg_sale".to_string()]));
        // Example 2.2's θ₂ is independent of θ₁'s output.
        let theta = and(
            eq(col_r("cust"), col_b("cust")),
            eq(col_r("state"), lit("CT")),
        );
        assert!(theta_independent_of(&theta, &["avg_sale_ny".to_string()]));
    }
}
