//! Terse constructors for building expressions in code, tests, and examples.
//!
//! ```
//! use mdj_expr::builder::*;
//! // θ of Example 2.5's "previous month" grouping variable:
//! //   Sales.cust = cust AND Sales.month = month - 1
//! let theta = and(
//!     eq(col_r("cust"), col_b("cust")),
//!     eq(col_r("month"), sub(col_b("month"), lit(1i64))),
//! );
//! assert!(theta.to_string().contains("R.month"));
//! ```

use crate::ast::{BinOp, ColRef, Expr};
use mdj_storage::Value;

/// Reference a column of the base-values table `B`.
pub fn col_b(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef::base(name))
}

/// Reference a column of the detail table `R`.
pub fn col_r(name: impl Into<String>) -> Expr {
    Expr::Col(ColRef::detail(name))
}

/// A literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

pub fn add(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Add, lhs, rhs)
}

pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Sub, lhs, rhs)
}

pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Mul, lhs, rhs)
}

pub fn div(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Div, lhs, rhs)
}

pub fn modulo(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Mod, lhs, rhs)
}

pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Eq, lhs, rhs)
}

pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Ne, lhs, rhs)
}

pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Lt, lhs, rhs)
}

pub fn le(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Le, lhs, rhs)
}

pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Gt, lhs, rhs)
}

pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Ge, lhs, rhs)
}

pub fn and(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::And, lhs, rhs)
}

pub fn or(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Or, lhs, rhs)
}

pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

/// Conjoin many predicates; empty input yields the constant `true`.
pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    let mut iter = exprs.into_iter();
    match iter.next() {
        None => Expr::always_true(),
        Some(first) => iter.fold(first, and),
    }
}

/// The θ of a plain group-by MD-join: `B.a = R.a` for every listed attribute.
/// (Example 3.2's θ₁: `Sales.prod=prod and Sales.month=month and
/// Sales.state=state`.)
pub fn group_theta(attrs: &[&str]) -> Expr {
    and_all(attrs.iter().map(|a| eq(col_b(*a), col_r(*a))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_handles_empty_and_many() {
        assert_eq!(and_all([]), Expr::always_true());
        let e = and_all([eq(col_b("a"), col_r("a")), eq(col_b("b"), col_r("b"))]);
        assert_eq!(e.to_string(), "((B.a = R.a) AND (B.b = R.b))");
    }

    #[test]
    fn group_theta_builds_equality_chain() {
        let t = group_theta(&["prod", "month", "state"]);
        let s = t.to_string();
        assert!(s.contains("(B.prod = R.prod)"));
        assert!(s.contains("(B.state = R.state)"));
    }
}
