//! # mdj-expr
//!
//! Scalar expressions and θ-condition machinery for the MD-join.
//!
//! The MD-join `MD(B, R, l, θ)` evaluates θ over *pairs* of rows — one from the
//! base-values table `B`, one from the detail table `R` — so expressions here
//! carry a [`Side`] on every column reference. The [`analysis`] module implements
//! the θ decompositions that the paper's optimization theorems need:
//!
//! * conjunct splitting and side classification (Theorem 4.2: detail-only
//!   conjuncts push into a selection on `R`);
//! * equality-pair extraction `B.x = R.y` (Section 4.5 `Rel(t)` indexing and
//!   Observation 4.1);
//! * range-predicate extraction (clustered-index scans of Example 4.1);
//! * base→detail attribute substitution (Observation 4.1's `σ'ᵢ`).

pub mod analysis;
pub mod ast;
pub mod builder;
pub mod error;
pub mod eval;
pub mod rewrite;
pub mod vectorized;

pub use ast::{BinOp, ColRef, Expr, Side};
pub use error::{ExprError, Result};
pub use eval::BoundExpr;
pub use vectorized::{eval_batch, BatchVals};
