//! Expression rewrites used by the algebraic transformations.

use crate::analysis::{conjuncts, equi_pairs};
use crate::ast::{ColRef, Expr, Side};
use crate::builder::and_all;
use std::collections::HashMap;

/// Observation 4.1: rewrite a *base-side* selection predicate `σᵢ` into the
/// equivalent *detail-side* predicate `σ'ᵢ` by replacing each `B.x` with the
/// `R.y` that θ equates it to. Returns `None` when some referenced base column
/// has no equality partner in θ (the observation's precondition fails).
pub fn base_predicate_to_detail(pred: &Expr, theta: &Expr) -> Option<Expr> {
    let mapping: HashMap<String, String> = equi_pairs(theta)
        .into_iter()
        .map(|p| (p.base_col, p.detail_col))
        .collect();
    let mut ok = true;
    let rewritten = pred.map_cols(&mut |c: &ColRef| match c.side {
        Side::Base => match mapping.get(&c.name) {
            Some(detail) => Expr::Col(ColRef::detail(detail.clone())),
            None => {
                ok = false;
                Expr::Col(c.clone())
            }
        },
        Side::Detail => Expr::Col(c.clone()),
    });
    ok.then_some(rewritten)
}

/// Rename detail-side column references (footnote 3: each MD-join application
/// over the same table is preceded by a renaming of that table).
pub fn rename_detail_cols(expr: &Expr, mapping: &HashMap<String, String>) -> Expr {
    expr.map_cols(&mut |c: &ColRef| {
        if c.side == Side::Detail {
            if let Some(new) = mapping.get(&c.name) {
                return Expr::Col(ColRef::detail(new.clone()));
            }
        }
        Expr::Col(c.clone())
    })
}

/// Rename base-side column references (used when `B` columns are renamed
/// between stages of a series of MD-joins).
pub fn rename_base_cols(expr: &Expr, mapping: &HashMap<String, String>) -> Expr {
    expr.map_cols(&mut |c: &ColRef| {
        if c.side == Side::Base {
            if let Some(new) = mapping.get(&c.name) {
                return Expr::Col(ColRef::base(new.clone()));
            }
        }
        Expr::Col(c.clone())
    })
}

/// Drop conjuncts that mention any of the given base columns. Used by the
/// cube roll-up rule (Theorem 4.5): the θ for a coarser cuboid omits the
/// equality tests on rolled-up dimensions.
pub fn drop_conjuncts_on_base_cols(theta: &Expr, cols: &[&str]) -> Expr {
    let kept = conjuncts(theta).into_iter().filter(|c| {
        let mut mentions = false;
        c.visit_cols(&mut |cr| {
            if cr.side == Side::Base && cols.contains(&cr.name.as_str()) {
                mentions = true;
            }
        });
        !mentions
    });
    and_all(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn observation_4_1_rewrite() {
        // θ: B.month = R.month AND B.cust = R.cust; predicate: B.month >= 4
        let theta = and(
            eq(col_b("month"), col_r("month")),
            eq(col_b("cust"), col_r("cust")),
        );
        let pred = and(ge(col_b("month"), lit(4i64)), le(col_b("month"), lit(8i64)));
        let out = base_predicate_to_detail(&pred, &theta).unwrap();
        assert_eq!(
            out,
            and(ge(col_r("month"), lit(4i64)), le(col_r("month"), lit(8i64)))
        );
    }

    #[test]
    fn observation_4_1_fails_without_matching_equality() {
        let theta = eq(col_b("cust"), col_r("cust"));
        let pred = ge(col_b("month"), lit(4i64));
        assert!(base_predicate_to_detail(&pred, &theta).is_none());
    }

    #[test]
    fn rename_detail_only_touches_detail() {
        let e = eq(col_b("cust"), col_r("cust"));
        let mut m = HashMap::new();
        m.insert("cust".to_string(), "Sales2.cust".to_string());
        let out = rename_detail_cols(&e, &m);
        assert_eq!(out, eq(col_b("cust"), col_r("Sales2.cust")));
    }

    #[test]
    fn drop_conjuncts_for_rollup() {
        // Full cube θ over (prod, month, state); roll up month and state.
        let theta = group_theta(&["prod", "month", "state"]);
        let coarse = drop_conjuncts_on_base_cols(&theta, &["month", "state"]);
        assert_eq!(coarse, eq(col_b("prod"), col_r("prod")));
        // Rolling up everything yields the constant-true θ of the apex cuboid.
        let apex = drop_conjuncts_on_base_cols(&theta, &["prod", "month", "state"]);
        assert_eq!(apex, Expr::always_true());
    }
}
