//! Expression AST.
//!
//! θ-conditions in the paper compare attributes of the base-values table `B`
//! with attributes of the detail table `R` (Definition 3.1), so every column
//! reference names which side it reads from. A second use of the same AST is
//! one-sided: selection predicates (σ) and computed projections bind only one
//! side and leave the other unavailable.

use mdj_storage::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which operand relation a column reference reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The base-values table `B` (includes aggregate columns added by previous
    /// MD-joins in a series, e.g. `avg_sale` in Example 3.2).
    Base,
    /// The detail table `R`.
    Detail,
}

impl Side {
    pub fn name(self) -> &'static str {
        match self {
            Side::Base => "B",
            Side::Detail => "R",
        }
    }
}

/// A sided column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    pub side: Side,
    pub name: String,
}

impl ColRef {
    pub fn base(name: impl Into<String>) -> Self {
        ColRef {
            side: Side::Base,
            name: name.into(),
        }
    }

    pub fn detail(name: impl Into<String>) -> Self {
        ColRef {
            side: Side::Detail,
            name: name.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.side.name(), self.name)
    }
}

/// Binary operators. Comparisons use SQL semantics (NULL operands → false);
/// `And`/`Or` treat their operands as booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for `= != < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> Self {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// An expression tree over sided columns and literals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    Col(ColRef),
    Lit(Value),
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Not(Box<Expr>),
}

impl Expr {
    /// The constant `true` predicate (an unconditional MD-join aggregates every
    /// detail tuple into every base row).
    pub fn always_true() -> Expr {
        Expr::Lit(Value::Bool(true))
    }

    /// Visit every column reference.
    pub fn visit_cols(&self, f: &mut impl FnMut(&ColRef)) {
        match self {
            Expr::Col(c) => f(c),
            Expr::Lit(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_cols(f);
                rhs.visit_cols(f);
            }
            Expr::Not(e) => e.visit_cols(f),
        }
    }

    /// Rebuild the tree, mapping every column reference.
    pub fn map_cols(&self, f: &mut impl FnMut(&ColRef) -> Expr) -> Expr {
        match self {
            Expr::Col(c) => f(c),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.map_cols(f)),
                rhs: Box::new(rhs.map_cols(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.map_cols(f))),
        }
    }

    /// Whether the expression references the given side.
    pub fn uses_side(&self, side: Side) -> bool {
        let mut found = false;
        self.visit_cols(&mut |c| found |= c.side == side);
        found
    }

    /// Names of all columns referenced on `side`, in first-visit order,
    /// without duplicates.
    pub fn cols_on(&self, side: Side) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.visit_cols(&mut |c| {
            if c.side == side && !out.iter().any(|n| n == &c.name) {
                out.push(c.name.clone());
            }
        });
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Not(e) => write!(f, "(NOT {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn display_roundtrips_shape() {
        let e = and(
            eq(col_b("cust"), col_r("cust")),
            gt(col_r("sale"), lit(100i64)),
        );
        assert_eq!(e.to_string(), "((B.cust = R.cust) AND (R.sale > 100))");
    }

    #[test]
    fn uses_side_and_cols_on() {
        let e = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("month"), add(col_r("month"), lit(1i64))),
        );
        assert!(e.uses_side(Side::Base));
        assert!(e.uses_side(Side::Detail));
        assert_eq!(e.cols_on(Side::Base), vec!["cust", "month"]);
        assert_eq!(e.cols_on(Side::Detail), vec!["cust", "month"]);
        assert!(!lit(1i64).uses_side(Side::Base));
    }

    #[test]
    fn map_cols_rewrites() {
        let e = eq(col_b("cust"), col_r("cust"));
        let renamed = e.map_cols(&mut |c| {
            if c.side == Side::Base {
                Expr::Col(ColRef::base(format!("{}_renamed", c.name)))
            } else {
                Expr::Col(c.clone())
            }
        });
        assert_eq!(renamed.cols_on(Side::Base), vec!["cust_renamed"]);
    }

    #[test]
    fn flip_is_involutive_on_inequalities() {
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq] {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
    }

    #[test]
    fn string_literals_display_quoted() {
        let e = eq(col_r("state"), lit("NY"));
        assert_eq!(e.to_string(), "(R.state = 'NY')");
    }
}
