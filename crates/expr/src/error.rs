//! Expression errors.

use std::fmt;

pub type Result<T, E = ExprError> = std::result::Result<T, E>;

/// Errors from binding or evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A column reference failed to resolve against the schema of its side.
    Bind { side: &'static str, inner: String },
    /// A runtime type error (e.g. adding a string to an int).
    Type {
        op: String,
        lhs: String,
        rhs: String,
    },
    /// Division or modulo by zero.
    DivideByZero,
    /// An expression referenced a side that is not available in this context
    /// (e.g. a detail column inside a base-only selection predicate).
    SideUnavailable(&'static str),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Bind { side, inner } => write!(f, "cannot bind {side} column: {inner}"),
            ExprError::Type { op, lhs, rhs } => {
                write!(f, "type error: cannot apply `{op}` to {lhs} and {rhs}")
            }
            ExprError::DivideByZero => write!(f, "division by zero"),
            ExprError::SideUnavailable(s) => {
                write!(f, "expression references unavailable side {s}")
            }
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ExprError::Type {
            op: "+".into(),
            lhs: "str".into(),
            rhs: "int".into(),
        };
        assert!(e.to_string().contains('+'));
        assert!(ExprError::DivideByZero.to_string().contains("zero"));
    }
}
