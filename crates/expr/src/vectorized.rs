//! Vectorized expression evaluation over columnar batches.
//!
//! [`eval_batch`] evaluates a [`BoundExpr`] against a whole
//! [`ColumnarChunk`] at once, returning typed arrays instead of per-row
//! [`Value`]s. It vectorizes only expression shapes that are *provably
//! equivalent* to the scalar interpreter and returns `None` for everything
//! else, so callers can always fall back to per-row evaluation:
//!
//! * Detail column references over typed columns; literals.
//! * Comparisons between numeric columns and numeric columns/literals,
//!   reproducing `sql_cmp` exactly: `Int × Int` stays in `i64`, cross-type
//!   goes through the exact [`cmp_int_float`] (no `as f64` precision loss
//!   above 2⁵³ — shared with the scalar interpreter so the two cannot
//!   diverge), any NULL operand yields `false`, and `Eq`/`Ne` against an
//!   incomparable non-null literal yield `false`/`true`.
//! * String comparisons against a string literal via the dictionary: the
//!   ordering of each distinct dictionary entry against the literal is
//!   computed once, then applied per row.
//! * `AND`/`OR`/`NOT` over boolean results. Eager evaluation is equivalent to
//!   the interpreter's short-circuit here because vectorizable subexpressions
//!   are total — `Div`/`Mod` (the only fallible scalar operators) never
//!   vectorize, which also preserves `AND(false, 1/0 = 1)` not erroring.
//! * `Add`/`Sub`/`Mul` over numeric columns/literals, mirroring scalar
//!   `arith`: `Int × Int` wraps in `i64`, anything else computes in `f64`,
//!   NULL propagates.
//!
//! Base-side column references never vectorize (a batch carries only detail
//! tuples), which is exactly right for the two places batches are used:
//! Theorem 4.2 prefilters (detail-only by construction) and hash-probe key
//! expressions (detail-only by `split_equalities`).

use crate::ast::{BinOp, Expr};
use crate::eval::{arith, compare, BoundExpr};
use mdj_storage::columnar::{Column, ColumnarChunk};
use mdj_storage::{cmp_int_float, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Result of evaluating an expression over a batch: one slot per row.
#[derive(Debug, Clone)]
pub enum BatchVals {
    Ints {
        vals: Vec<i64>,
        nulls: Vec<bool>,
    },
    Floats {
        vals: Vec<f64>,
        nulls: Vec<bool>,
    },
    Strs {
        codes: Vec<u32>,
        dict: Vec<Arc<str>>,
        nulls: Vec<bool>,
    },
    /// Predicate results. Scalar NULL/non-boolean predicate outcomes are
    /// already folded to `false`, mirroring `eval_bool`.
    Bools(Vec<bool>),
    /// Every row has this value (a literal or folded literal expression).
    Const(Value),
}

impl BatchVals {
    /// Materialize as a per-row predicate (`eval_bool` semantics: only
    /// `Bool(true)` passes). Total for every variant, so a vectorized
    /// predicate never needs the scalar path.
    pub fn to_selection(&self, len: usize) -> Vec<bool> {
        match self {
            BatchVals::Bools(b) => b.clone(),
            BatchVals::Const(v) => vec![matches!(v, Value::Bool(true)); len],
            // Non-boolean batch results are falsy per row, like eval_bool.
            _ => vec![false; len],
        }
    }
}

/// Collect the detail-side column positions an expression reads, setting
/// `needed[c] = true` for each. Used to decide which columns a
/// [`ColumnarChunk`] must materialize.
pub fn collect_detail_cols(expr: &BoundExpr, needed: &mut [bool]) {
    match expr {
        BoundExpr::RCol(i) => {
            if let Some(slot) = needed.get_mut(*i) {
                *slot = true;
            }
        }
        BoundExpr::BCol(_) | BoundExpr::Lit(_) => {}
        BoundExpr::Binary { lhs, rhs, .. } => {
            collect_detail_cols(lhs, needed);
            collect_detail_cols(rhs, needed);
        }
        BoundExpr::Not(e) => collect_detail_cols(e, needed),
    }
}

/// True if the expression references the base side anywhere (such
/// expressions can never evaluate against a detail-only batch).
pub fn uses_base(expr: &BoundExpr) -> bool {
    match expr {
        BoundExpr::BCol(_) => true,
        BoundExpr::RCol(_) | BoundExpr::Lit(_) => false,
        BoundExpr::Binary { lhs, rhs, .. } => uses_base(lhs) || uses_base(rhs),
        BoundExpr::Not(e) => uses_base(e),
    }
}

/// Substitute one base row's values for every `BCol` reference, producing a
/// detail-only expression. For a fixed base row `b`, a mixed residual
/// `θres(b, t)` becomes a function of `t` alone, which [`eval_batch`] can then
/// evaluate over a whole chunk in one pass instead of replaying every
/// candidate pair through the interpreter. Scalar evaluation of the bound
/// expression is identical to evaluating the original against `b` (a `BCol`
/// lookup returns exactly the value we inline as a literal).
pub fn bind_base(expr: &BoundExpr, b_row: &[Value]) -> BoundExpr {
    match expr {
        BoundExpr::BCol(i) => BoundExpr::Lit(b_row.get(*i).cloned().unwrap_or(Value::Null)),
        BoundExpr::RCol(_) | BoundExpr::Lit(_) => expr.clone(),
        BoundExpr::Binary { op, lhs, rhs } => BoundExpr::Binary {
            op: *op,
            lhs: Box::new(bind_base(lhs, b_row)),
            rhs: Box::new(bind_base(rhs, b_row)),
        },
        BoundExpr::Not(e) => BoundExpr::Not(Box::new(bind_base(e, b_row))),
    }
}

/// Plan-time upper bound on whether an expression *shape* can vectorize:
/// true iff it contains no `Div`/`Mod`, the only operators with no batch form
/// at any type. Column typing (mixed-type or boolean columns) can still force
/// a per-batch scalar fallback at runtime; `Auto`'s coverage cost model uses
/// this as the best estimate available before data is seen.
pub fn batchable_shape(expr: &Expr) -> bool {
    match expr {
        Expr::Col(_) | Expr::Lit(_) => true,
        Expr::Binary { op, lhs, rhs } => {
            !matches!(op, BinOp::Div | BinOp::Mod) && batchable_shape(lhs) && batchable_shape(rhs)
        }
        Expr::Not(e) => batchable_shape(e),
    }
}

/// [`batchable_shape`] for already-bound expressions. Executors use this to
/// decide which detail columns a chunk must materialize: an expression whose
/// shape can never batch would only ever see those columns discarded, so its
/// columns are not worth transposing. (Binding cannot change the operator
/// shape, only replace columns with literals, so the two predicates agree.)
pub fn batchable_bound_shape(expr: &BoundExpr) -> bool {
    match expr {
        BoundExpr::BCol(_) | BoundExpr::RCol(_) | BoundExpr::Lit(_) => true,
        BoundExpr::Binary { op, lhs, rhs } => {
            !matches!(op, BinOp::Div | BinOp::Mod)
                && batchable_bound_shape(lhs)
                && batchable_bound_shape(rhs)
        }
        BoundExpr::Not(e) => batchable_bound_shape(e),
    }
}

/// Evaluate `expr` over every row of `chunk`. Returns `None` when the
/// expression shape (or the batch's column data) has no vectorized form that
/// is exactly equivalent to the scalar interpreter; the caller then falls
/// back to per-row evaluation.
pub fn eval_batch(expr: &BoundExpr, chunk: &ColumnarChunk) -> Option<BatchVals> {
    let n = chunk.len();
    match expr {
        BoundExpr::BCol(_) => None,
        BoundExpr::RCol(i) => match chunk.column(*i) {
            Column::Int { vals, nulls } => Some(BatchVals::Ints {
                vals: vals.clone(),
                nulls: nulls.clone(),
            }),
            Column::Float { vals, nulls } => Some(BatchVals::Floats {
                vals: vals.clone(),
                nulls: nulls.clone(),
            }),
            Column::Str { codes, dict, nulls } => Some(BatchVals::Strs {
                codes: codes.clone(),
                dict: dict.clone(),
                nulls: nulls.clone(),
            }),
            Column::Absent | Column::Fallback => None,
        },
        BoundExpr::Lit(v) => Some(BatchVals::Const(v.clone())),
        BoundExpr::Not(e) => match eval_batch(e, chunk)? {
            BatchVals::Bools(mut b) => {
                for v in &mut b {
                    *v = !*v;
                }
                Some(BatchVals::Bools(b))
            }
            BatchVals::Const(v) => Some(BatchVals::Const(Value::Bool(!matches!(
                v,
                Value::Bool(true)
            )))),
            _ => None,
        },
        BoundExpr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => {
                let l = eval_batch(lhs, chunk)?;
                let r = eval_batch(rhs, chunk)?;
                let and = *op == BinOp::And;
                match (l, r) {
                    (BatchVals::Const(a), BatchVals::Const(b)) => {
                        let (a, b) = (truthy(&a), truthy(&b));
                        Some(BatchVals::Const(Value::Bool(if and {
                            a && b
                        } else {
                            a || b
                        })))
                    }
                    (BatchVals::Const(a), BatchVals::Bools(b))
                    | (BatchVals::Bools(b), BatchVals::Const(a)) => {
                        let a = truthy(&a);
                        let out = b
                            .into_iter()
                            .map(|v| if and { a && v } else { a || v })
                            .collect();
                        Some(BatchVals::Bools(out))
                    }
                    (BatchVals::Bools(a), BatchVals::Bools(b)) => {
                        let out = a
                            .into_iter()
                            .zip(b)
                            .map(|(x, y)| if and { x && y } else { x || y })
                            .collect();
                        Some(BatchVals::Bools(out))
                    }
                    _ => None,
                }
            }
            op if op.is_comparison() => {
                let l = eval_batch(lhs, chunk)?;
                let r = eval_batch(rhs, chunk)?;
                compare_batch(*op, l, r, n)
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let l = eval_batch(lhs, chunk)?;
                let r = eval_batch(rhs, chunk)?;
                arith_batch(*op, l, r, n)
            }
            // Div/Mod can raise DivideByZero (and Mod type errors): keep
            // them — and anything containing them — on the scalar path so
            // short-circuit error behavior is preserved.
            _ => None,
        },
    }
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Dispatch a comparison operator ONCE per batch: each arm binds `$t` to a
/// distinct monomorphizing closure over [`Ordering`], so the per-row loops in
/// the body inline a fixed test with no operator branch left inside the loop
/// — the shape LLVM autovectorizes. (The old code matched on `op` per
/// element, which blocked vectorization of every comparison loop.)
macro_rules! dispatch_cmp {
    ($op:expr, |$t:ident| $body:expr) => {
        match $op {
            BinOp::Eq => {
                let $t = |o: Ordering| o == Ordering::Equal;
                $body
            }
            BinOp::Ne => {
                let $t = |o: Ordering| o != Ordering::Equal;
                $body
            }
            BinOp::Lt => {
                let $t = |o: Ordering| o == Ordering::Less;
                $body
            }
            BinOp::Le => {
                let $t = |o: Ordering| o != Ordering::Greater;
                $body
            }
            BinOp::Gt => {
                let $t = |o: Ordering| o == Ordering::Greater;
                $body
            }
            BinOp::Ge => {
                let $t = |o: Ordering| o != Ordering::Less;
                $body
            }
            _ => unreachable!("comparison dispatch on non-comparison"),
        }
    };
}

/// Same trick for `Add`/`Sub`/`Mul`: bind monomorphized int/float operators
/// once per batch instead of matching on `op` inside every element closure.
macro_rules! dispatch_arith {
    ($op:expr, |$i:ident, $f:ident| $body:expr) => {
        match $op {
            BinOp::Add => {
                let $i = |a: i64, b: i64| a.wrapping_add(b);
                let $f = |a: f64, b: f64| a + b;
                $body
            }
            BinOp::Sub => {
                let $i = |a: i64, b: i64| a.wrapping_sub(b);
                let $f = |a: f64, b: f64| a - b;
                $body
            }
            _ => {
                let $i = |a: i64, b: i64| a.wrapping_mul(b);
                let $f = |a: f64, b: f64| a * b;
                $body
            }
        }
    };
}

/// Mirror of the comparison's argument order: `a OP b` ⇔ `b FLIP(OP) a`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn compare_batch(op: BinOp, l: BatchVals, r: BatchVals, n: usize) -> Option<BatchVals> {
    use BatchVals::*;
    dispatch_cmp!(op, |t| match (l, r) {
        (Const(a), Const(b)) => Some(Const(compare(op, &a, &b))),
        // Normalize const-on-the-left to const-on-the-right.
        (Const(a), other) => compare_batch(flip(op), other, Const(a), n),
        (Ints { vals, nulls }, Const(c)) => Some(Bools(match &c {
            Value::Int(k) => vals
                .iter()
                .zip(&nulls)
                .map(|(v, &null)| !null & t(v.cmp(k)))
                .collect(),
            Value::Float(f) => vals
                .iter()
                .zip(&nulls)
                .map(|(v, &null)| !null & t(cmp_int_float(*v, *f)))
                .collect(),
            // NULL literal: always false. Incomparable non-null literal:
            // Ne is true for non-null rows, everything else false.
            Value::Null => vec![false; n],
            _ if op == BinOp::Ne => nulls.iter().map(|&null| !null).collect(),
            _ => vec![false; n],
        })),
        (Floats { vals, nulls }, Const(c)) => Some(Bools(match &c {
            Value::Int(k) => vals
                .iter()
                .zip(&nulls)
                .map(|(v, &null)| !null & t(cmp_int_float(*k, *v).reverse()))
                .collect(),
            Value::Float(f) => vals
                .iter()
                .zip(&nulls)
                .map(|(v, &null)| !null & t(v.total_cmp(f)))
                .collect(),
            Value::Null => vec![false; n],
            _ if op == BinOp::Ne => nulls.iter().map(|&null| !null).collect(),
            _ => vec![false; n],
        })),
        (Strs { codes, dict, nulls }, Const(c)) => Some(Bools(match &c {
            Value::Str(s) => {
                // One comparison per distinct dictionary entry, then a table
                // lookup per row.
                let verdicts: Vec<bool> =
                    dict.iter().map(|d| t(d.as_ref().cmp(s.as_ref()))).collect();
                codes
                    .iter()
                    .zip(&nulls)
                    .map(|(&code, &null)| !null & verdicts[code as usize])
                    .collect()
            }
            Value::Null => vec![false; n],
            _ if op == BinOp::Ne => nulls.iter().map(|&null| !null).collect(),
            _ => vec![false; n],
        })),
        (Ints { vals: a, nulls: an }, Ints { vals: b, nulls: bn }) => Some(Bools(
            a.iter()
                .zip(&b)
                .zip(an.iter().zip(&bn))
                .map(|((x, y), (&xn, &yn))| !xn & !yn & t(x.cmp(y)))
                .collect(),
        )),
        (Floats { vals: a, nulls: an }, Floats { vals: b, nulls: bn }) => Some(Bools(
            a.iter()
                .zip(&b)
                .zip(an.iter().zip(&bn))
                .map(|((x, y), (&xn, &yn))| !xn & !yn & t(x.total_cmp(y)))
                .collect(),
        )),
        (Ints { vals: a, nulls: an }, Floats { vals: b, nulls: bn }) => Some(Bools(
            a.iter()
                .zip(&b)
                .zip(an.iter().zip(&bn))
                .map(|((x, y), (&xn, &yn))| !xn & !yn & t(cmp_int_float(*x, *y)))
                .collect(),
        )),
        (Floats { vals: a, nulls: an }, Ints { vals: b, nulls: bn }) => Some(Bools(
            a.iter()
                .zip(&b)
                .zip(an.iter().zip(&bn))
                .map(|((x, y), (&xn, &yn))| !xn & !yn & t(cmp_int_float(*y, *x).reverse()))
                .collect(),
        )),
        // Str×Str (two detail columns), Bool batches, etc.: scalar fallback.
        _ => None,
    })
}

fn arith_batch(op: BinOp, l: BatchVals, r: BatchVals, n: usize) -> Option<BatchVals> {
    use BatchVals::*;
    dispatch_arith!(op, |int_op, float_op| match (l, r) {
        (Const(a), Const(b)) => arith(op, &a, &b).ok().map(Const),
        (Ints { vals, nulls }, Const(c)) | (Const(c), Ints { vals, nulls })
            if matches!(op, BinOp::Add | BinOp::Mul) || matches!(c, Value::Null) =>
        {
            // Commutative ops (and NULL, which annihilates regardless of
            // side) let both orders share one arm.
            match c {
                Value::Null => Some(Ints {
                    vals: vec![0; n],
                    nulls: vec![true; n],
                }),
                Value::Int(k) => Some(Ints {
                    vals: vals.iter().map(|&v| int_op(v, k)).collect(),
                    nulls,
                }),
                Value::Float(f) => Some(Floats {
                    vals: vals.iter().map(|&v| float_op(v as f64, f)).collect(),
                    nulls,
                }),
                _ => None,
            }
        }
        (Ints { vals, nulls }, Const(c)) => match c {
            // Non-commutative Sub, column on the left.
            Value::Int(k) => Some(Ints {
                vals: vals.iter().map(|&v| int_op(v, k)).collect(),
                nulls,
            }),
            Value::Float(f) => Some(Floats {
                vals: vals.iter().map(|&v| float_op(v as f64, f)).collect(),
                nulls,
            }),
            _ => None,
        },
        (Const(c), Ints { vals, nulls }) => match c {
            Value::Int(k) => Some(Ints {
                vals: vals.iter().map(|&v| int_op(k, v)).collect(),
                nulls,
            }),
            Value::Float(f) => Some(Floats {
                vals: vals.iter().map(|&v| float_op(f, v as f64)).collect(),
                nulls,
            }),
            _ => None,
        },
        (Floats { vals, nulls }, Const(c)) => match c {
            Value::Null => Some(Ints {
                vals: vec![0; n],
                nulls: vec![true; n],
            }),
            Value::Int(k) => Some(Floats {
                vals: vals.iter().map(|&v| float_op(v, k as f64)).collect(),
                nulls,
            }),
            Value::Float(f) => Some(Floats {
                vals: vals.iter().map(|&v| float_op(v, f)).collect(),
                nulls,
            }),
            _ => None,
        },
        (Const(c), Floats { vals, nulls }) => match c {
            Value::Null => Some(Ints {
                vals: vec![0; n],
                nulls: vec![true; n],
            }),
            Value::Int(k) => Some(Floats {
                vals: vals.iter().map(|&v| float_op(k as f64, v)).collect(),
                nulls,
            }),
            Value::Float(f) => Some(Floats {
                vals: vals.iter().map(|&v| float_op(f, v)).collect(),
                nulls,
            }),
            _ => None,
        },
        (Ints { vals: a, nulls: an }, Ints { vals: b, nulls: bn }) => Some(Ints {
            vals: a.iter().zip(&b).map(|(&x, &y)| int_op(x, y)).collect(),
            nulls: an.iter().zip(&bn).map(|(&x, &y)| x || y).collect(),
        }),
        (Floats { vals: a, nulls: an }, Floats { vals: b, nulls: bn }) => Some(Floats {
            vals: a.iter().zip(&b).map(|(&x, &y)| float_op(x, y)).collect(),
            nulls: an.iter().zip(&bn).map(|(&x, &y)| x || y).collect(),
        }),
        (Ints { vals: a, nulls: an }, Floats { vals: b, nulls: bn }) => Some(Floats {
            vals: a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| float_op(x as f64, y))
                .collect(),
            nulls: an.iter().zip(&bn).map(|(&x, &y)| x || y).collect(),
        }),
        (Floats { vals: a, nulls: an }, Ints { vals: b, nulls: bn }) => Some(Floats {
            vals: a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| float_op(x, y as f64))
                .collect(),
            nulls: an.iter().zip(&bn).map(|(&x, &y)| x || y).collect(),
        }),
        // String/bool operands would be scalar type errors: fall back so the
        // interpreter raises them (or short-circuits around them) exactly as
        // before.
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use mdj_storage::{DataType, Row, Schema};

    fn r_schema() -> Schema {
        Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
            ("state", DataType::Str),
        ])
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            Row::new(vec![
                Value::Int(1),
                Value::Int(3),
                Value::Float(10.0),
                Value::str("NY"),
            ]),
            Row::new(vec![
                Value::Int(2),
                Value::Null,
                Value::Float(20.0),
                Value::str("CA"),
            ]),
            Row::new(vec![
                Value::Int(1),
                Value::Int(4),
                Value::Null,
                Value::str("NY"),
            ]),
        ]
    }

    fn chunk() -> ColumnarChunk {
        ColumnarChunk::from_rows(&sample_rows(), 0, 3, &[true, true, true, true])
    }

    /// Every vectorized result must equal the interpreter row by row.
    fn assert_matches_scalar(expr: &crate::ast::Expr) {
        let bound = expr.bind(None, Some(&r_schema())).unwrap();
        let chunk = chunk();
        let batch = eval_batch(&bound, &chunk).expect("expected vectorized form");
        let sel = batch.to_selection(chunk.len());
        for (i, row) in sample_rows().iter().enumerate() {
            assert_eq!(
                sel[i],
                bound.eval_bool(&[], row.values()).unwrap(),
                "row {i} diverged for {expr:?}"
            );
        }
    }

    #[test]
    fn int_equality_and_null_rows() {
        assert_matches_scalar(&eq(col_r("month"), lit(3i64)));
        assert_matches_scalar(&ne(col_r("month"), lit(3i64)));
        assert_matches_scalar(&lt(col_r("cust"), lit(2i64)));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_matches_scalar(&gt(col_r("sale"), lit(15i64)));
        assert_matches_scalar(&le(col_r("cust"), lit(1.5f64)));
    }

    #[test]
    fn string_dictionary_comparison() {
        assert_matches_scalar(&eq(col_r("state"), lit("NY")));
        assert_matches_scalar(&ne(col_r("state"), lit("NY")));
        assert_matches_scalar(&eq(col_r("state"), lit("TX"))); // absent from dict
        assert_matches_scalar(&gt(col_r("state"), lit("CA")));
        // Incomparable literal: Eq false, Ne true on non-null rows.
        assert_matches_scalar(&eq(col_r("state"), lit(3i64)));
        assert_matches_scalar(&ne(col_r("state"), lit(3i64)));
    }

    #[test]
    fn conjunction_and_negation() {
        assert_matches_scalar(&and(
            eq(col_r("state"), lit("NY")),
            gt(col_r("sale"), lit(5i64)),
        ));
        assert_matches_scalar(&or(
            eq(col_r("cust"), lit(2i64)),
            eq(col_r("month"), lit(4i64)),
        ));
        assert_matches_scalar(&not(eq(col_r("state"), lit("NY"))));
    }

    #[test]
    fn arithmetic_in_comparisons() {
        // month = cust + 2 (Int×Int stays integral).
        assert_matches_scalar(&eq(col_r("month"), add(col_r("cust"), lit(2i64))));
        // sale * 2 > 25 (Float path).
        assert_matches_scalar(&gt(mul(col_r("sale"), lit(2i64)), lit(25i64)));
        // Sub is non-commutative both ways.
        assert_matches_scalar(&eq(sub(col_r("month"), lit(1i64)), lit(2i64)));
        assert_matches_scalar(&eq(sub(lit(5i64), col_r("cust")), lit(4i64)));
    }

    #[test]
    fn int_arithmetic_stays_in_i64() {
        // Values above 2^53 are indistinguishable in f64; i64 math must not go
        // through floats.
        let rows = vec![
            Row::new(vec![Value::Int(i64::MAX - 1)]),
            Row::new(vec![Value::Int(i64::MAX)]),
        ];
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let chunk = ColumnarChunk::from_rows(&rows, 0, 2, &[true]);
        let expr = eq(col_r("x"), lit(i64::MAX))
            .bind(None, Some(&schema))
            .unwrap();
        let sel = eval_batch(&expr, &chunk).unwrap().to_selection(2);
        assert_eq!(sel, vec![false, true]);
        // Wrapping add matches the interpreter.
        let expr = eq(add(col_r("x"), lit(1i64)), lit(i64::MIN))
            .bind(None, Some(&schema))
            .unwrap();
        let sel = eval_batch(&expr, &chunk).unwrap().to_selection(2);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(sel[i], expr.eval_bool(&[], row.values()).unwrap());
        }
    }

    #[test]
    fn cross_type_comparison_is_exact_above_2_53() {
        // (2⁵³+1 as f64) rounds down to 2⁵³ and (i64::MAX as f64) rounds up
        // to 2⁶³; the lossy cast made both spuriously Equal.
        let p53 = 1i64 << 53;
        let rows = vec![
            Row::new(vec![Value::Int(p53 + 1), Value::Float(p53 as f64)]),
            Row::new(vec![Value::Int(i64::MAX), Value::Float(i64::MAX as f64)]),
        ];
        let schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Float)]);
        let chunk = ColumnarChunk::from_rows(&rows, 0, 2, &[true, true]);
        let check = |expr: &crate::ast::Expr, expect: [bool; 2]| {
            let bound = expr.bind(None, Some(&schema)).unwrap();
            let sel = eval_batch(&bound, &chunk)
                .expect("vectorized form")
                .to_selection(2);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(
                    sel[i],
                    bound.eval_bool(&[], row.values()).unwrap(),
                    "row {i} diverged from scalar for {expr:?}"
                );
                assert_eq!(sel[i], expect[i], "row {i} wrong for {expr:?}");
            }
        };
        // Int column vs Float literal and Float column vs Int literal.
        check(&eq(col_r("x"), lit(p53 as f64)), [false, false]);
        check(&gt(col_r("x"), lit(p53 as f64)), [true, true]);
        check(&eq(col_r("y"), lit(p53 + 1)), [false, false]);
        check(&lt(col_r("y"), lit(p53 + 1)), [true, false]);
        check(&gt(col_r("y"), lit(i64::MAX)), [false, true]);
        // Int column vs Float column (both in the same chunk).
        check(&eq(col_r("x"), col_r("y")), [false, false]);
        check(&gt(col_r("x"), col_r("y")), [true, false]);
        check(&lt(col_r("x"), col_r("y")), [false, true]);
    }

    #[test]
    fn bind_base_inlines_base_row() {
        let schema = r_schema();
        let theta = and(
            ge(col_r("sale"), col_b("cust")),
            eq(col_r("state"), lit("NY")),
        );
        let bound = theta.bind(Some(&schema), Some(&schema)).unwrap();
        let b_row = [
            Value::Int(15),
            Value::Int(1),
            Value::Float(0.0),
            Value::str("CA"),
        ];
        let inlined = bind_base(&bound, &b_row);
        assert!(!uses_base(&inlined));
        for row in sample_rows() {
            assert_eq!(
                inlined.eval_bool(&[], row.values()).unwrap(),
                bound.eval_bool(&b_row, row.values()).unwrap()
            );
        }
        // And the inlined form vectorizes where the original could not.
        assert!(eval_batch(&bound, &chunk()).is_none());
        assert!(eval_batch(&inlined, &chunk()).is_some());
    }

    #[test]
    fn batchable_shape_rejects_div_mod_only() {
        assert!(batchable_shape(&eq(col_b("cust"), col_r("cust"))));
        assert!(batchable_shape(&not(gt(
            add(col_r("sale"), lit(1i64)),
            mul(col_r("cust"), lit(2i64))
        ))));
        assert!(!batchable_shape(&eq(
            div(col_r("sale"), lit(2i64)),
            lit(5i64)
        )));
        assert!(!batchable_shape(&and(
            lit(true),
            eq(modulo(col_r("cust"), lit(2i64)), lit(0i64))
        )));
    }

    #[test]
    fn div_mod_and_base_refs_fall_back() {
        let schema = r_schema();
        let c = chunk();
        let e = eq(div(col_r("sale"), lit(2i64)), lit(5i64))
            .bind(None, Some(&schema))
            .unwrap();
        assert!(eval_batch(&e, &c).is_none());
        let e = eq(modulo(col_r("cust"), lit(2i64)), lit(0i64))
            .bind(None, Some(&schema))
            .unwrap();
        assert!(eval_batch(&e, &c).is_none());
        let e = eq(col_b("cust"), col_r("cust"))
            .bind(Some(&schema), Some(&schema))
            .unwrap();
        assert!(eval_batch(&e, &c).is_none());
        // A conjunction containing a fallible branch must also fall back,
        // preserving short-circuit error semantics.
        let e = and(lit(false), eq(div(lit(1i64), lit(0i64)), lit(1i64)))
            .bind(None, Some(&schema))
            .unwrap();
        assert!(eval_batch(&e, &c).is_none());
    }

    #[test]
    fn fallback_column_disables_vectorization() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Bool(true)]),
            Row::new(vec![Value::Float(2.0), Value::Bool(false)]),
        ];
        let chunk = ColumnarChunk::from_rows(&rows, 0, 2, &[true, true]);
        let schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Bool)]);
        let e = eq(col_r("x"), lit(1i64)).bind(None, Some(&schema)).unwrap();
        assert!(eval_batch(&e, &chunk).is_none()); // mixed Int/Float column
    }

    #[test]
    fn collect_detail_cols_and_uses_base() {
        let schema = r_schema();
        let e = and(eq(col_r("state"), lit("NY")), gt(col_r("sale"), lit(5i64)))
            .bind(None, Some(&schema))
            .unwrap();
        let mut needed = vec![false; 4];
        collect_detail_cols(&e, &mut needed);
        assert_eq!(needed, vec![false, false, true, true]);
        assert!(!uses_base(&e));
        let e = eq(col_b("cust"), col_r("cust"))
            .bind(Some(&schema), Some(&schema))
            .unwrap();
        assert!(uses_base(&e));
    }
}
