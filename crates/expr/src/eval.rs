//! Binding and evaluation.
//!
//! Algorithm 3.1 evaluates θ once per (detail tuple × candidate base row), so
//! evaluation must not re-resolve column names. [`BoundExpr`] is the compiled
//! form: column references are replaced by positions at bind time, and
//! evaluation is a straight tree walk over `&[Value]` slices.

use crate::ast::{BinOp, Expr, Side};
use crate::error::{ExprError, Result};
use mdj_storage::{Schema, Value};
use std::cmp::Ordering;

/// An expression with column references resolved to positions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    BCol(usize),
    RCol(usize),
    Lit(Value),
    Binary {
        op: BinOp,
        lhs: Box<BoundExpr>,
        rhs: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
}

impl Expr {
    /// Bind against both sides' schemas. Pass `None` for a side the context
    /// does not provide; referencing it is then a bind error.
    pub fn bind(&self, b: Option<&Schema>, r: Option<&Schema>) -> Result<BoundExpr> {
        match self {
            Expr::Col(c) => {
                let (schema, side) = match c.side {
                    Side::Base => (b, "B"),
                    Side::Detail => (r, "R"),
                };
                let schema = schema.ok_or(ExprError::SideUnavailable(side))?;
                let idx = schema.index_of(&c.name).map_err(|e| ExprError::Bind {
                    side,
                    inner: e.to_string(),
                })?;
                Ok(match c.side {
                    Side::Base => BoundExpr::BCol(idx),
                    Side::Detail => BoundExpr::RCol(idx),
                })
            }
            Expr::Lit(v) => Ok(BoundExpr::Lit(v.clone())),
            Expr::Binary { op, lhs, rhs } => Ok(BoundExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.bind(b, r)?),
                rhs: Box::new(rhs.bind(b, r)?),
            }),
            Expr::Not(e) => Ok(BoundExpr::Not(Box::new(e.bind(b, r)?))),
        }
    }

    /// Bind an expression that references only the detail side (σ predicates
    /// on `R`, Theorem 4.2).
    pub fn bind_detail_only(&self, r: &Schema) -> Result<BoundExpr> {
        self.bind(None, Some(r))
    }

    /// Bind an expression that references only the base side.
    pub fn bind_base_only(&self, b: &Schema) -> Result<BoundExpr> {
        self.bind(Some(b), None)
    }
}

pub(crate) fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let type_err = || ExprError::Type {
        op: op.symbol().to_string(),
        lhs: l.type_name().to_string(),
        rhs: r.type_name().to_string(),
    };
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    BinOp::Add => a.wrapping_add(*b),
                    BinOp::Sub => a.wrapping_sub(*b),
                    _ => a.wrapping_mul(*b),
                };
                Ok(Value::Int(v))
            }
            _ => {
                let (a, b) = (
                    l.as_float().ok_or_else(type_err)?,
                    r.as_float().ok_or_else(type_err)?,
                );
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    _ => a * b,
                };
                Ok(Value::Float(v))
            }
        },
        BinOp::Div => {
            let (a, b) = (
                l.as_float().ok_or_else(type_err)?,
                r.as_float().ok_or_else(type_err)?,
            );
            if b == 0.0 {
                return Err(ExprError::DivideByZero);
            }
            Ok(Value::Float(a / b))
        }
        BinOp::Mod => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(ExprError::DivideByZero)
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            _ => Err(type_err()),
        },
        _ => unreachable!("arith called with non-arithmetic op"),
    }
}

pub(crate) fn compare(op: BinOp, l: &Value, r: &Value) -> Value {
    // SQL semantics: a comparison with NULL (or incomparable types) is false.
    // Exception: Eq/Ne between non-null values of incomparable type is a plain
    // "not equal" rather than an error, so θs like `state = 'NY'` stay total.
    match l.sql_cmp(r) {
        Some(ord) => {
            let b = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
        None => {
            if l.is_null() || r.is_null() {
                Value::Bool(false)
            } else {
                match op {
                    BinOp::Eq => Value::Bool(false),
                    BinOp::Ne => Value::Bool(true),
                    _ => Value::Bool(false),
                }
            }
        }
    }
}

impl BoundExpr {
    /// Evaluate against a pair of rows (`b`, `r`). Either slice may be empty
    /// when the corresponding side is unused (binding guarantees no access).
    pub fn eval(&self, b: &[Value], r: &[Value]) -> Result<Value> {
        match self {
            BoundExpr::BCol(i) => Ok(b[*i].clone()),
            BoundExpr::RCol(i) => Ok(r[*i].clone()),
            BoundExpr::Lit(v) => Ok(v.clone()),
            BoundExpr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    // Short-circuit: the common θ shape is a conjunction whose
                    // first conjunct (the equality) usually fails.
                    if !lhs.eval_bool(b, r)? {
                        return Ok(Value::Bool(false));
                    }
                    Ok(Value::Bool(rhs.eval_bool(b, r)?))
                }
                BinOp::Or => {
                    if lhs.eval_bool(b, r)? {
                        return Ok(Value::Bool(true));
                    }
                    Ok(Value::Bool(rhs.eval_bool(b, r)?))
                }
                op if op.is_comparison() => {
                    let l = lhs.eval(b, r)?;
                    let rv = rhs.eval(b, r)?;
                    Ok(compare(*op, &l, &rv))
                }
                op => {
                    let l = lhs.eval(b, r)?;
                    let rv = rhs.eval(b, r)?;
                    arith(*op, &l, &rv)
                }
            },
            BoundExpr::Not(e) => Ok(Value::Bool(!e.eval_bool(b, r)?)),
        }
    }

    /// Evaluate as a predicate: `true` only for `Bool(true)`. NULL and
    /// non-boolean results are false, mirroring SQL WHERE semantics.
    pub fn eval_bool(&self, b: &[Value], r: &[Value]) -> Result<bool> {
        Ok(matches!(self.eval(b, r)?, Value::Bool(true)))
    }

    /// Evaluate with only a detail row (base side unused).
    pub fn eval_detail(&self, r: &[Value]) -> Result<Value> {
        self.eval(&[], r)
    }

    /// Evaluate with only a base row (detail side unused).
    pub fn eval_base(&self, b: &[Value]) -> Result<Value> {
        self.eval(b, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use mdj_storage::DataType;

    fn b_schema() -> Schema {
        Schema::from_pairs(&[("cust", DataType::Int), ("month", DataType::Int)])
    }

    fn r_schema() -> Schema {
        Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
            ("state", DataType::Str),
        ])
    }

    fn bvals(c: i64, m: i64) -> Vec<Value> {
        vec![Value::Int(c), Value::Int(m)]
    }

    fn rvals(c: i64, m: i64, s: f64, st: &str) -> Vec<Value> {
        vec![
            Value::Int(c),
            Value::Int(m),
            Value::Float(s),
            Value::str(st),
        ]
    }

    #[test]
    fn example_2_5_previous_month_theta() {
        // Sales.cust = cust AND Sales.month = month - 1
        let theta = and(
            eq(col_r("cust"), col_b("cust")),
            eq(col_r("month"), sub(col_b("month"), lit(1i64))),
        );
        let bound = theta.bind(Some(&b_schema()), Some(&r_schema())).unwrap();
        assert!(bound
            .eval_bool(&bvals(7, 5), &rvals(7, 4, 10.0, "NY"))
            .unwrap());
        assert!(!bound
            .eval_bool(&bvals(7, 5), &rvals(7, 5, 10.0, "NY"))
            .unwrap());
        assert!(!bound
            .eval_bool(&bvals(8, 5), &rvals(7, 4, 10.0, "NY"))
            .unwrap());
    }

    #[test]
    fn string_equality_theta() {
        let theta = eq(col_r("state"), lit("NY"));
        let bound = theta.bind(None, Some(&r_schema())).unwrap();
        assert!(bound.eval_bool(&[], &rvals(1, 1, 1.0, "NY")).unwrap());
        assert!(!bound.eval_bool(&[], &rvals(1, 1, 1.0, "CA")).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let e = add(lit(2i64), mul(lit(3i64), lit(4i64)));
        let b = e.bind(None, None).unwrap();
        assert_eq!(b.eval(&[], &[]).unwrap(), Value::Int(14));
        let e = div(lit(7i64), lit(2i64));
        let b = e.bind(None, None).unwrap();
        assert_eq!(b.eval(&[], &[]).unwrap(), Value::Float(3.5));
        let e = modulo(lit(-7i64), lit(3i64));
        let b = e.bind(None, None).unwrap();
        assert_eq!(b.eval(&[], &[]).unwrap(), Value::Int(2)); // rem_euclid
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        let b = div(lit(1i64), lit(0i64)).bind(None, None).unwrap();
        assert_eq!(b.eval(&[], &[]), Err(ExprError::DivideByZero));
        let b = modulo(lit(1i64), lit(0i64)).bind(None, None).unwrap();
        assert_eq!(b.eval(&[], &[]), Err(ExprError::DivideByZero));
    }

    #[test]
    fn null_propagates_through_arithmetic_and_fails_predicates() {
        let e = gt(add(col_r("sale"), lit(1i64)), lit(0i64));
        let bound = e.bind(None, Some(&r_schema())).unwrap();
        let mut row = rvals(1, 1, 1.0, "NY");
        row[2] = Value::Null;
        assert!(!bound.eval_bool(&[], &row).unwrap());
    }

    #[test]
    fn comparisons_between_incompatible_types() {
        let e = eq(col_r("state"), lit(3i64));
        let bound = e.bind(None, Some(&r_schema())).unwrap();
        assert!(!bound.eval_bool(&[], &rvals(1, 1, 1.0, "NY")).unwrap());
        let e = ne(col_r("state"), lit(3i64));
        let bound = e.bind(None, Some(&r_schema())).unwrap();
        assert!(bound.eval_bool(&[], &rvals(1, 1, 1.0, "NY")).unwrap());
    }

    #[test]
    fn and_or_short_circuit() {
        // Right side would divide by zero; AND must not evaluate it.
        let e = and(lit(false), eq(div(lit(1i64), lit(0i64)), lit(1i64)));
        let b = e.bind(None, None).unwrap();
        assert!(!b.eval_bool(&[], &[]).unwrap());
        let e = or(lit(true), eq(div(lit(1i64), lit(0i64)), lit(1i64)));
        let b = e.bind(None, None).unwrap();
        assert!(b.eval_bool(&[], &[]).unwrap());
    }

    #[test]
    fn not_negates() {
        let e = not(lit(false));
        assert!(e.bind(None, None).unwrap().eval_bool(&[], &[]).unwrap());
    }

    #[test]
    fn bind_errors() {
        let e = col_b("missing");
        assert!(matches!(
            e.bind(Some(&b_schema()), None),
            Err(ExprError::Bind { side: "B", .. })
        ));
        let e = col_r("cust");
        assert_eq!(e.bind(None, None), Err(ExprError::SideUnavailable("R")));
    }

    #[test]
    fn all_value_comparisons() {
        // ALL = ALL is true; ALL = 3 is false (Eq between incomparables).
        let e = eq(lit(Value::All), lit(Value::All));
        assert!(e.bind(None, None).unwrap().eval_bool(&[], &[]).unwrap());
        let e = eq(lit(Value::All), lit(3i64));
        assert!(!e.bind(None, None).unwrap().eval_bool(&[], &[]).unwrap());
    }

    #[test]
    fn wrapping_add_does_not_panic() {
        let e = add(lit(i64::MAX), lit(1i64));
        let v = e.bind(None, None).unwrap().eval(&[], &[]).unwrap();
        assert_eq!(v, Value::Int(i64::MIN));
    }
}
