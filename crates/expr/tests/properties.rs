//! Property-based tests: the θ decompositions are *semantic* equivalences,
//! not just syntactic rearrangements.

use mdj_expr::analysis::{conjuncts, extract_range, probe_bindings, split_theta};
use mdj_expr::builder::*;
use mdj_expr::{BinOp, Expr};
use mdj_storage::{DataType, Schema, Value};
use proptest::prelude::*;

fn b_schema() -> Schema {
    Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)])
}

fn r_schema() -> Schema {
    Schema::from_pairs(&[
        ("x", DataType::Int),
        ("y", DataType::Int),
        ("v", DataType::Int),
    ])
}

/// Random conjunctions mixing equalities (bare and shifted), inequalities,
/// and detail-only predicates.
fn theta_strategy() -> impl Strategy<Value = Expr> {
    let conjunct = prop_oneof![
        Just(eq(col_b("x"), col_r("x"))),
        Just(eq(col_b("y"), col_r("y"))),
        Just(eq(col_b("y"), add(col_r("y"), lit(1i64)))),
        Just(eq(col_r("y"), sub(col_b("y"), lit(1i64)))),
        (-5i64..5).prop_map(|c| gt(col_r("v"), lit(c))),
        (-5i64..5).prop_map(|c| le(col_r("v"), lit(c))),
        (-5i64..5).prop_map(|c| ge(col_b("x"), lit(c))),
        Just(lt(col_b("x"), col_r("v"))),
    ];
    proptest::collection::vec(conjunct, 1..5).prop_map(and_all)
}

fn row_strategy(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec((-4i64..4).prop_map(Value::Int), n..=n)
}

fn eval(theta: &Expr, b: &[Value], r: &[Value]) -> bool {
    theta
        .bind(Some(&b_schema()), Some(&r_schema()))
        .unwrap()
        .eval_bool(b, r)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// split_theta: residual ∧ detail-predicate ≡ original θ.
    #[test]
    fn split_theta_is_semantic_identity(
        theta in theta_strategy(),
        b in row_strategy(2),
        r in row_strategy(3),
    ) {
        let split = split_theta(&theta);
        let recombined = match split.detail_predicate() {
            Some(d) => and(split.residual(), d),
            None => split.residual(),
        };
        prop_assert_eq!(eval(&theta, &b, &r), eval(&recombined, &b, &r));
    }

    /// probe_bindings: (⋀ B.col = fᵢ(r)) ∧ residual ≡ original θ.
    #[test]
    fn probe_bindings_are_semantic_identity(
        theta in theta_strategy(),
        b in row_strategy(2),
        r in row_strategy(3),
    ) {
        let (bindings, residual) = probe_bindings(&theta);
        let rebuilt = and_all(
            bindings
                .iter()
                .map(|bi| eq(col_b(bi.base_col.clone()), bi.detail_expr.clone()))
                .chain(residual.iter().cloned()),
        );
        prop_assert_eq!(eval(&theta, &b, &r), eval(&rebuilt, &b, &r));
    }

    /// Binding detail expressions never reference the base side.
    #[test]
    fn probe_bindings_detail_exprs_are_detail_only(theta in theta_strategy()) {
        let (bindings, _) = probe_bindings(&theta);
        for bi in bindings {
            prop_assert!(!bi.detail_expr.uses_side(mdj_expr::Side::Base));
        }
    }

    /// extract_range: (range membership) ∧ rest ≡ original conjunct set.
    #[test]
    fn extract_range_is_semantic_identity(
        bounds in proptest::collection::vec((prop_oneof![
            Just(BinOp::Lt), Just(BinOp::Le), Just(BinOp::Gt), Just(BinOp::Ge), Just(BinOp::Eq)
        ], -4i64..4), 1..4),
        v in -6i64..6,
    ) {
        let conjs: Vec<Expr> = bounds
            .iter()
            .map(|(op, c)| Expr::Binary {
                op: *op,
                lhs: Box::new(col_r("v")),
                rhs: Box::new(lit(*c)),
            })
            .collect();
        let (range, rest) = extract_range(&conjs, "v");
        let val = Value::Int(v);
        let original: bool = conjs.iter().all(|c| {
            c.bind(None, Some(&r_schema()))
                .unwrap()
                .eval_bool(&[], &[Value::Int(0), Value::Int(0), val.clone()])
                .unwrap()
        });
        let in_range = match &range {
            None => true,
            Some(rg) => {
                let lower_ok = match &rg.lower {
                    std::ops::Bound::Unbounded => true,
                    std::ops::Bound::Included(l) => val >= *l,
                    std::ops::Bound::Excluded(l) => val > *l,
                };
                let upper_ok = match &rg.upper {
                    std::ops::Bound::Unbounded => true,
                    std::ops::Bound::Included(u) => val <= *u,
                    std::ops::Bound::Excluded(u) => val < *u,
                };
                lower_ok && upper_ok
            }
        };
        let rest_ok: bool = rest.iter().all(|c| {
            c.bind(None, Some(&r_schema()))
                .unwrap()
                .eval_bool(&[], &[Value::Int(0), Value::Int(0), val.clone()])
                .unwrap()
        });
        prop_assert_eq!(original, in_range && rest_ok);
    }

    /// conjuncts/and_all: flattening then conjoining is semantically the
    /// identity.
    #[test]
    fn conjuncts_roundtrip(
        theta in theta_strategy(),
        b in row_strategy(2),
        r in row_strategy(3),
    ) {
        let rebuilt = and_all(conjuncts(&theta));
        prop_assert_eq!(eval(&theta, &b, &r), eval(&rebuilt, &b, &r));
    }

    /// Comparison flip law: a (op) b ≡ b (flip op) a.
    #[test]
    fn comparison_flip_law(
        op in prop_oneof![
            Just(BinOp::Lt), Just(BinOp::Le), Just(BinOp::Gt), Just(BinOp::Ge),
            Just(BinOp::Eq), Just(BinOp::Ne)
        ],
        a in -5i64..5,
        c in -5i64..5,
    ) {
        let forward = Expr::Binary {
            op,
            lhs: Box::new(lit(a)),
            rhs: Box::new(lit(c)),
        };
        let flipped = Expr::Binary {
            op: op.flip(),
            lhs: Box::new(lit(c)),
            rhs: Box::new(lit(a)),
        };
        let f = forward.bind(None, None).unwrap().eval_bool(&[], &[]).unwrap();
        let g = flipped.bind(None, None).unwrap().eval_bool(&[], &[]).unwrap();
        prop_assert_eq!(f, g);
    }
}
