//! Property tests for the fused generalized MD-join: the batch k-θ executor
//! (`ExecStrategy::Vectorized` with `.blocks(..)`) must be *row-identical* —
//! down to `f64` bit patterns — to both the serial Theorem 4.3 single-scan
//! loop and a sequence of k independent single MD-joins, across NULL-heavy
//! mixed-type data, condition sets the batch layer covers (equality, hashed
//! prefilters, vectorized non-equi nested loops) and sets it cannot (Div/Mod
//! shapes that delegate per batch), for batch sizes 1/7/4096. Work accounting
//! (one shared scan, per-block probes and updates) must match the serial
//! generalized run exactly. Building with `--features simd` only swaps the
//! kernel reduction internals, so the same sweep pins the intrinsic paths.

use mdj_core::prelude::*;
use mdj_expr::builder::div;
use proptest::prelude::*;
use std::sync::Arc;

/// Detail rows over small domains with NULL-heavy nullable columns:
/// `(k Int, m Int, v Int?, f Float?, s Str)`. Mirrors the single-block
/// vectorized sweep so regressions localize to the fused layer.
fn detail_strategy() -> impl Strategy<Value = Relation> {
    // The low third of each nullable column's domain maps to NULL.
    let row = (0i64..6, 0i64..5, -75i64..50, -16i64..8, 0u8..3);
    proptest::collection::vec(row, 0..60).prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("m", DataType::Int),
            ("v", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
        ]);
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(k, m, v, f, s)| {
                    Row::new(vec![
                        Value::Int(k),
                        Value::Int(m),
                        if v < -50 { Value::Null } else { Value::Int(v) },
                        if f < -8 {
                            Value::Null
                        } else {
                            Value::Float(f as f64 * 0.5)
                        },
                        Value::str(["NY", "NJ", "CA"][s as usize]),
                    ])
                })
                .collect(),
        )
    })
}

/// Base rows over a wider key domain than the detail side, so some base rows
/// always have an empty `Rel(t)` in every condition set.
fn base_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set((0i64..8, 0i64..6, 0u8..4), 0..12).prop_map(|keys| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("m", DataType::Int),
            ("s", DataType::Str),
        ]);
        Relation::from_rows(
            schema,
            keys.into_iter()
                .map(|(k, m, s)| {
                    Row::new(vec![
                        Value::Int(k),
                        Value::Int(m),
                        Value::str(["NY", "NJ", "CA", "TX"][s as usize]),
                    ])
                })
                .collect(),
        )
    })
}

/// θ shapes for one condition set. Indexes 0..=5 are batch-covered (hash
/// keys, vectorized prefilters, the vectorized non-equi nested loop); 6..=7
/// contain `Div`, which the batch layer refuses by shape and delegates to
/// the scalar interpreter per batch.
fn theta_pool(which: u8) -> Expr {
    match which {
        0 => eq(col_b("k"), col_r("k")),
        1 => and(eq(col_b("k"), col_r("k")), eq(col_r("s"), lit("NY"))),
        2 => and(eq(col_b("s"), col_r("s")), gt(col_r("v"), lit(0i64))),
        3 => le(col_b("k"), col_r("m")),
        4 => and(le(col_b("k"), col_r("m")), ge(col_r("f"), col_b("m"))),
        5 => Expr::always_true(),
        6 => and(
            eq(col_b("k"), col_r("k")),
            gt(div(col_r("v"), lit(2i64)), lit(3i64)),
        ),
        _ => le(col_b("k"), div(col_r("v"), lit(2i64))),
    }
}

/// Aggregates for block `i`, aliased so the k blocks' output columns never
/// collide: typed Int/Float kernels, the scalar string path, and a holistic
/// median exercising the kernel-less (per-batch `fallback_agg`) path.
fn block_aggs(i: usize) -> Vec<AggSpec> {
    vec![
        AggSpec::count_star().with_alias(format!("n_{i}")),
        AggSpec::on_column("sum", "v").with_alias(format!("sum_v_{i}")),
        AggSpec::on_column("avg", "f").with_alias(format!("avg_f_{i}")),
        AggSpec::on_column("min", "s").with_alias(format!("min_s_{i}")),
        AggSpec::on_column("median", "v").with_alias(format!("med_v_{i}")),
    ]
}

fn blocks_strategy() -> impl Strategy<Value = Vec<Block>> {
    proptest::collection::vec(0u8..8, 1..4).prop_map(|shapes| {
        shapes
            .into_iter()
            .enumerate()
            .map(|(i, which)| Block::new(theta_pool(which), block_aggs(i)))
            .collect()
    })
}

/// Row equality down to `f64` bit patterns: `Value::Float` cells must carry
/// the *same bits*, not merely compare `==` — the fused executor promises the
/// serial accumulation order, so even rounding must agree.
fn assert_rows_bit_identical(
    expected: &Relation,
    got: &Relation,
    ctx: &str,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(expected.len(), got.len(), "row count ({})", ctx);
    for (i, (er, gr)) in expected.iter().zip(got.iter()).enumerate() {
        prop_assert_eq!(
            er.values().len(),
            gr.values().len(),
            "row {} width ({})",
            i,
            ctx
        );
        for (j, (ev, gv)) in er.values().iter().zip(gr.values().iter()).enumerate() {
            match (ev, gv) {
                (Value::Float(a), Value::Float(b)) => {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "row {} col {} float bits ({})",
                        i,
                        j,
                        ctx
                    );
                }
                _ => prop_assert_eq!(ev, gv, "row {} col {} ({})", i, j, ctx),
            }
        }
    }
    Ok(())
}

fn run_blocks(
    b: &Relation,
    r: &Relation,
    blocks: &[Block],
    strategy: ExecStrategy,
    batch: usize,
    stats: Arc<ScanStats>,
) -> Relation {
    MdJoin::new(b, r)
        .blocks(blocks.iter().cloned())
        .strategy(strategy)
        .threads(1)
        .run(&ExecContext::new().with_morsel_size(batch).with_stats(stats))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused batch executor reproduces the serial generalized run
    /// bit-for-bit at every batch size, with identical scan/tuple/probe/
    /// update accounting and one shared scan of R, and every condition set
    /// accounted in `gen_sets`.
    #[test]
    fn fused_equals_serial_generalized(
        b in base_strategy(),
        r in detail_strategy(),
        blocks in blocks_strategy(),
    ) {
        let serial_stats = Arc::new(ScanStats::new());
        let expected = run_blocks(&b, &r, &blocks, ExecStrategy::Serial, 64, serial_stats.clone());
        for batch in [1usize, 7, 4096] {
            let stats = Arc::new(ScanStats::new());
            let got = run_blocks(&b, &r, &blocks, ExecStrategy::Vectorized, batch, stats.clone());
            assert_rows_bit_identical(&expected, &got, &format!("batch={batch}"))?;
            prop_assert_eq!(serial_stats.scans(), stats.scans());
            prop_assert_eq!(serial_stats.tuples_scanned(), stats.tuples_scanned());
            prop_assert_eq!(serial_stats.probes(), stats.probes());
            prop_assert_eq!(serial_stats.updates(), stats.updates());
            // A single-set `.blocks()` call routes through the ordinary
            // single-join executor, which does not tally `gen_sets`.
            if blocks.len() > 1 {
                prop_assert_eq!(stats.gen_sets(), blocks.len() as u64);
                prop_assert!(stats.gen_set_fallbacks() <= stats.gen_sets());
            } else {
                prop_assert_eq!(stats.gen_sets(), 0);
            }
            if !r.is_empty() && !b.is_empty() {
                prop_assert!(stats.batches() > 0, "batch={}", batch);
            }
        }
    }

    /// The fused run equals k independent single MD-joins: block i's
    /// aggregate columns in the generalized output match the standalone
    /// serial MD-join over (θᵢ, lᵢ) bit-for-bit.
    #[test]
    fn fused_equals_sequential_single_joins(
        b in base_strategy(),
        r in detail_strategy(),
        blocks in blocks_strategy(),
    ) {
        let fused = run_blocks(
            &b, &r, &blocks, ExecStrategy::Vectorized, 7, Arc::new(ScanStats::new()),
        );
        let mut col = b.schema().len();
        for (bi, blk) in blocks.iter().enumerate() {
            let single = MdJoin::new(&b, &r)
                .aggs(&blk.aggs)
                .theta(blk.theta.clone())
                .strategy(ExecStrategy::Serial)
                .run(&ExecContext::new())
                .unwrap();
            prop_assert_eq!(single.len(), fused.len());
            for (i, (sr, fr)) in single.iter().zip(fused.iter()).enumerate() {
                for (j, sv) in sr.values()[b.schema().len()..].iter().enumerate() {
                    let fv = &fr[col + j];
                    match (sv, fv) {
                        (Value::Float(a), Value::Float(x)) => prop_assert_eq!(
                            a.to_bits(), x.to_bits(),
                            "block {} row {} agg {} float bits", bi, i, j
                        ),
                        _ => prop_assert_eq!(sv, fv, "block {} row {} agg {}", bi, i, j),
                    }
                }
            }
            col += blk.aggs.len();
        }
    }

    /// `Auto` over multi-block queries (summed per-block coverage) always
    /// reproduces the serial answer, whichever executor it picks.
    #[test]
    fn auto_generalized_preserves_the_answer(
        b in base_strategy(),
        r in detail_strategy(),
        blocks in blocks_strategy(),
    ) {
        let expected = run_blocks(&b, &r, &blocks, ExecStrategy::Serial, 64, Arc::new(ScanStats::new()));
        let got = run_blocks(&b, &r, &blocks, ExecStrategy::Auto, 16, Arc::new(ScanStats::new()));
        assert_rows_bit_identical(&expected, &got, "auto")?;
    }

    /// A condition set the batch layer cannot cover (Div in θ) delegates
    /// *only itself*: covered sets in the same query still run batched with
    /// zero fallbacks, and the uncovered set is tallied in
    /// `gen_set_fallbacks` while the answer stays bit-identical.
    #[test]
    fn uncovered_set_delegates_only_itself(
        b in base_strategy(),
        r in detail_strategy(),
        covered_shape in 0u8..6,
    ) {
        let blocks = vec![
            Block::new(theta_pool(covered_shape), block_aggs(0)),
            Block::new(theta_pool(7), block_aggs(1)),
        ];
        let expected = run_blocks(&b, &r, &blocks, ExecStrategy::Serial, 64, Arc::new(ScanStats::new()));
        let stats = Arc::new(ScanStats::new());
        let got = run_blocks(&b, &r, &blocks, ExecStrategy::Vectorized, 7, stats.clone());
        assert_rows_bit_identical(&expected, &got, "mixed coverage")?;
        prop_assert_eq!(stats.gen_sets(), 2);
        if !r.is_empty() {
            // `batches` tallies per (chunk × set): the covered set's share
            // never falls back, the Div set's share always does.
            prop_assert_eq!(stats.gen_set_fallbacks(), 1);
            prop_assert_eq!(stats.batch_fallbacks() * 2, stats.batches());
            prop_assert_eq!(stats.fallback_theta(), stats.batch_fallbacks());
        }
    }
}
