//! Integration tests for the query governor: cooperative cancellation,
//! wall-clock deadlines, and memory budgets with Theorem 4.1 degradation —
//! exercised through the public [`MdJoin`] builder across *every*
//! [`ExecStrategy`], because each strategy has its own poll sites and its own
//! allocations to charge.

use mdj_core::governor::{index_bytes, state_bytes};
use mdj_core::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn sales(rows: usize) -> Relation {
    let schema = Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("month", DataType::Int),
        ("sale", DataType::Float),
    ]);
    let data = (0..rows)
        .map(|i| {
            Row::from_values(vec![
                Value::Int((i % 23) as i64),
                Value::Int((i % 12) as i64),
                Value::Float((i % 97) as f64),
            ])
        })
        .collect();
    Relation::from_rows(schema, data)
}

fn base_of(r: &Relation) -> Relation {
    basevalues::group_by(r, &["cust"]).unwrap()
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("sum", "sale"),
        AggSpec::on_column("avg", "sale"),
    ]
}

fn theta() -> Expr {
    eq(col_b("cust"), col_r("cust"))
}

/// Every strategy the builder can plan, including both morsel sides.
fn all_strategies() -> Vec<ExecStrategy> {
    vec![
        ExecStrategy::Auto,
        ExecStrategy::Serial,
        ExecStrategy::Partitioned { partitions: 3 },
        ExecStrategy::ChunkBase,
        ExecStrategy::ChunkDetail,
        ExecStrategy::Morsel,
        ExecStrategy::MorselBase,
        ExecStrategy::MorselDetail,
    ]
}

fn join<'a>(b: &'a Relation, r: &'a Relation, strategy: ExecStrategy) -> MdJoin<'a> {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(theta())
        .strategy(strategy)
        .threads(2)
}

// ---------------------------------------------------------------- cancellation

#[test]
fn pre_cancelled_token_stops_every_strategy() {
    let r = sales(2_000);
    let b = base_of(&r);
    for strategy in all_strategies() {
        let token = CancelToken::new();
        token.cancel();
        let err = join(&b, &r, strategy)
            .cancel_token(token)
            .run(&ExecContext::new())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::Cancelled),
            "{strategy:?} returned {err:?}, want Cancelled"
        );
    }
}

#[test]
fn cancellation_errors_are_typed_and_classified() {
    let err = CoreError::Cancelled;
    assert!(err.is_governor());
    assert_eq!(err.to_string(), "query cancelled");
}

/// Cancelling from another thread mid-run stops the query: either the cancel
/// lands while the scan is still going (typed error) or the query finishes
/// first (small inputs are legitimately fast) — it must never hang or panic.
#[test]
fn mid_run_cancel_is_either_clean_result_or_typed_error() {
    let r = sales(50_000);
    let b = base_of(&r);
    for strategy in [ExecStrategy::Serial, ExecStrategy::Morsel] {
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(200));
                token.cancel();
            })
        };
        let result = join(&b, &r, strategy)
            .cancel_token(token)
            .run(&ExecContext::new());
        canceller.join().unwrap();
        match result {
            Ok(rel) => assert_eq!(rel.len(), b.len()),
            Err(CoreError::Cancelled) => {}
            Err(other) => panic!("{strategy:?}: unexpected error {other:?}"),
        }
    }
}

// ------------------------------------------------------------------- deadlines

#[test]
fn expired_deadline_stops_every_strategy() {
    let r = sales(2_000);
    let b = base_of(&r);
    for strategy in all_strategies() {
        let err = join(&b, &r, strategy)
            .deadline(Duration::ZERO)
            .run(&ExecContext::new())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::DeadlineExceeded),
            "{strategy:?} returned {err:?}, want DeadlineExceeded"
        );
    }
}

#[test]
fn generous_deadline_changes_nothing() {
    let r = sales(3_000);
    let b = base_of(&r);
    let expected = join(&b, &r, ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    for strategy in all_strategies() {
        let got = join(&b, &r, strategy)
            .deadline(Duration::from_secs(3600))
            .run(&ExecContext::new())
            .unwrap();
        assert!(
            expected.same_multiset(&got),
            "{strategy:?} output differs under a generous deadline"
        );
    }
}

#[test]
fn governor_polls_are_counted_in_stats_and_explain_surface() {
    let r = sales(5_000);
    let b = base_of(&r);
    let stats = Arc::new(ScanStats::new());
    let ctx = ExecContext::new()
        .with_stats(stats.clone())
        .with_deadline(Duration::from_secs(3600));
    join(&b, &r, ExecStrategy::Serial).run(&ctx).unwrap();
    assert!(stats.cancel_polls() > 0, "serial scan never polled");
    let snap = stats.snapshot();
    assert!(snap.governor_active());
    assert!(snap.to_string().contains("governor:"));
}

// -------------------------------------------------- budgets + Theorem 4.1

/// Estimated per-base-row footprint of this query (state + hash index).
fn per_row() -> usize {
    state_bytes(1, specs().len()) + index_bytes(1)
}

#[test]
fn budget_breach_degrades_into_partitioned_evaluation() {
    let r = sales(4_000);
    let b = base_of(&r); // 23 base rows
    let expected = join(&b, &r, ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();

    // Room for ~5 of 23 base rows: serial must breach, then re-plan with
    // Theorem 4.1 partitions until each piece fits.
    let stats = Arc::new(ScanStats::new());
    let ctx = ExecContext::new().with_stats(stats.clone());
    let got = join(&b, &r, ExecStrategy::Serial)
        .budget_bytes(5 * per_row())
        .run(&ctx)
        .unwrap();

    assert_eq!(
        expected.rows(),
        got.rows(),
        "degraded run must be row-identical to the unbudgeted serial run"
    );
    assert!(
        stats.degradations() >= 1,
        "no degradation event recorded: {}",
        stats.snapshot()
    );
    assert!(
        stats.scans() > 1,
        "Theorem 4.1 trades memory for extra scans of R; got {}",
        stats.scans()
    );
}

#[test]
fn budget_degradation_works_from_auto_and_partitioned_plans() {
    let r = sales(4_000);
    let b = base_of(&r);
    let expected = join(&b, &r, ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    for strategy in [
        ExecStrategy::Auto,
        ExecStrategy::Partitioned { partitions: 2 },
    ] {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        let got = join(&b, &r, strategy)
            .budget_bytes(5 * per_row())
            .run(&ctx)
            .unwrap();
        assert!(
            expected.same_multiset(&got),
            "{strategy:?} under budget differs from serial"
        );
        assert!(
            stats.degradations() >= 1,
            "{strategy:?} never degraded under a 5-row budget"
        );
    }
}

#[test]
fn impossible_budget_is_a_typed_error() {
    let r = sales(500);
    let b = base_of(&r);
    // One byte cannot hold even a single-row partition: degradation runs out
    // of partitions to add and surfaces the breach.
    let err = join(&b, &r, ExecStrategy::Serial)
        .budget_bytes(1)
        .run(&ExecContext::new())
        .unwrap_err();
    match err {
        CoreError::BudgetExceeded { needed, budget } => {
            assert_eq!(budget, 1);
            assert!(needed > 1);
            assert!(err.is_governor());
        }
        other => panic!("want BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn ample_budget_changes_nothing_for_any_strategy() {
    let r = sales(3_000);
    let b = base_of(&r);
    let expected = join(&b, &r, ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    for strategy in all_strategies() {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        let got = join(&b, &r, strategy)
            .budget_bytes(1 << 30)
            .run(&ctx)
            .unwrap();
        assert!(
            expected.same_multiset(&got),
            "{strategy:?} output differs under an ample budget"
        );
        assert_eq!(
            stats.degradations(),
            0,
            "{strategy:?} degraded under an ample budget"
        );
        assert!(
            stats.bytes_charged() > 0,
            "{strategy:?} charged nothing against the tracker"
        );
    }
}

// ------------------------------------------------- spill accounting invariants

/// Spilling degradation (`SpillPolicy::Always`) under a tight budget: the
/// answer is row-identical to serial, the accounting invariants hold —
/// nothing stays charged, nothing reads more than was written — and the
/// spill counters reach the `EXPLAIN ANALYZE` surface.
#[test]
fn spill_degradation_conserves_accounting_and_surfaces_counters() {
    let r = sales(4_000);
    let b = base_of(&r); // 23 base rows
    let expected = join(&b, &r, ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    let dir = std::env::temp_dir().join(format!("mdj-governor-spill-{}", std::process::id()));
    let stats = Arc::new(ScanStats::new());
    let ctx = ExecContext::new()
        .with_budget_bytes(5 * per_row())
        .with_spill_policy(SpillPolicy::Always)
        .with_spill_dir(&dir)
        .with_stats(stats.clone());
    let got = join(&b, &r, ExecStrategy::Serial).run(&ctx).unwrap();
    assert_eq!(
        expected.rows(),
        got.rows(),
        "spilling run must be row-identical to the unbudgeted serial run"
    );
    assert!(stats.spill_partitions() > 0, "Always policy never spilled");
    assert!(stats.spill_read_bytes() > 0);
    // Conservation: no attempt reads more than it wrote (an attempt aborted
    // by a skewed-bucket breach drops its remaining run files unread, so
    // spilled can strictly exceed read across retries)...
    assert!(stats.bytes_spilled() >= stats.spill_read_bytes());
    // ...and every charged byte is released by the end of the query.
    assert_eq!(ctx.memory().unwrap().charged(), 0);
    assert!(stats.bytes_charged() > 0);
    // Counters reach the EXPLAIN ANALYZE surface.
    let snap = stats.snapshot();
    assert!(snap.spill_active());
    let rendered = snap.to_string();
    assert!(
        rendered.contains("spill:"),
        "missing spill line: {rendered}"
    );
    // RAII: the spill directory holds no run files after the query.
    if let Ok(entries) = std::fs::read_dir(&dir) {
        assert_eq!(entries.count(), 0, "leaked run files");
    }
    let _ = std::fs::remove_dir(&dir);
}

/// Exact `bytes_spilled == spill_read_bytes` conservation holds whenever
/// the first spill attempt succeeds (one degradation, no skew retry). Scan
/// budgets from generous to tight and pin the invariant on every such run.
#[test]
fn single_attempt_spill_reads_back_every_byte_written() {
    let r = sales(4_000);
    let b = base_of(&r);
    let expected = join(&b, &r, ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    let dir = std::env::temp_dir().join(format!("mdj-governor-spill1-{}", std::process::id()));
    let mut pinned = 0;
    for mult in [20, 14, 10, 7, 5, 3] {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_spill_policy(SpillPolicy::Always)
            .with_spill_dir(&dir)
            .with_stats(stats.clone());
        let got = join(&b, &r, ExecStrategy::Serial)
            .budget_bytes(mult * per_row())
            .run(&ctx)
            .unwrap();
        assert_eq!(expected.rows(), got.rows(), "budget {mult}×per_row");
        if stats.spill_partitions() > 0 && stats.degradations() == 1 {
            assert_eq!(
                stats.bytes_spilled(),
                stats.spill_read_bytes(),
                "single-attempt spill at {mult}×per_row must read back every byte"
            );
            pinned += 1;
        }
    }
    assert!(
        pinned > 0,
        "no budget in the grid produced a single-attempt spilling run"
    );
    let _ = std::fs::remove_dir(&dir);
}

/// `SpillPolicy::Never` forces rescan degradation: same answer, more scans,
/// and the spill counters stay at zero.
#[test]
fn never_policy_degrades_by_rescan_only() {
    let r = sales(4_000);
    let b = base_of(&r);
    let expected = join(&b, &r, ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    let stats = Arc::new(ScanStats::new());
    let ctx = ExecContext::new()
        .with_spill_policy(SpillPolicy::Never)
        .with_stats(stats.clone());
    let got = join(&b, &r, ExecStrategy::Serial)
        .budget_bytes(5 * per_row())
        .run(&ctx)
        .unwrap();
    assert_eq!(expected.rows(), got.rows());
    assert!(stats.degradations() >= 1);
    assert!(stats.scans() > 1, "rescan degradation re-scans R");
    assert_eq!(stats.spill_partitions(), 0);
    assert_eq!(stats.bytes_spilled(), 0);
    assert_eq!(stats.spill_read_bytes(), 0);
    assert!(!stats.snapshot().spill_active());
}

// --------------------------------------------------------- builder overrides

#[test]
fn builder_overrides_leave_the_callers_context_untouched() {
    let r = sales(1_000);
    let b = base_of(&r);
    let ctx = ExecContext::new();
    join(&b, &r, ExecStrategy::Serial)
        .budget_bytes(1 << 30)
        .deadline(Duration::from_secs(3600))
        .cancel_token(CancelToken::new())
        .run(&ctx)
        .unwrap();
    assert!(ctx.memory().is_none());
    assert!(ctx.deadline().is_none());
    assert!(ctx.cancel().is_none());
}

#[test]
fn generalized_blocks_respect_the_governor() {
    let r = sales(2_000);
    let b = base_of(&r);
    let blocks = vec![
        Block::new(theta(), vec![AggSpec::on_column("sum", "sale")]),
        Block::new(
            and(theta(), le(col_r("month"), lit(5i64))),
            vec![AggSpec::count_star()],
        ),
    ];
    let token = CancelToken::new();
    token.cancel();
    let err = MdJoin::new(&b, &r)
        .blocks(blocks.clone())
        .cancel_token(token)
        .run(&ExecContext::new())
        .unwrap_err();
    assert!(matches!(err, CoreError::Cancelled));

    let err = MdJoin::new(&b, &r)
        .blocks(blocks)
        .deadline(Duration::ZERO)
        .run(&ExecContext::new())
        .unwrap_err();
    assert!(matches!(err, CoreError::DeadlineExceeded));
}
