//! Property tests for the morsel-driven executor: its output must be
//! *row-identical* (same rows, same order) to the serial Algorithm 3.1 run,
//! for every thread count, morsel size, scheduling side, and θ shape — the
//! scheduler may only change who does the work, never the answer. Exercised
//! through the public [`MdJoin`] builder, as all executors now are.

use mdj_core::prelude::*;
use mdj_expr::builder::add;
use proptest::prelude::*;

fn detail_strategy() -> impl Strategy<Value = Relation> {
    // (k, m, v) rows with small domains so groups collide.
    proptest::collection::vec((0i64..6, 0i64..5, -50i64..50), 0..60).prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("m", DataType::Int),
            ("v", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(k, m, v)| Row::from_values([k, m, v]))
                .collect(),
        )
    })
}

fn base_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set((0i64..6, 0i64..5), 0..12).prop_map(|keys| {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("m", DataType::Int)]);
        Relation::from_rows(
            schema,
            keys.into_iter()
                .map(|(k, m)| Row::from_values([k, m]))
                .collect(),
        )
    })
}

/// Equi, computed-key, pure-inequality, and wildcard θ shapes: the morsel
/// executor must not care whether the probe is a hash or a nested loop.
fn theta_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(eq(col_b("k"), col_r("k"))),
        Just(and(eq(col_b("k"), col_r("k")), eq(col_b("m"), col_r("m")))),
        Just(and(
            eq(col_b("k"), col_r("k")),
            eq(col_b("m"), add(col_r("m"), lit(1i64)))
        )),
        Just(le(col_b("m"), col_r("m"))),
        Just(Expr::always_true()),
    ]
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("sum", "v"),
        AggSpec::on_column("avg", "v"),
        AggSpec::on_column("min", "v"),
        AggSpec::on_column("median", "v"), // holistic: exercises state merge
    ]
}

fn serial(b: &Relation, r: &Relation, theta: &Expr, ctx: &ExecContext) -> Relation {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(ctx)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Morsel output is row-identical to serial for every (threads, morsel
    /// size, side) combination — including morsels of a single row and
    /// morsels larger than the input.
    #[test]
    fn morsel_equals_serial_row_identical(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
    ) {
        let expected = serial(&b, &r, &theta, &ExecContext::new());
        for threads in [1usize, 2, 8] {
            for morsel in [1usize, 7, 4096] {
                for side in [ExecStrategy::MorselBase, ExecStrategy::MorselDetail] {
                    let ctx = ExecContext::new().with_morsel_size(morsel);
                    let got = MdJoin::new(&b, &r)
                        .aggs(&specs())
                        .theta(theta.clone())
                        .strategy(side)
                        .threads(threads)
                        .run(&ctx)
                        .unwrap();
                    prop_assert_eq!(
                        expected.rows(),
                        got.rows(),
                        "threads={} morsel={} side={:?}",
                        threads,
                        morsel,
                        side
                    );
                }
            }
        }
    }

    /// The Auto strategy (what the optimizer's `Plan::Parallel` node uses)
    /// also reproduces the serial answer.
    #[test]
    fn auto_morsel_equals_serial(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
        threads in 1usize..9,
    ) {
        let expected = serial(&b, &r, &theta, &ExecContext::new());
        let got = MdJoin::new(&b, &r)
            .aggs(&specs())
            .theta(theta.clone())
            .strategy(ExecStrategy::Morsel)
            .threads(threads)
            .run(&ExecContext::new())
            .unwrap();
        prop_assert_eq!(expected.rows(), got.rows());
    }
}

/// Deterministic edge cases: empty B, empty R, and single-row inputs under
/// aggressive morsel settings.
#[test]
fn empty_inputs_across_thread_and_morsel_grid() {
    let schema_b = Schema::from_pairs(&[("k", DataType::Int), ("m", DataType::Int)]);
    let schema_r = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("m", DataType::Int),
        ("v", DataType::Int),
    ]);
    let b = Relation::from_rows(
        schema_b.clone(),
        (0..4).map(|k| Row::from_values([k, k % 2])).collect(),
    );
    let r = Relation::from_rows(
        schema_r.clone(),
        (0..20)
            .map(|i| Row::from_values([i % 4, i % 2, i]))
            .collect(),
    );
    let theta = eq(col_b("k"), col_r("k"));
    for threads in [1usize, 2, 8] {
        for morsel in [1usize, 7, 4096] {
            for side in [ExecStrategy::MorselBase, ExecStrategy::MorselDetail] {
                let ctx = ExecContext::new().with_morsel_size(morsel);
                let run = |b: &Relation, r: &Relation| {
                    MdJoin::new(b, r)
                        .aggs(&[AggSpec::count_star()])
                        .theta(theta.clone())
                        .strategy(side)
                        .threads(threads)
                        .run(&ctx)
                        .unwrap()
                };
                // Empty B → empty output (|output| = |B| always).
                let out = run(&Relation::empty(schema_b.clone()), &r);
                assert!(
                    out.is_empty(),
                    "threads={threads} morsel={morsel} side={side:?}"
                );
                // Empty R → every base row survives with count 0.
                let out = run(&b, &Relation::empty(schema_r.clone()));
                assert_eq!(out.len(), b.len());
                assert!(out.rows().iter().all(|row| row[2] == Value::Int(0)));
                // Single-row inputs.
                let b1 = Relation::from_rows(schema_b.clone(), vec![Row::from_values([0i64, 0])]);
                let r1 =
                    Relation::from_rows(schema_r.clone(), vec![Row::from_values([0i64, 0, 7])]);
                let out = run(&b1, &r1);
                assert_eq!(out.len(), 1);
                assert_eq!(out.rows()[0][2], Value::Int(1));
            }
        }
    }
}
