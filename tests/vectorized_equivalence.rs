//! Property tests for vectorized batch execution: `ExecStrategy::Vectorized`
//! must be *row-identical* (same rows, same order) to the serial Algorithm
//! 3.1 run across randomized θ shapes — single-key equality (the batched
//! fast path), multi-key and computed keys, mixed base/detail residuals, and
//! non-equi θ that falls back to the nested loop — over NULL-heavy,
//! mixed-type data, for base rows with empty `Rel(t)`, and under
//! memory-budget degradation. Batching may only change how the work is done,
//! never the answer.

use mdj_core::prelude::*;
use mdj_expr::builder::add;
use proptest::prelude::*;
use std::sync::Arc;

/// Detail rows over small domains with NULL-heavy nullable columns:
/// `(k Int, m Int, v Int?, f Float?, s Str)`.
fn detail_strategy() -> impl Strategy<Value = Relation> {
    // Nullability is encoded in the value range: the low third of each
    // nullable column's domain maps to NULL (~33% NULLs).
    let row = (0i64..6, 0i64..5, -75i64..50, -16i64..8, 0u8..3);
    proptest::collection::vec(row, 0..60).prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("m", DataType::Int),
            ("v", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
        ]);
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(k, m, v, f, s)| {
                    Row::new(vec![
                        Value::Int(k),
                        Value::Int(m),
                        if v < -50 { Value::Null } else { Value::Int(v) },
                        if f < -8 {
                            Value::Null
                        } else {
                            Value::Float(f as f64 * 0.5)
                        },
                        Value::str(["NY", "NJ", "CA"][s as usize]),
                    ])
                })
                .collect(),
        )
    })
}

/// Base rows over a *wider* key domain than the detail side, so some base
/// rows always have an empty `Rel(t)`. The string column draws from a
/// superset of the detail side's state codes for the same reason.
fn base_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set((0i64..8, 0i64..6, 0u8..4), 0..12).prop_map(|keys| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("m", DataType::Int),
            ("s", DataType::Str),
        ]);
        Relation::from_rows(
            schema,
            keys.into_iter()
                .map(|(k, m, s)| {
                    Row::new(vec![
                        Value::Int(k),
                        Value::Int(m),
                        Value::str(["NY", "NJ", "CA", "TX"][s as usize]),
                    ])
                })
                .collect(),
        )
    })
}

/// θ shapes spanning every batch-execution regime: the single-Int-key fast
/// path, dictionary-coded string keys, multi-key probing (all-int and
/// int+string), computed keys over a NULL-able column, vectorized string/int
/// prefilters, mixed residuals that reference both sides, and non-equi
/// conditions with no hash form at all.
fn theta_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(eq(col_b("k"), col_r("k"))),
        Just(eq(col_b("s"), col_r("s"))),
        Just(and(eq(col_b("k"), col_r("k")), eq(col_b("m"), col_r("m")))),
        Just(and(eq(col_b("k"), col_r("k")), eq(col_b("s"), col_r("s")))),
        Just(eq(col_b("k"), add(col_r("m"), col_r("v")))),
        Just(and(eq(col_b("k"), col_r("k")), eq(col_r("s"), lit("NY")))),
        Just(and(eq(col_b("k"), col_r("k")), gt(col_r("v"), lit(0i64)))),
        Just(and(eq(col_b("k"), col_r("k")), ge(col_r("f"), col_b("m")))),
        Just(le(col_b("k"), col_r("m"))),
        Just(Expr::always_true()),
    ]
}

/// Kernel-covered aggregates over every column type (typed Int/Float kernel
/// paths, the scalar `update_value` path for strings) plus a holistic median
/// exercising the boxed-state path.
fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("count", "v"),
        AggSpec::on_column("sum", "v"),
        AggSpec::on_column("avg", "f"),
        AggSpec::on_column("max", "f"),
        AggSpec::on_column("min", "s"),
        AggSpec::on_column("median", "v"),
    ]
}

fn serial(b: &Relation, r: &Relation, theta: &Expr) -> Relation {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vectorized output is row-identical to serial for every batch size and
    /// thread count — batches of one row, batches that split the input
    /// unevenly, and batches larger than the input — with work accounting
    /// (scans, tuples, probes, updates) identical to the scalar run.
    #[test]
    fn vectorized_equals_serial_row_identical(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
    ) {
        let serial_stats = Arc::new(ScanStats::new());
        let expected = MdJoin::new(&b, &r)
            .aggs(&specs())
            .theta(theta.clone())
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new().with_stats(serial_stats.clone()))
            .unwrap();
        for threads in [1usize, 4] {
            for batch in [1usize, 7, 4096] {
                let stats = Arc::new(ScanStats::new());
                let ctx = ExecContext::new()
                    .with_morsel_size(batch)
                    .with_stats(stats.clone());
                let got = MdJoin::new(&b, &r)
                    .aggs(&specs())
                    .theta(theta.clone())
                    .strategy(ExecStrategy::Vectorized)
                    .threads(threads)
                    .run(&ctx)
                    .unwrap();
                prop_assert_eq!(
                    expected.rows(),
                    got.rows(),
                    "threads={} batch={}",
                    threads,
                    batch
                );
                if !r.is_empty() && !b.is_empty() {
                    prop_assert!(stats.batches() > 0, "threads={} batch={}", threads, batch);
                }
                // Single-threaded runs share the serial evaluator's exact
                // accounting contract (parallel runs may re-scan per morsel).
                if threads == 1 {
                    prop_assert_eq!(serial_stats.scans(), stats.scans());
                    prop_assert_eq!(serial_stats.tuples_scanned(), stats.tuples_scanned());
                    prop_assert_eq!(serial_stats.probes(), stats.probes());
                    prop_assert_eq!(serial_stats.updates(), stats.updates());
                }
            }
        }
    }

    /// Under a tight memory budget the vectorized plan degrades into
    /// Theorem 4.1 partitioned evaluation and still reproduces the serial
    /// answer row-for-row.
    #[test]
    fn vectorized_survives_budget_degradation(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
    ) {
        let expected = serial(&b, &r, &theta);
        // Enough for roughly two base rows of state+index+growth: forces
        // degradation on most inputs, satisfiable even at one-row partitions.
        let got = MdJoin::new(&b, &r)
            .aggs(&specs())
            .theta(theta.clone())
            .strategy(ExecStrategy::Vectorized)
            .threads(1)
            .budget_bytes(2048)
            .run(&ExecContext::new().with_morsel_size(7))
            .unwrap();
        prop_assert_eq!(expected.rows(), got.rows());
    }

    /// `Auto` with kernel-covered aggregates takes the batched path and
    /// still matches; with a θ it cannot hash-probe it must not batch.
    #[test]
    fn auto_batching_preserves_the_answer(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
        threads in 1usize..5,
    ) {
        let expected = serial(&b, &r, &theta);
        let got = MdJoin::new(&b, &r)
            .aggs(&specs())
            .theta(theta.clone())
            .strategy(ExecStrategy::Auto)
            .threads(threads)
            .run(&ExecContext::new().with_morsel_size(16))
            .unwrap();
        prop_assert_eq!(expected.rows(), got.rows(), "threads={}", threads);
    }
}
