//! Differential fuzzing: every execution strategy — serial, vectorized,
//! morsel-parallel, auto-planned, and budget-degraded runs on both the
//! rescan and the spill path — is checked against an *independent*
//! nested-loop reference executor written from Definition 3.1, with no code
//! shared with `mdj-core`'s evaluators beyond the expression and aggregate
//! primitives.
//!
//! Inputs are property-generated: NULL-heavy columns, Zipf-skewed and
//! uniform key distributions, θ shapes from single-key equality through
//! computed keys, residuals, and non-equi conditions, and randomized
//! aggregate lists (including a holistic median). The vendored proptest
//! runner is deterministic (seeded from the test name), so CI runs are
//! exactly reproducible.

use mdj_agg::{AggInput, AggState, Registry};
use mdj_core::prelude::*;
use mdj_expr::builder::add;
use mdj_storage::{BufferPool, Field, PagedStore};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Definition 3.1, executed as literally as possible: for every `b ∈ B`,
/// scan all of `R`, keep the tuples with `θ(b, t)`, and aggregate them.
/// One output row per base row, in `B`'s order; empty `Rel(t)` rows get the
/// aggregate's empty-input value (count 0, sum NULL, …).
fn reference_md_join(
    b: &Relation,
    r: &Relation,
    specs: &[AggSpec],
    theta: &Expr,
    registry: &Registry,
) -> Relation {
    let bound_theta = theta.bind(Some(b.schema()), Some(r.schema())).unwrap();
    let mut bound: Vec<(mdj_agg::traits::AggRef, Option<usize>, Field)> = Vec::new();
    for spec in specs {
        let agg = registry.get(&spec.function).unwrap();
        let (col, input_type) = match &spec.input {
            AggInput::Star => (None, DataType::Int),
            AggInput::Column(c) => {
                let i = r.schema().index_of(c).unwrap();
                (Some(i), r.schema().field(i).dtype)
            }
        };
        bound.push((
            agg.clone(),
            col,
            Field::new(spec.output_name(), agg.output_type(input_type)),
        ));
    }
    let mut fields: Vec<Field> = b.schema().fields().to_vec();
    fields.extend(bound.iter().map(|(_, _, f)| f.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    for base_row in b.iter() {
        let mut states: Vec<Box<dyn AggState>> =
            bound.iter().map(|(agg, _, _)| agg.init()).collect();
        for t in r.iter() {
            if bound_theta
                .eval_bool(base_row.values(), t.values())
                .unwrap()
            {
                for (j, (_, col, _)) in bound.iter().enumerate() {
                    let v = match col {
                        Some(c) => &t[*c],
                        None => &Value::Null,
                    };
                    states[j].update(v).unwrap();
                }
            }
        }
        let mut vals = base_row.values().to_vec();
        vals.extend(states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    }
    out
}

/// Map a uniform draw in `0..1000` onto a Zipf-ish key in `0..10`: the head
/// key takes half the mass, each subsequent key half the remainder.
fn zipf_key(u: i64) -> i64 {
    let thresholds = [500, 750, 875, 937, 968, 984, 992, 996, 998, 1000];
    thresholds.iter().position(|&t| u < t).unwrap_or(9) as i64
}

/// Detail rows `(k Int, g Str, v Int?, f Float?)`: key distribution either
/// uniform or Zipf-skewed, value columns ~1/3 NULL.
fn detail_strategy() -> impl Strategy<Value = Relation> {
    let row = (0i64..1000, 0u8..3, -75i64..50, -16i64..8);
    (proptest::collection::vec(row, 0..80), any::<bool>()).prop_map(|(rows, skew)| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("g", DataType::Str),
            ("v", DataType::Int),
            ("f", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(u, g, v, f)| {
                    Row::new(vec![
                        Value::Int(if skew { zipf_key(u) } else { u % 10 }),
                        Value::str(["NY", "NJ", "CA"][g as usize]),
                        if v < -50 { Value::Null } else { Value::Int(v) },
                        if f < -8 {
                            Value::Null
                        } else {
                            Value::Float(f as f64 * 0.5)
                        },
                    ])
                })
                .collect(),
        )
    })
}

/// Base rows `(k Int, m Int, g Str)` over a wider key domain than the
/// detail side, so some rows always have an empty `Rel(t)`.
fn base_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set((0i64..13, 0i64..4, 0u8..4), 0..16).prop_map(|keys| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("m", DataType::Int),
            ("g", DataType::Str),
        ]);
        Relation::from_rows(
            schema,
            keys.into_iter()
                .map(|(k, m, g)| {
                    Row::new(vec![
                        Value::Int(k),
                        Value::Int(m),
                        Value::str(["NY", "NJ", "CA", "TX"][g as usize]),
                    ])
                })
                .collect(),
        )
    })
}

/// θ shapes: hash-probeable equalities (single, multi-key, string,
/// computed), equality plus detail-only / mixed residuals, and non-equi
/// conditions with no hash (and hence no spill-partitioning) form.
fn theta_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(eq(col_b("k"), col_r("k"))),
        Just(eq(col_b("g"), col_r("g"))),
        Just(and(eq(col_b("k"), col_r("k")), eq(col_b("g"), col_r("g")))),
        Just(eq(col_b("k"), add(col_r("v"), lit(3i64)))),
        Just(and(eq(col_b("k"), col_r("k")), gt(col_r("v"), lit(0i64)))),
        Just(and(eq(col_b("k"), col_r("k")), ge(col_r("f"), col_b("m")))),
        Just(le(col_b("k"), col_r("v"))),
        Just(Expr::always_true()),
    ]
}

/// Aggregate pool; the fuzzer picks a non-empty subset via a bitmask.
fn agg_pool() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("count", "v"),
        AggSpec::on_column("sum", "v"),
        AggSpec::on_column("avg", "f"),
        AggSpec::on_column("max", "f"),
        AggSpec::on_column("min", "g"),
        AggSpec::on_column("median", "v"),
    ]
}

fn agg_list_strategy() -> impl Strategy<Value = Vec<AggSpec>> {
    (1u8..128).prop_map(|mask| {
        agg_pool()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| s)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial and vectorized runs are row-identical to the reference and to
    /// each other, with identical machine-independent work counters;
    /// morsel-parallel and auto-planned runs produce the same multiset.
    #[test]
    fn all_strategies_match_the_reference(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
        specs in agg_list_strategy(),
    ) {
        let expected = reference_md_join(&b, &r, &specs, &theta, &Registry::standard());
        let run = |strategy: ExecStrategy, stats: &Arc<ScanStats>| {
            MdJoin::new(&b, &r)
                .aggs(&specs)
                .theta(theta.clone())
                .strategy(strategy)
                .threads(2)
                .run(
                    &ExecContext::new()
                        .with_morsel_size(16)
                        .with_stats(stats.clone()),
                )
                .unwrap()
        };
        let serial_stats = Arc::new(ScanStats::new());
        let serial = run(ExecStrategy::Serial, &serial_stats);
        prop_assert_eq!(expected.rows(), serial.rows(), "serial vs reference");

        let vec_stats = Arc::new(ScanStats::new());
        let vectorized = MdJoin::new(&b, &r)
            .aggs(&specs)
            .theta(theta.clone())
            .strategy(ExecStrategy::Vectorized)
            .threads(1)
            .run(&ExecContext::new().with_stats(vec_stats.clone()))
            .unwrap();
        prop_assert_eq!(expected.rows(), vectorized.rows(), "vectorized vs reference");
        // Counter consistency: the batched plan does the same logical work.
        prop_assert_eq!(serial_stats.scans(), vec_stats.scans());
        prop_assert_eq!(serial_stats.tuples_scanned(), vec_stats.tuples_scanned());
        prop_assert_eq!(serial_stats.probes(), vec_stats.probes());
        prop_assert_eq!(serial_stats.updates(), vec_stats.updates());
        // Nothing spilled without a budget.
        prop_assert_eq!(serial_stats.bytes_spilled(), 0);

        for strategy in [ExecStrategy::Morsel, ExecStrategy::Auto] {
            let stats = Arc::new(ScanStats::new());
            let out = run(strategy, &stats);
            prop_assert_eq!(out.len(), expected.len());
            prop_assert!(expected.same_multiset(&out), "{:?} vs reference", strategy);
        }
    }

    /// Under a tight budget, both degradation modes — rescan
    /// (`SpillPolicy::Never`) and spill (`SpillPolicy::Always`, when θ
    /// offers partition keys) — reproduce the serial answer bit-for-bit,
    /// and the spill run's byte accounting is conserved: everything written
    /// is read back exactly once, every memory charge is released, and no
    /// run file outlives the query.
    #[test]
    fn budget_forced_degradation_is_bit_identical(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
        specs in agg_list_strategy(),
    ) {
        let expected = reference_md_join(&b, &r, &specs, &theta, &Registry::standard());
        let spill_dir = std::env::temp_dir().join(format!(
            "mdj-diff-fuzz-{}",
            std::process::id()
        ));
        for policy in [SpillPolicy::Never, SpillPolicy::Always, SpillPolicy::Auto] {
            let stats = Arc::new(ScanStats::new());
            // A few base rows of state+index: forces degradation on most
            // inputs while staying satisfiable at one-row partitions for
            // the distributive aggregates.
            let ctx = ExecContext::new()
                .with_budget_bytes(4096)
                .with_spill_policy(policy)
                .with_spill_dir(&spill_dir)
                .with_stats(stats.clone());
            let out = match MdJoin::new(&b, &r)
                .aggs(&specs)
                .theta(theta.clone())
                .strategy(ExecStrategy::Serial)
                .run(&ctx)
            {
                Ok(out) => out,
                // A holistic aggregate (median) charges its collected
                // values themselves, so a dense Rel(t) can exceed the
                // budget even at one-row partitions. The typed error is
                // the correct outcome; nothing must leak (checked below).
                Err(CoreError::BudgetExceeded { .. }) => {
                    if let Ok(entries) = std::fs::read_dir(&spill_dir) {
                        let leaked: Vec<_> = entries.flatten().map(|e| e.path()).collect();
                        prop_assert!(leaked.is_empty(), "leaked run files: {:?}", leaked);
                    }
                    continue;
                }
                Err(other) => {
                    return Err(proptest::test_runner::TestCaseError::Fail(format!(
                        "policy {policy:?}: {other}"
                    )))
                }
            };
            prop_assert_eq!(expected.rows(), out.rows(), "policy {:?}", policy);
            // Conservation: no spill attempt reads more than it wrote, and
            // when the first spill attempt succeeds (a single degradation)
            // every byte written is read back exactly once. A hash-skewed
            // partition can breach the budget and force a retry at larger
            // m, in which case the aborted attempt's run files are dropped
            // unread — spilled then strictly exceeds read.
            prop_assert!(stats.bytes_spilled() >= stats.spill_read_bytes());
            if stats.degradations() <= 1 {
                prop_assert_eq!(stats.bytes_spilled(), stats.spill_read_bytes());
            }
            // The tracker ends the query with zero bytes still charged.
            prop_assert_eq!(ctx.memory().unwrap().charged(), 0);
            if policy == SpillPolicy::Never {
                prop_assert_eq!(stats.bytes_spilled(), 0);
                prop_assert_eq!(stats.spill_partitions(), 0);
            }
            if stats.spill_partitions() > 0 {
                prop_assert!(stats.bytes_spilled() > 0);
                prop_assert!(stats.degradations() >= 1);
            }
            // RAII cleanup: the spill directory holds no run files.
            if let Ok(entries) = std::fs::read_dir(&spill_dir) {
                let leaked: Vec<_> = entries.flatten().map(|e| e.path()).collect();
                prop_assert!(leaked.is_empty(), "leaked run files: {:?}", leaked);
            }
        }
        let _ = std::fs::remove_dir(&spill_dir);
    }
}

/// Unique on-disk scratch directory for one paged fuzz case, removed on
/// drop so the sweep leaves nothing behind even under `--test-threads`.
struct CaseDir(std::path::PathBuf);

impl CaseDir {
    fn new(tag: &str) -> CaseDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mdj-diff-paged-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        CaseDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for CaseDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every execution strategy the paged executor accepts, including the
/// materialize-and-delegate fallbacks.
const PAGED_STRATEGIES: [ExecStrategy; 9] = [
    ExecStrategy::Auto,
    ExecStrategy::Serial,
    ExecStrategy::Partitioned { partitions: 3 },
    ExecStrategy::ChunkBase,
    ExecStrategy::ChunkDetail,
    ExecStrategy::Morsel,
    ExecStrategy::MorselBase,
    ExecStrategy::MorselDetail,
    ExecStrategy::Vectorized,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Disk-resident sweep: the same generated inputs, written through the
    /// pager as a table clustered on `k` and re-read page by page through a
    /// buffer pool holding at most four frames, must be *bit-identical*
    /// (`f64::to_bits`, not ε-close) to the Definition 3.1 reference over
    /// the clustered row order — for every execution strategy, at every
    /// page size from 256 B to 4 KiB. After each strategy the pool is
    /// drained to zero bytes: nothing may stay pinned past its query.
    #[test]
    fn paged_backends_are_bit_identical_to_the_reference(
        b in base_strategy(),
        r in detail_strategy(),
        theta in theta_strategy(),
        specs in agg_list_strategy(),
        page_pick in 0usize..5,
    ) {
        let page_bytes = [256u64, 512, 1024, 2048, 4096][page_pick];
        let dir = CaseDir::new("sweep");
        let (store, boot) = PagedStore::open(dir.path()).unwrap();
        prop_assert!(!boot.recovered_anything(), "fresh dir must not recover");
        let table = store.create_table("R", &r, "k", page_bytes).unwrap();
        // Room for a frame per worker plus LRU slack, but small enough that
        // multi-page tables thrash: eviction churn is part of the property.
        let pool = BufferPool::new(4 * page_bytes);
        let scan = PagedScan::new(table.clone(), pool.clone());
        // The pager re-sorts by the clustered key; the reference must see
        // the same tuple order for floating-point bit-identity.
        let clustered = scan.materialize(&ExecContext::new()).unwrap();
        prop_assert_eq!(clustered.len(), r.len(), "no row lost to paging");
        let expected =
            reference_md_join(&b, &clustered, &specs, &theta, &Registry::standard());
        pool.clear();
        for strategy in PAGED_STRATEGIES {
            let stats = Arc::new(ScanStats::new());
            let ctx = ExecContext::new()
                .with_morsel_size(16)
                .with_stats(stats.clone());
            let out = match paged_md_join(&b, &scan, &specs, &theta, strategy, Some(2), &ctx) {
                Ok(out) => out,
                Err(e) => {
                    return Err(proptest::test_runner::TestCaseError::Fail(format!(
                        "{strategy:?} over {page_bytes} B pages: {e}"
                    )))
                }
            };
            prop_assert_eq!(expected.schema(), out.schema(), "{:?}", strategy);
            prop_assert_eq!(expected.len(), out.len(), "{:?}", strategy);
            for (want, got) in expected.rows().iter().zip(out.rows()) {
                for (x, y) in want.values().iter().zip(got.values()) {
                    match (x, y) {
                        (Value::Float(f), Value::Float(g)) => prop_assert_eq!(
                            f.to_bits(),
                            g.to_bits(),
                            "{:?} @ {} B pages: {} vs {}",
                            strategy,
                            page_bytes,
                            f,
                            g
                        ),
                        _ => prop_assert_eq!(x, y, "{:?} @ {} B pages", strategy, page_bytes),
                    }
                }
            }
            // Residency respects the byte budget while running…
            prop_assert!(pool.resident_bytes() <= pool.budget());
            // …and the pool drains completely once the query is done: any
            // leaked pin would survive clear() and show up here.
            pool.clear();
            prop_assert_eq!(pool.resident_bytes(), 0, "{:?} leaked a pin", strategy);
        }
    }
}

/// Deterministic thrash check guarding the property above: with a pool far
/// smaller than the table, every strategy still answers bit-identically
/// while the pool visibly evicts (so the sweep is exercising real paging,
/// not a table that quietly fits in memory).
#[test]
fn paged_pool_thrash_evicts_and_still_matches() {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
    let rel = Relation::from_rows(
        schema,
        (0..4000i64)
            .map(|i| Row::new(vec![Value::Int(i % 50), Value::Float(i as f64 * 0.5)]))
            .collect(),
    );
    let dir = CaseDir::new("thrash");
    let (store, _) = PagedStore::open(dir.path()).unwrap();
    let table = store.create_table("R", &rel, "k", 256).unwrap();
    assert!(table.page_count() > 8, "table must span many pages");
    let pool = BufferPool::new(1024);
    assert!(
        pool.budget() < table.data_len(),
        "pool must be smaller than the table"
    );
    let scan = PagedScan::new(table.clone(), pool.clone());
    let clustered = scan.materialize(&ExecContext::new()).unwrap();
    pool.clear();
    let b = rel.distinct_on(&["k"]).unwrap();
    let theta = eq(col_b("k"), col_r("k"));
    let specs = [AggSpec::on_column("sum", "v"), AggSpec::count_star()];
    let expected = MdJoin::new(&b, &clustered)
        .aggs(&specs)
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    for strategy in PAGED_STRATEGIES {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        let out = paged_md_join(&b, &scan, &specs, &theta, strategy, Some(2), &ctx).unwrap();
        assert_eq!(expected.rows(), out.rows(), "{strategy:?}");
        assert!(
            stats.pages_read() as usize >= table.page_count(),
            "{strategy:?}"
        );
        assert!(stats.bytes_read() >= table.data_len(), "{strategy:?}");
        assert!(stats.pool_evictions() > 0, "{strategy:?} never evicted");
        assert!(pool.resident_bytes() <= pool.budget());
        pool.clear();
        assert_eq!(pool.resident_bytes(), 0, "{strategy:?} leaked a pin");
    }
}

/// A deterministic, non-property smoke check that the spill path actually
/// engages for at least one representative input (guarding against the
/// property above silently never spilling).
#[test]
fn spill_path_engages_and_matches_serial() {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let r = Relation::from_rows(
        schema,
        (0..3000i64)
            .map(|i| Row::from_values([i % 40, i]))
            .collect(),
    );
    let b = r.distinct_on(&["k"]).unwrap();
    let theta = eq(col_b("k"), col_r("k"));
    let specs = [AggSpec::on_column("sum", "v"), AggSpec::count_star()];
    let serial = MdJoin::new(&b, &r)
        .aggs(&specs)
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap();
    let dir = std::env::temp_dir().join(format!("mdj-diff-smoke-{}", std::process::id()));
    let stats = Arc::new(ScanStats::new());
    let ctx = ExecContext::new()
        .with_budget_bytes(2048)
        .with_spill_policy(SpillPolicy::Always)
        .with_spill_dir(&dir)
        .with_stats(stats.clone());
    let out = MdJoin::new(&b, &r)
        .aggs(&specs)
        .theta(theta)
        .strategy(ExecStrategy::Serial)
        .run(&ctx)
        .unwrap();
    assert_eq!(serial.rows(), out.rows());
    assert!(stats.spill_partitions() > 0, "spill must engage");
    assert!(stats.bytes_spilled() >= stats.spill_read_bytes());
    assert!(stats.spill_read_bytes() > 0);
    assert!(stats.scans() > 1);
    if let Ok(entries) = std::fs::read_dir(&dir) {
        assert_eq!(entries.count(), 0, "leaked run files");
    }
    let _ = std::fs::remove_dir(&dir);
}
