//! The "more complex than count/sum/avg/min/max" aggregates the paper's
//! introduction motivates — moving averages, medians, most-frequent, UDAFs —
//! all expressed with the *same* MD-join operator.

use mdj_agg::{AggClass, AggState, Aggregate, Registry};
use mdj_core::prelude::*;
use mdj_datagen::{sales, SalesConfig};
use mdj_expr::builder::{and_all, sub};

/// All queries below pin the serial plan; parallel equivalence is covered by
/// `theorem_equivalences` and `morsel_equivalence`.
fn md_join(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(ctx)
}
use std::any::Any;
use std::sync::Arc;

fn sales_rel() -> Relation {
    sales(
        &SalesConfig::default()
            .with_rows(3_000)
            .with_customers(30)
            .with_products(5)
            .with_years(1997, 1997),
    )
}

/// A 3-month trailing moving average per (prod, month): θ ranges over a
/// *window* of detail tuples — `R.month ∈ [B.month − 2, B.month]` — which no
/// plain GROUP BY can express, and which for the MD-join is just another θ.
#[test]
fn moving_average_via_window_theta() {
    let r = sales_rel();
    let ctx = ExecContext::new();
    let b = r.distinct_on(&["prod", "month"]).unwrap();
    let theta = and_all([
        eq(col_b("prod"), col_r("prod")),
        ge(col_r("month"), sub(col_b("month"), lit(2i64))),
        le(col_r("month"), col_b("month")),
    ]);
    let out = md_join(
        &b,
        &r,
        &[AggSpec::on_column("avg", "sale").with_alias("mov_avg_3m")],
        &theta,
        &ctx,
    )
    .unwrap();
    assert_eq!(out.len(), b.len());
    // Oracle: recompute one window by hand.
    let probe = &out.rows()[0];
    let (p, m) = (probe[0].clone(), probe[1].as_int().unwrap());
    let window: Vec<f64> = r
        .iter()
        .filter(|t| {
            t[1] == p && {
                let tm = t[3].as_int().unwrap();
                tm >= m - 2 && tm <= m
            }
        })
        .map(|t| t[6].as_float().unwrap())
        .collect();
    let expect = window.iter().sum::<f64>() / window.len() as f64;
    assert!((probe[2].as_float().unwrap() - expect).abs() < 1e-9);
}

/// "Using computed values in the base values, for example to aggregate by
/// quarter instead of month" (end of Section 2): derive a quarter column,
/// build B from it, and θ compares the computed quarter on both sides.
#[test]
fn quarter_aggregation_via_computed_base() {
    let r = sales_rel();
    let ctx = ExecContext::new();
    // Derive quarter = (month - 1) / 4 + 1 using integer-ish arithmetic:
    // months 1–3 → 1, 4–6 → 2, 7–9 → 3, 10–12 → 4 via (month + 2) % 12 is
    // fiddly; simplest exact form: ((month - 1) - (month - 1) % 3) / 3 + 1.
    let quarter_of = |month: &Value| {
        let m = month.as_int().unwrap() - 1;
        Value::Int(m / 3 + 1)
    };
    let with_quarter = {
        let mut fields = r.schema().fields().to_vec();
        fields.push(mdj_storage::Field::new("quarter", DataType::Int));
        let mut out = Relation::empty(mdj_storage::Schema::new(fields));
        for row in r.iter() {
            out.push_unchecked(row.with_value(quarter_of(&row[3])));
        }
        out
    };
    let b = with_quarter.distinct_on(&["prod", "quarter"]).unwrap();
    let out = md_join(
        &b,
        &with_quarter,
        &[AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
        &and(
            eq(col_b("prod"), col_r("prod")),
            eq(col_b("quarter"), col_r("quarter")),
        ),
        &ctx,
    )
    .unwrap();
    // Quarter counts sum to the table size per product.
    let per_prod: i64 = out
        .iter()
        .filter(|row| row[0] == Value::Int(1))
        .map(|row| row[3].as_int().unwrap())
        .sum();
    let expect = r.iter().filter(|t| t[1] == Value::Int(1)).count() as i64;
    assert_eq!(per_prod, expect);
    // At most 4 quarters per product.
    assert!(out
        .iter()
        .all(|row| (1..=4).contains(&row[1].as_int().unwrap())));
}

/// Holistic aggregates ride along in the same operator (footnote 2).
#[test]
fn median_and_mode_per_group() {
    let r = sales_rel();
    let ctx = ExecContext::new();
    let b = r.distinct_on(&["prod"]).unwrap();
    let out = md_join(
        &b,
        &r,
        &[
            AggSpec::on_column("median", "sale"),
            AggSpec::on_column("mode", "state"),
            AggSpec::on_column("count_distinct", "cust"),
        ],
        &eq(col_b("prod"), col_r("prod")),
        &ctx,
    )
    .unwrap();
    // Oracle on one group.
    let probe = &out.rows()[0];
    let p = probe[0].clone();
    let mut vals: Vec<f64> = r
        .iter()
        .filter(|t| t[1] == p)
        .map(|t| t[6].as_float().unwrap())
        .collect();
    vals.sort_by(f64::total_cmp);
    let n = vals.len();
    let median = if n % 2 == 1 {
        vals[n / 2]
    } else {
        (vals[n / 2 - 1] + vals[n / 2]) / 2.0
    };
    assert!((probe[1].as_float().unwrap() - median).abs() < 1e-9);
    // count_distinct ≤ customer cardinality.
    assert!(probe[3].as_int().unwrap() <= 30);
}

/// A user-defined aggregate (geometric mean) used through the full stack —
/// the UDAF path of [JM98] the paper builds on.
#[test]
fn udaf_geometric_mean_end_to_end() {
    #[derive(Debug)]
    struct GeoMean;

    #[derive(Debug, Default)]
    struct GeoState {
        log_sum: f64,
        n: u64,
    }

    impl AggState for GeoState {
        fn update(&mut self, v: &Value) -> mdj_agg::Result<()> {
            if let Some(f) = v.as_float() {
                if f > 0.0 {
                    self.log_sum += f.ln();
                    self.n += 1;
                }
            }
            Ok(())
        }
        fn merge(&mut self, other: &dyn AggState) -> mdj_agg::Result<()> {
            let o = mdj_agg::traits::downcast_state::<GeoState>(other, "GeoState")?;
            self.log_sum += o.log_sum;
            self.n += o.n;
            Ok(())
        }
        fn finalize(&self) -> Value {
            if self.n == 0 {
                Value::Null
            } else {
                Value::Float((self.log_sum / self.n as f64).exp())
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    impl Aggregate for GeoMean {
        fn name(&self) -> &str {
            "geomean"
        }
        fn class(&self) -> AggClass {
            AggClass::Algebraic
        }
        fn init(&self) -> Box<dyn AggState> {
            Box::<GeoState>::default()
        }
        fn output_type(&self, _input: DataType) -> DataType {
            DataType::Float
        }
    }

    let mut registry = Registry::standard();
    registry.register(Arc::new(GeoMean));
    let ctx = ExecContext::new().with_registry(registry);
    let r = sales_rel();
    let b = r.distinct_on(&["state"]).unwrap();
    let out = md_join(
        &b,
        &r,
        &[
            AggSpec::on_column("geomean", "sale"),
            AggSpec::on_column("avg", "sale"),
        ],
        &eq(col_b("state"), col_r("state")),
        &ctx,
    )
    .unwrap();
    // AM–GM: geometric mean ≤ arithmetic mean, strictly here (values differ).
    for row in out.iter() {
        let gm = row[1].as_float().unwrap();
        let am = row[2].as_float().unwrap();
        assert!(gm > 0.0 && gm < am, "AM-GM violated: {gm} vs {am}");
    }
}

/// Multi-pass dependence: count sales above the group's *median* (not just
/// average) — the second MD-join's θ reads the first's holistic output.
#[test]
fn count_above_group_median() {
    let r = sales_rel();
    let ctx = ExecContext::new();
    let b = r.distinct_on(&["prod"]).unwrap();
    let medians = md_join(
        &b,
        &r,
        &[AggSpec::on_column("median", "sale")],
        &eq(col_b("prod"), col_r("prod")),
        &ctx,
    )
    .unwrap();
    let out = md_join(
        &medians,
        &r,
        &[AggSpec::count_star().with_alias("above_median")],
        &and(
            eq(col_b("prod"), col_r("prod")),
            gt(col_r("sale"), col_b("median_sale")),
        ),
        &ctx,
    )
    .unwrap();
    // By definition, just under half the group's tuples beat the median.
    for row in out.iter() {
        let p = row[0].clone();
        let group_size = r.iter().filter(|t| t[1] == p).count() as i64;
        let above = row[2].as_int().unwrap();
        assert!(above <= group_size / 2 + 1);
        assert!(above >= group_size / 2 - 1);
    }
}
