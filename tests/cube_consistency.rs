//! Property tests: every cube algorithm computes the same relation, and the
//! base-values builders satisfy their definitional relationships.

use mdj_core::prelude::*;
use mdj_cube::naive::{cube_per_cuboid, cube_via_wildcard_theta};
use mdj_cube::partitioned::cube_partitioned;
use mdj_cube::pipesort::cube_pipesort;
use mdj_cube::rollup_chain::cube_rollup_chain;
use mdj_cube::CubeSpec;
use proptest::prelude::*;

fn detail_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..4, 0i64..3, 0i64..3, -20i64..20), 0..40).prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("v", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(a, b, c, v)| Row::from_values([a, b, c, v]))
                .collect(),
        )
    })
}

fn spec() -> CubeSpec {
    CubeSpec::new(
        &["a", "b", "c"],
        vec![
            AggSpec::count_star(),
            AggSpec::on_column("sum", "v"),
            AggSpec::on_column("min", "v"),
            AggSpec::on_column("max", "v"),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All five cube algorithms agree on random inputs.
    #[test]
    fn five_cube_algorithms_agree(r in detail_strategy()) {
        let ctx = ExecContext::new();
        let sp = spec();
        let wildcard = cube_via_wildcard_theta(&r, &sp, &ctx).unwrap();
        let per_cuboid = cube_per_cuboid(&r, &sp, &ctx).unwrap();
        prop_assert!(wildcard.same_multiset(&per_cuboid));
        let rollup = cube_rollup_chain(&r, &sp, &ctx).unwrap();
        prop_assert!(per_cuboid.same_multiset(&rollup));
        let pipesorted = cube_pipesort(&r, &sp, &ctx).unwrap();
        prop_assert!(rollup.same_multiset(&pipesorted));
        for dim in 0..3 {
            let parted = cube_partitioned(&r, &sp, dim, &ctx).unwrap();
            prop_assert!(pipesorted.same_multiset(&parted), "partition dim {dim}");
        }
    }

    /// Base-builder relationships: rollup ⊆ cube, unpivot ⊆ cube, grouping
    /// sets with all singletons ≡ unpivot, group-by ≡ finest cuboid slice.
    #[test]
    fn base_builders_are_consistent(r in detail_strategy()) {
        let dims = ["a", "b", "c"];
        let cube_b = basevalues::cube(&r, &dims).unwrap();
        let rollup_b = basevalues::rollup(&r, &dims).unwrap();
        let unpivot_b = basevalues::unpivot(&r, &dims).unwrap();
        let gb = basevalues::group_by(&r, &dims).unwrap();

        let cube_rows: std::collections::HashSet<_> = cube_b.iter().cloned().collect();
        for row in rollup_b.iter() {
            prop_assert!(cube_rows.contains(row), "rollup row missing from cube");
        }
        for row in unpivot_b.iter() {
            prop_assert!(cube_rows.contains(row), "unpivot row missing from cube");
        }
        // Group-by = the fully-concrete rows of the cube base.
        let finest: Vec<_> = cube_b
            .iter()
            .filter(|row| row.values().iter().all(|v| !v.is_all()))
            .cloned()
            .collect();
        let finest_rel = Relation::from_rows(gb.schema().clone(), finest);
        prop_assert!(finest_rel.same_multiset(&gb));
        // Singleton grouping sets ≡ unpivot.
        let sets: Vec<Vec<&str>> = dims.iter().map(|d| vec![*d]).collect();
        let gs = basevalues::grouping_sets(&r, &dims, &sets).unwrap();
        prop_assert!(gs.same_multiset(&unpivot_b));
    }

    /// Cube base-table cardinality: |cube| ≤ Σ over masks of |distinct kept|,
    /// rows are unique, and the apex row exists iff the detail is non-empty.
    #[test]
    fn cube_base_cardinality(r in detail_strategy()) {
        let dims = ["a", "b"];
        let b = basevalues::cube(&r, &dims).unwrap();
        let uniq: std::collections::HashSet<_> = b.iter().cloned().collect();
        prop_assert_eq!(uniq.len(), b.len());
        let has_apex = b.iter().any(|row| row.values().iter().all(Value::is_all));
        prop_assert_eq!(has_apex, !r.is_empty());
    }

    /// The cube's apex cell always equals the global aggregate.
    #[test]
    fn apex_equals_global_aggregate(r in detail_strategy()) {
        prop_assume!(!r.is_empty());
        let ctx = ExecContext::new();
        let sp = spec();
        let out = cube_rollup_chain(&r, &sp, &ctx).unwrap();
        let apex = out
            .iter()
            .find(|row| row.values()[..3].iter().all(Value::is_all))
            .expect("apex exists");
        let count = r.len() as i64;
        let sum: i64 = r.iter().map(|t| t[3].as_int().unwrap()).sum();
        prop_assert_eq!(apex[3].clone(), Value::Int(count));
        prop_assert_eq!(apex[4].clone(), Value::Int(sum));
    }

    /// Every concrete (non-ALL) cube cell's count equals the number of
    /// matching detail tuples (spot-check of cell semantics).
    #[test]
    fn concrete_cells_count_matching_tuples(r in detail_strategy()) {
        let ctx = ExecContext::new();
        let sp = spec();
        let out = cube_per_cuboid(&r, &sp, &ctx).unwrap();
        for row in out.iter().filter(|row| row.values()[..3].iter().all(|v| !v.is_all())).take(10) {
            let expected = r
                .iter()
                .filter(|t| t[0] == row[0] && t[1] == row[1] && t[2] == row[2])
                .count() as i64;
            prop_assert_eq!(row[3].clone(), Value::Int(expected));
        }
    }
}
