//! Fault injection in the query *front half* (compiled only with
//! `--features fault-injection`).
//!
//! PR-2 wired the [`FaultInjector`] into morsel execution, memory charging,
//! and the spill layer; this suite covers the sites added for the
//! robustness issue: parse, compile, optimize, and plan-execution failures
//! injected through `ExecContext::fault_should_fail_planner`.
//!
//! The failure model mirrors DESIGN §8: a faulted query either returns the
//! exact unfaulted answer (the injector did not fire on its path) or fails
//! with a *typed* error that maps to a stable wire code — `parse_error`,
//! `compile_error`, or `execution_error` — never a panic, never a partial
//! result. Injections are deterministic (seeded) and bounded (budgeted),
//! and the pool drains to zero whatever mix of outcomes occurred.
#![cfg(feature = "fault-injection")]

use mdj_core::{EngineConfig, FaultInjector};
use mdj_server::{ExecOptions, QueryService, ServiceConfig};
use mdj_storage::Value;
use std::sync::Arc;

const QUERIES: [&str; 3] = [
    "select cust, sum(sale) from Sales where month = 3 group by cust",
    "select cust, count(Z.*) as n, avg(Z.sale) as a from Sales \
     group by cust ; Z such that Z.cust = cust and Z.sale > 500.0",
    "select prod, month, sum(sale) from Sales analyze by cube(prod, month)",
];

const FAULT_CODES: [&str; 3] = ["parse_error", "compile_error", "execution_error"];

fn engine() -> Arc<EngineConfig> {
    let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(2_000));
    EngineConfig::new().register_table("Sales", sales).build()
}

fn service(engine: &Arc<EngineConfig>) -> QueryService {
    QueryService::new(
        engine.clone(),
        ServiceConfig {
            default_deadline: None,
            ..ServiceConfig::default()
        },
    )
}

/// Canonical multiset key for a result set, floats by bit pattern.
fn canonical(rows: &[Vec<Value>]) -> Vec<String> {
    let mut keys: Vec<String> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Null => "N".to_string(),
                    Value::All => "A".to_string(),
                    Value::Int(i) => format!("i{i}"),
                    Value::Float(f) => format!("f{:016x}", f.to_bits()),
                    Value::Str(s) => format!("s{s}"),
                    Value::Bool(b) => format!("b{b}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    keys.sort();
    keys
}

/// Run the query mix once and record, per query, either the canonical rows
/// or the stable error code.
fn run_mix(svc: &QueryService, iters: usize) -> Vec<(usize, Result<Vec<String>, &'static str>)> {
    let sid = svc.open_session();
    let mut out = Vec::with_capacity(iters);
    for i in 0..iters {
        let qi = i % QUERIES.len();
        let result = match svc.query(sid, QUERIES[qi], ExecOptions::default()) {
            Ok(r) => Ok(canonical(&r.rows)),
            Err(e) => Err(e.code()),
        };
        out.push((qi, result));
    }
    svc.close_session(sid).unwrap();
    out
}

#[test]
fn planner_faults_are_typed_bounded_and_leak_free() {
    let engine = engine();

    // Unfaulted single-user baseline per template.
    let base_svc = service(&engine);
    let baseline: Vec<_> = run_mix(&base_svc, QUERIES.len())
        .into_iter()
        .map(|(_, r)| r.expect("baseline must not fail"))
        .collect();

    let svc = service(&engine);
    let fault = Arc::new(FaultInjector::new(0xBAD_5EED).period(3).planner_failures(5));
    svc.set_fault_injector(Some(fault.clone()));

    let mut failures = 0usize;
    for (qi, result) in run_mix(&svc, 42) {
        match result {
            Ok(rows) => assert_eq!(rows, baseline[qi], "faulted success diverged on {qi}"),
            Err(code) => {
                assert!(FAULT_CODES.contains(&code), "unexpected code `{code}`");
                failures += 1;
            }
        }
    }
    // Every failure is one consumed injection, the budget bounds them, and
    // with 42 queries at period 3 the budget is fully spent.
    assert_eq!(failures as u64, fault.planner_failures_injected());
    assert_eq!(fault.planner_failures_injected(), 5);
    assert_eq!(svc.pool().reserved(), 0);
}

#[test]
fn planner_fault_schedule_is_deterministic() {
    let engine = engine();
    let run = |seed: u64| {
        let svc = service(&engine);
        svc.set_fault_injector(Some(Arc::new(
            FaultInjector::new(seed).period(2).planner_failures(8),
        )));
        run_mix(&svc, 30)
    };
    assert_eq!(run(7), run(7), "same seed must give the same schedule");
    // A different seed lands the injections elsewhere (sanity that the
    // schedule actually depends on the seed, not just the call order).
    assert_ne!(run(7), run(8));
}

#[test]
fn zero_budget_injector_is_transparent() {
    let engine = engine();
    let base_svc = service(&engine);
    let baseline = run_mix(&base_svc, 9);

    let svc = service(&engine);
    let fault = Arc::new(FaultInjector::new(0xD15A5).period(1));
    svc.set_fault_injector(Some(fault.clone()));
    assert_eq!(run_mix(&svc, 9), baseline);
    assert_eq!(fault.planner_failures_injected(), 0);
}
