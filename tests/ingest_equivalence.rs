//! Incremental-maintenance equivalence: ingesting `R` in *any* random batch
//! split must be indistinguishable from having loaded the full relation up
//! front — bit-for-bit (floats compared by `f64::to_bits`) and
//! counter-consistent.
//!
//! Three properties:
//!
//! * the canonical cuboid query over the grown catalog matches a
//!   from-scratch engine exactly, with the cuboid cache cold *or* warm —
//!   warm means every batch was folded into the resident cuboid in place
//!   (Algorithm 3.1) and the final answer is served from the maintained
//!   entry, never recomputed;
//! * the same holds across `Serial`/`Vectorized`/`Auto` execution through
//!   the `MdJoin` builder (the kernels promise row-identical output);
//! * a non-distributive aggregate (`avg`) makes the entry unmaintainable —
//!   ingest must *drop* it (a stale serve is the failure mode), and the
//!   recomputed answer still matches from-scratch;
//! * a coarser query served by a Theorem 4.5 roll-up hit over integer
//!   measures is bit-identical to computing it directly.
//!
//! The vendored proptest runner is deterministic (seeded from the test
//! name), so CI runs are exactly reproducible.

use mdj_agg::AggSpec;
use mdj_algebra::{execute, Plan};
use mdj_core::basevalues::cuboid_theta;
use mdj_core::{EngineConfig, ExecContext, ExecStrategy, MdJoin, QueryCtx};
use mdj_storage::{DataType, Relation, Row, ScanStats, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn sales_schema() -> Schema {
    Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("month", DataType::Int),
        ("state", DataType::Str),
        ("qty", DataType::Int),
        ("amt", DataType::Float),
    ])
}

/// Detail rows over a small key domain (so groups collide across batches)
/// with ~1/4-NULL measure columns and floats with repeating binary
/// fractions — any re-association or double-rounding shows up in the bits.
fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    let row = (0i64..6, 1i64..4, 0u8..3, -20i64..15, -16i64..10);
    proptest::collection::vec(row, 0..60).prop_map(|rows| {
        rows.into_iter()
            .map(|(c, m, s, q, f)| {
                Row::new(vec![
                    Value::Int(c),
                    Value::Int(m),
                    Value::str(["NY", "NJ", "CA"][s as usize]),
                    if q < -15 { Value::Null } else { Value::Int(q) },
                    if f < -12 {
                        Value::Null
                    } else {
                        Value::Float(f as f64 * 0.3)
                    },
                ])
            })
            .collect()
    })
}

/// Raw cut draws, independent of the row count (the vendored proptest has
/// no `prop_flat_map`); [`resolve_cuts`] scales them to the relation.
fn raw_cuts_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..1000, 0..5)
}

/// Sorted, deduplicated cut points `[0, …, n]`: the first segment seeds the
/// table, every later segment arrives as one ingest batch.
fn resolve_cuts(raw: &[usize], n: usize) -> Vec<usize> {
    let mut cuts: Vec<usize> = raw.iter().map(|&r| r % (n + 1)).collect();
    cuts.push(0);
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Ordered, bit-exact relation equality: same row count, every value equal,
/// floats by `to_bits` (NaN-safe, distinguishes `-0.0` from `0.0`).
fn bit_identical(a: &Relation, b: &Relation) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.values().len() == y.values().len()
                && x.values()
                    .iter()
                    .zip(y.values())
                    .all(|(u, v)| match (u, v) {
                        (Value::Float(p), Value::Float(q)) => p.to_bits() == q.to_bits(),
                        _ => u == v,
                    })
        })
}

/// Build one engine seeded with `initial` and one seeded with the full
/// relation, both with a cuboid cache.
fn engines(rows: &[Row], cuts: &[usize]) -> (Arc<EngineConfig>, Arc<EngineConfig>) {
    let initial = rows[..cuts.get(1).copied().unwrap_or(0)].to_vec();
    let grown = EngineConfig::new()
        .register_table("Sales", Relation::from_rows(sales_schema(), initial))
        .with_cuboid_cache(1 << 20)
        .build();
    let scratch = EngineConfig::new()
        .register_table("Sales", Relation::from_rows(sales_schema(), rows.to_vec()))
        .with_cuboid_cache(1 << 20)
        .build();
    (grown, scratch)
}

fn ctx_for(engine: &Arc<EngineConfig>, stats: &Arc<ScanStats>) -> ExecContext {
    ExecContext::from_parts(engine.clone(), QueryCtx::new().with_stats(stats.clone()))
}

fn cuboid_plan(dims: &[&str], aggs: Vec<AggSpec>) -> Plan {
    Plan::table("Sales")
        .group_by_base(dims)
        .md_join(Plan::table("Sales"), aggs, cuboid_theta(dims))
}

/// All-distributive aggregate list (maintained in place on ingest),
/// including a float sum — the bit-level stress case.
fn distributive_aggs() -> Vec<AggSpec> {
    vec![
        AggSpec::on_column("sum", "amt"),
        AggSpec::on_column("sum", "qty"),
        AggSpec::count_star(),
        AggSpec::on_column("count", "qty"),
        AggSpec::on_column("min", "qty"),
        AggSpec::on_column("max", "amt"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole property: any batch split, cache cold or warm, ends in the
    /// same catalog contents, the same cuboid bits, and the exact expected
    /// cache/ingest counters.
    #[test]
    fn ingest_in_random_splits_matches_from_scratch_bit_for_bit(
        rows in rows_strategy(),
        raw_cuts in raw_cuts_strategy(),
        warm in any::<bool>(),
    ) {
        let cuts = resolve_cuts(&raw_cuts, rows.len());
        let (grown, scratch) = engines(&rows, &cuts);
        let dims = ["cust", "month"];
        let plan = cuboid_plan(&dims, distributive_aggs());
        let stats = Arc::new(ScanStats::new());
        let ctx = ctx_for(&grown, &stats);
        if warm {
            execute(&plan, grown.catalog(), &ctx).unwrap();
            prop_assert_eq!(stats.cache_misses(), 1);
        }
        let mut batches = 0u64;
        for w in cuts.windows(2).skip(1) {
            let batch = rows[w[0]..w[1]].to_vec();
            let expect = batch.len();
            let report = ctx.ingest("Sales", batch).unwrap();
            prop_assert_eq!(report.rows, expect);
            // Every aggregate is distributive: nothing may be dropped.
            prop_assert_eq!(report.cache_invalidated, 0);
            batches += 1;
        }
        prop_assert_eq!(stats.ingest_batches(), batches);
        prop_assert_eq!(stats.cache_invalidations(), 0);

        // The grown catalog holds exactly the full relation, bit for bit.
        let grown_rel = grown.catalog().get("Sales").unwrap();
        let scratch_rel = scratch.catalog().get("Sales").unwrap();
        prop_assert!(bit_identical(&grown_rel, &scratch_rel));

        // The canonical cuboid query agrees with a from-scratch engine.
        // Warm, it must be served from the maintained entry (a hit, not a
        // recompute); cold, it is computed once and cached.
        let answer = execute(&plan, grown.catalog(), &ctx).unwrap();
        if warm {
            prop_assert_eq!(stats.cache_hits(), 1);
            prop_assert_eq!(stats.cache_misses(), 1);
        } else {
            prop_assert_eq!(stats.cache_hits(), 0);
            prop_assert_eq!(stats.cache_misses(), 1);
        }
        let reference = execute(
            &plan,
            scratch.catalog(),
            &ctx_for(&scratch, &Arc::new(ScanStats::new())),
        )
        .unwrap();
        prop_assert!(bit_identical(&answer, &reference));

        // Strategy sweep through the builder (no cache): the grown and the
        // from-scratch relations are interchangeable under every executor.
        let aggs = distributive_aggs();
        let theta = cuboid_theta(&dims);
        for strategy in [ExecStrategy::Serial, ExecStrategy::Vectorized, ExecStrategy::Auto] {
            let plain = ExecContext::new();
            let run = |r: &Relation| {
                let b = r.distinct_on(&dims).unwrap();
                MdJoin::new(&b, r)
                    .aggs(&aggs)
                    .theta(theta.clone())
                    .strategy(strategy)
                    .run(&plain)
                    .unwrap()
            };
            prop_assert!(
                bit_identical(&run(&grown_rel), &run(&scratch_rel)),
                "strategy {:?} diverged between grown and from-scratch relations",
                strategy
            );
        }
    }

    /// A non-distributive aggregate (`avg`) cannot be folded forward:
    /// ingest must drop the entry — never serve it stale — and the
    /// recomputed answer still matches from-scratch exactly.
    #[test]
    fn non_distributive_entries_are_dropped_not_served_stale(
        rows in rows_strategy(),
        raw_cuts in raw_cuts_strategy(),
    ) {
        let cuts = resolve_cuts(&raw_cuts, rows.len());
        let (grown, scratch) = engines(&rows, &cuts);
        let dims = ["cust"];
        let aggs = vec![AggSpec::on_column("avg", "amt"), AggSpec::count_star()];
        let plan = cuboid_plan(&dims, aggs);
        let stats = Arc::new(ScanStats::new());
        let ctx = ctx_for(&grown, &stats);
        execute(&plan, grown.catalog(), &ctx).unwrap(); // warm the cache
        let mut ingested = 0usize;
        let mut dropped = 0u64;
        for w in cuts.windows(2).skip(1) {
            let report = ctx.ingest("Sales", rows[w[0]..w[1]].to_vec()).unwrap();
            prop_assert_eq!(report.cache_maintained, 0);
            dropped += report.cache_invalidated;
            ingested += w[1] - w[0];
        }
        if ingested > 0 {
            // The warmed avg entry was dropped by the first batch.
            prop_assert_eq!(dropped, 1);
            prop_assert_eq!(stats.cache_invalidations(), 1);
        }
        let answer = execute(&plan, grown.catalog(), &ctx).unwrap();
        if ingested > 0 {
            prop_assert_eq!(stats.cache_hits(), 0);
            prop_assert_eq!(stats.cache_misses(), 2); // warm-up + recompute
        }
        let reference = execute(
            &plan,
            scratch.catalog(),
            &ctx_for(&scratch, &Arc::new(ScanStats::new())),
        )
        .unwrap();
        prop_assert!(bit_identical(&answer, &reference));
    }

    /// Theorem 4.5: a coarser cuboid served by rolling up a cached finer
    /// one is bit-identical to computing it directly. Integer measures
    /// only — roll-up re-associates the sum, which is exact on `Int`.
    #[test]
    fn rollup_hits_are_bit_identical_to_direct_computation(
        rows in rows_strategy(),
    ) {
        let engine = EngineConfig::new()
            .register_table("Sales", Relation::from_rows(sales_schema(), rows))
            .with_cuboid_cache(1 << 20)
            .build();
        let aggs = vec![
            AggSpec::on_column("sum", "qty"),
            AggSpec::count_star(),
            AggSpec::on_column("count", "qty"),
            AggSpec::on_column("min", "qty"),
            AggSpec::on_column("max", "qty"),
        ];
        let fine = cuboid_plan(&["cust", "month"], aggs.clone());
        let coarse = cuboid_plan(&["cust"], aggs);
        let stats = Arc::new(ScanStats::new());
        let ctx = ctx_for(&engine, &stats);
        execute(&fine, engine.catalog(), &ctx).unwrap(); // cache the finer cuboid
        let rolled = execute(&coarse, engine.catalog(), &ctx).unwrap();
        prop_assert_eq!(stats.cache_rollup_hits(), 1);
        let direct = execute(
            &coarse,
            engine.catalog(),
            &ExecContext::new(),
        )
        .unwrap();
        prop_assert!(bit_identical(&rolled, &direct));
    }

    /// A rolled-up cuboid becomes resident in its own right: the first
    /// coarse query pays the Theorem 4.5 join once (rollup hit), the repeat
    /// is an *exact* hit — no second roll-up — and the answers stay
    /// bit-identical.
    #[test]
    fn rolled_up_cuboids_become_resident(
        rows in rows_strategy(),
    ) {
        let engine = EngineConfig::new()
            .register_table("Sales", Relation::from_rows(sales_schema(), rows))
            .with_cuboid_cache(1 << 20)
            .build();
        let aggs = vec![AggSpec::on_column("sum", "qty"), AggSpec::count_star()];
        let fine = cuboid_plan(&["cust", "month"], aggs.clone());
        let coarse = cuboid_plan(&["cust"], aggs);
        let stats = Arc::new(ScanStats::new());
        let ctx = ctx_for(&engine, &stats);
        execute(&fine, engine.catalog(), &ctx).unwrap(); // resident finer cuboid
        let warm = execute(&coarse, engine.catalog(), &ctx).unwrap();
        prop_assert_eq!(stats.cache_rollup_hits(), 1);
        prop_assert_eq!(stats.cache_hits(), 0);
        let warm_again = execute(&coarse, engine.catalog(), &ctx).unwrap();
        prop_assert_eq!(stats.cache_rollup_hits(), 1); // no second roll-up
        prop_assert_eq!(stats.cache_hits(), 1);        // served exactly
        prop_assert!(bit_identical(&warm, &warm_again));
    }
}
