//! Property tests for cross-type `i64` ↔ `f64` comparisons at the extremes
//! of both types. Before the shared [`mdj_storage::cmp_int_float`], scalar
//! `sql_cmp` promoted the integer side with `as f64`, which collapses every
//! integer above 2⁵³ onto its nearest representable double — so `2⁵³ + 1`
//! compared *equal* to `2⁵³ as f64`, and the batch kernels (which made the
//! same cast independently) could disagree with the interpreter on the rows
//! the cast happened to round differently. These tests pin the exact
//! semantics and verify the vectorized evaluator agrees with the scalar
//! interpreter bit-for-bit across magnitudes, signs, fractional offsets,
//! NaN, and infinities, in both operand orders.

use mdj_expr::builder::*;
use mdj_expr::vectorized::eval_batch;
use mdj_expr::Expr;
use mdj_storage::columnar::ColumnarChunk;
use mdj_storage::{cmp_int_float, DataType, Relation, Row, Schema, Value};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::cmp::Ordering;

/// Integers concentrated where `as f64` loses precision (|v| ≥ 2⁵³), plus
/// the full range for contrast.
fn extreme_int() -> impl Strategy<Value = i64> {
    prop_oneof![
        (1i64 << 53)..=i64::MAX,
        i64::MIN..=-(1i64 << 53),
        any::<i64>(),
    ]
}

/// Doubles derived from an extreme integer (its own rounded image and
/// half/whole offsets around it — exactly the values a lossy cast confuses)
/// plus hostile constants: beyond-2⁶³ magnitudes, NaN, and infinities.
fn extreme_float() -> impl Strategy<Value = f64> {
    (extreme_int(), 0u8..9).prop_map(|(base, shape)| match shape {
        0 => base as f64,
        1 => base as f64 + 0.5,
        2 => base as f64 - 0.5,
        3 => base as f64 + 1.0,
        4 => base as f64 - 1.0,
        5 => 1.5e19,  // > 2⁶³: every i64 is smaller
        6 => -1.5e19, // < -2⁶³: every i64 is larger
        7 => f64::NAN,
        _ => {
            if base >= 0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        }
    })
}

/// A comparison builder from `mdj_expr::builder` (`eq`, `lt`, …).
type CmpBuilder = fn(Expr, Expr) -> Expr;

/// The six comparison operators as builder functions.
fn comparisons() -> [(&'static str, CmpBuilder); 6] {
    [
        ("=", eq),
        ("<>", ne),
        ("<", lt),
        ("<=", le),
        (">", gt),
        (">=", ge),
    ]
}

/// Detail relation `(i Int, f Float)` from the generated pairs.
fn relation(pairs: &[(i64, f64)]) -> Relation {
    let schema = Schema::from_pairs(&[("i", DataType::Int), ("f", DataType::Float)]);
    Relation::from_rows(
        schema,
        pairs
            .iter()
            .map(|&(i, f)| Row::new(vec![Value::Int(i), Value::Float(f)]))
            .collect(),
    )
}

/// Evaluate `theta` over `r` per-row through the scalar interpreter and
/// batch-at-a-time through `eval_batch`; both must produce the identical
/// selection vector, and the batch path must not fall back.
fn assert_batch_matches_scalar(
    r: &Relation,
    theta: &Expr,
    label: &str,
) -> Result<(), TestCaseError> {
    let bound = theta.bind(None, Some(r.schema())).unwrap();
    let scalar: Vec<bool> = r
        .rows()
        .iter()
        .map(|row| bound.eval_bool(&[], row.values()).unwrap())
        .collect();
    let needed = vec![true; r.schema().len()];
    let chunk = ColumnarChunk::from_rows(r.rows(), 0, r.len(), &needed);
    let batch = eval_batch(&bound, &chunk);
    prop_assert!(batch.is_some(), "{label}: comparison failed to vectorize");
    let vectorized = batch.unwrap().to_selection(r.len());
    prop_assert_eq!(scalar, vectorized, "{}", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Int` column vs `Float` literal, `Float` column vs `Int` literal, and
    /// `Int` column vs `Float` column: for every comparison operator, the
    /// vectorized selection equals the scalar interpreter's row-for-row.
    #[test]
    fn batch_and_scalar_agree_on_extreme_cross_type_comparisons(
        pairs in proptest::collection::vec((extreme_int(), extreme_float()), 1..48),
        rhs_int in extreme_int(),
        rhs_float in extreme_float(),
    ) {
        let r = relation(&pairs);
        for (name, cmp) in comparisons() {
            assert_batch_matches_scalar(
                &r,
                &cmp(col_r("i"), lit(rhs_float)),
                &format!("i {name} {rhs_float:?}"),
            )?;
            assert_batch_matches_scalar(
                &r,
                &cmp(col_r("f"), lit(rhs_int)),
                &format!("f {name} {rhs_int}"),
            )?;
            assert_batch_matches_scalar(
                &r,
                &cmp(col_r("i"), col_r("f")),
                &format!("i {name} f"),
            )?;
            assert_batch_matches_scalar(
                &r,
                &cmp(col_r("f"), col_r("i")),
                &format!("f {name} i"),
            )?;
        }
    }

    /// The shared comparison is an order embedding wherever the float is a
    /// whole number that also fits in `i64`: it must agree with pure integer
    /// comparison, which `as f64` promotion provably violates above 2⁵³.
    /// (`(b as f64) as i64` snaps `b` to an exactly representable integer.)
    #[test]
    fn exact_comparison_agrees_with_integer_order_on_whole_floats(
        a in extreme_int(),
        b in ((-(1i64 << 62))..(1i64 << 62)).prop_map(|b| (b as f64) as i64),
    ) {
        prop_assert_eq!(cmp_int_float(a, b as f64), a.cmp(&b));
    }
}

/// Deterministic pins for the exact boundary cases the lossy cast got wrong.
#[test]
fn known_boundary_cases() {
    const P53: i64 = 1 << 53;
    // 2⁵³ + 1 rounds to 2⁵³ under `as f64`; the exact comparison keeps them
    // apart.
    assert_eq!(cmp_int_float(P53 + 1, P53 as f64), Ordering::Greater);
    assert_eq!(cmp_int_float(P53, P53 as f64), Ordering::Equal);
    assert_eq!(cmp_int_float(-(P53 + 1), -(P53 as f64)), Ordering::Less);
    // i64::MAX is not representable; its cast image is 2⁶³ exactly.
    assert_eq!(cmp_int_float(i64::MAX, i64::MAX as f64), Ordering::Less);
    assert_eq!(cmp_int_float(i64::MIN, i64::MIN as f64), Ordering::Equal);
    // Beyond-range floats order every integer.
    assert_eq!(cmp_int_float(i64::MAX, 1.5e19), Ordering::Less);
    assert_eq!(cmp_int_float(i64::MIN, -1.5e19), Ordering::Greater);
    assert_eq!(cmp_int_float(0, f64::INFINITY), Ordering::Less);
    assert_eq!(cmp_int_float(0, f64::NEG_INFINITY), Ordering::Greater);
    // Fractions break ties away from the integer (2⁵¹ + 2.5 is exactly
    // representable: double spacing at that magnitude is 0.25).
    const P51: i64 = 1 << 51;
    assert_eq!(cmp_int_float(P51 + 2, P51 as f64 + 2.5), Ordering::Less);
    assert_eq!(cmp_int_float(P51 + 3, P51 as f64 + 2.5), Ordering::Greater);
    assert_eq!(cmp_int_float(-3, -3.5), Ordering::Greater);
    // Signed zero is numerically zero.
    assert_eq!(cmp_int_float(0, -0.0), Ordering::Equal);
}
