//! End-to-end tests of the `mdjd` TCP wire protocol: line-delimited JSON
//! over real sockets, multiple concurrent connections, out-of-band
//! cancellation, and session cleanup on disconnect.
//!
//! These drive [`mdj_server::Server`] the way a client library would; the
//! in-process behaviour of the same service object is covered by
//! `tests/concurrent_sessions.rs`.

use mdj_core::EngineConfig;
use mdj_server::{QueryService, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn boot(rows: usize) -> (Server, Arc<QueryService>) {
    let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(rows));
    let engine = EngineConfig::new().register_table("Sales", sales).build();
    let service = Arc::new(QueryService::new(
        engine,
        ServiceConfig {
            default_deadline: None,
            ..ServiceConfig::default()
        },
    ));
    let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
    (server, service)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        resp
    }
}

fn int_field(resp: &str, key: &str) -> i64 {
    let marker = format!("\"{key}\":");
    let start = resp.find(&marker).expect(resp) + marker.len();
    resp[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect::<String>()
        .parse()
        .expect(resp)
}

#[test]
fn prepared_statement_lifecycle_over_tcp() {
    let (server, _svc) = boot(500);
    let mut c = Client::connect(server.local_addr());

    assert!(c.send(r#"{"op":"ping"}"#).contains("\"ok\":true"));
    let resp = c.send(r#"{"op":"open"}"#);
    let sid = int_field(&resp, "session");

    let resp = c.send(&format!(
        r#"{{"op":"prepare","session":{sid},"sql":"select cust, sum(sale) from Sales where month = ? group by cust"}}"#
    ));
    assert!(resp.contains("\"params\":1"), "{resp}");
    let stmt = int_field(&resp, "stmt");

    // Two different bindings of the same statement must both run and may
    // produce different result sets.
    let r1 = c.send(&format!(
        r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[1]}}"#
    ));
    let r2 = c.send(&format!(
        r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[2]}}"#
    ));
    assert!(r1.contains("\"ok\":true"), "{r1}");
    assert!(r2.contains("\"ok\":true"), "{r2}");
    assert!(r1.contains("\"columns\":[\"cust\",\"sum_sale\"]"), "{r1}");
    assert!(int_field(&r1, "tuples_scanned") > 0);

    // Wrong arity is a typed bind error, not a crash.
    let resp = c.send(&format!(
        r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[]}}"#
    ));
    assert!(resp.contains("\"code\":\"bind_error\""), "{resp}");

    let resp = c.send(&format!(
        r#"{{"op":"deallocate","session":{sid},"stmt":{stmt}}}"#
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = c.send(&format!(
        r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[1]}}"#
    ));
    assert!(resp.contains("\"code\":\"unknown_statement\""), "{resp}");

    assert!(c
        .send(&format!(r#"{{"op":"close","session":{sid}}}"#))
        .contains("\"ok\":true"));
}

#[test]
fn protocol_errors_are_stable_codes_not_disconnects() {
    let (server, _svc) = boot(100);
    let mut c = Client::connect(server.local_addr());

    for (req, code) in [
        ("this is not json", "bad_request"),
        (r#"{"no":"op"}"#, "bad_request"),
        (r#"{"op":"warp"}"#, "bad_request"),
        (
            r#"{"op":"query","session":424242,"sql":"select count(*) from Sales"}"#,
            "unknown_session",
        ),
        (r#"{"op":"prepare","session":424242}"#, "bad_request"),
    ] {
        let resp = c.send(req);
        assert!(
            resp.contains(&format!("\"code\":\"{code}\"")),
            "request {req} → {resp}"
        );
    }

    // After all those errors the connection is still serviceable.
    let resp = c.send(r#"{"op":"open"}"#);
    let sid = int_field(&resp, "session");
    let resp = c.send(&format!(
        r#"{{"op":"query","session":{sid},"sql":"selec oops"}}"#
    ));
    assert!(resp.contains("\"code\":\"parse_error\""), "{resp}");
    let resp = c.send(&format!(
        r#"{{"op":"query","session":{sid},"sql":"select count(*) from Sales"}}"#
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
}

#[test]
fn cube_all_marker_and_scalars_round_trip_as_json() {
    let (server, _svc) = boot(300);
    let mut c = Client::connect(server.local_addr());
    let resp = c.send(r#"{"op":"open"}"#);
    let sid = int_field(&resp, "session");
    let resp = c.send(&format!(
        r#"{{"op":"query","session":{sid},"sql":"select state, sum(sale) from Sales analyze by rollup(state)"}}"#
    ));
    // The grand-total row carries the cube ALL pseudo-value, which the wire
    // encodes as an object marker rather than overloading null.
    assert!(resp.contains("{\"all\":true}"), "{resp}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
}

#[test]
fn cancel_arrives_on_a_different_connection() {
    let (server, _svc) = boot(30_000);
    let addr = server.local_addr();
    let mut a = Client::connect(addr);
    let resp = a.send(r#"{"op":"open"}"#);
    let sid = int_field(&resp, "session");

    let heavy = format!(
        r#"{{"op":"query","session":{sid},"sql":"select cust, prod, month, sum(sale) from Sales analyze by cube(cust, prod, month)","tag":"slow"}}"#
    );
    let runner = std::thread::spawn(move || {
        let resp = a.send(&heavy);
        (a, resp)
    });

    // Sessions are service-global: connection B cancels A's query.
    let mut b = Client::connect(addr);
    let mut saw_running = false;
    for _ in 0..2_000 {
        let resp = b.send(&format!(
            r#"{{"op":"cancel","session":{sid},"tag":"slow"}}"#
        ));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        if resp.contains("\"cancelled\":true") {
            saw_running = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let (_a, resp) = runner.join().unwrap();
    assert!(saw_running, "cancel never found the running query");
    assert!(resp.contains("\"code\":\"cancelled\""), "{resp}");
}

#[test]
fn disconnect_closes_sessions_and_drains_the_pool() {
    let (server, svc) = boot(500);
    let addr = server.local_addr();

    let mut a = Client::connect(addr);
    let resp = a.send(r#"{"op":"open"}"#);
    let sid = int_field(&resp, "session");
    let resp = a.send(r#"{"op":"open"}"#);
    let sid2 = int_field(&resp, "session");
    assert_ne!(sid, sid2);
    assert_eq!(svc.session_count(), 2);

    // A session the client closes itself must not be double-closed later.
    assert!(a
        .send(&format!(r#"{{"op":"close","session":{sid2}}}"#))
        .contains("\"ok\":true"));
    let resp = a.send(&format!(
        r#"{{"op":"query","session":{sid},"sql":"select count(*) from Sales"}}"#
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    drop(a);

    // The connection thread notices EOF and closes the remaining session.
    for _ in 0..1_000 {
        if svc.session_count() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(svc.session_count(), 0, "disconnect leaked the session");
    assert_eq!(svc.pool().reserved(), 0, "disconnect leaked pool bytes");
}
