//! Fault-injection property tests (the robustness harness).
//!
//! Compiled only with `--features fault-injection`. A deterministic
//! [`FaultInjector`] arms bounded panics, memory-charge failures, and slow
//! morsels at seeded execution sites; the properties assert the execution
//! layer's contract under fire:
//!
//! * **result-or-clean-error** — a faulted run either produces the *exact*
//!   serial answer or a typed governor error; never a hang, a poisoned lock,
//!   a partial result, or a propagated panic;
//! * **retries mask bounded faults** — with enough retries, a bounded panic
//!   budget must be absorbed and the answer must equal serial exactly
//!   (injection sites are outside the apply phase, so retries cannot
//!   double-count);
//! * **charge failures degrade, not abort** — injected budget breaches send
//!   the serial path through Theorem 4.1 re-partitioning and the answer
//!   still equals serial.
#![cfg(feature = "fault-injection")]

use mdj_core::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Suppress the default panic hook's backtrace spam for *injected* panics
/// only; real panics still report. Installed once per test binary.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn sales(rows: usize) -> Relation {
    let schema = Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("month", DataType::Int),
        ("sale", DataType::Float),
    ]);
    let data = (0..rows)
        .map(|i| {
            Row::from_values(vec![
                Value::Int((i % 17) as i64),
                Value::Int((i % 12) as i64),
                Value::Float((i % 89) as f64),
            ])
        })
        .collect();
    Relation::from_rows(schema, data)
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("sum", "sale"),
        AggSpec::on_column("avg", "sale"),
    ]
}

fn serial_answer(b: &Relation, r: &Relation) -> Relation {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(eq(col_b("cust"), col_r("cust")))
        .strategy(ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap()
}

fn faulted_run(
    b: &Relation,
    r: &Relation,
    strategy: ExecStrategy,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(eq(col_b("cust"), col_r("cust")))
        .strategy(strategy)
        .threads(2)
        .run(ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Injected panics at morsel sites: every run ends in the exact serial
    /// answer or a clean governor error — across seeds, sides, morsel sizes,
    /// and retry budgets (including zero retries, where the first injected
    /// panic must surface as `MorselPanicked`).
    #[test]
    fn injected_panics_yield_result_or_clean_error(
        seed in 0u64..1_000,
        detail_side in any::<bool>(),
        small_morsels in any::<bool>(),
        retries in 0u32..3,
    ) {
        quiet_injected_panics();
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(FaultInjector::new(seed).period(2).panics(2));
        let ctx = ExecContext::new()
            .with_morsel_size(if small_morsels { 8 } else { 4096 })
            .with_morsel_retries(retries)
            .with_fault_injector(fault.clone());
        let strategy = if detail_side {
            ExecStrategy::MorselDetail
        } else {
            ExecStrategy::MorselBase
        };
        match faulted_run(&b, &r, strategy, &ctx) {
            Ok(out) => prop_assert_eq!(
                expected.rows(), out.rows(),
                "faulted run completed but differs from serial"
            ),
            Err(e @ CoreError::MorselPanicked { .. }) => {
                prop_assert!(e.is_governor());
                prop_assert!(
                    fault.panics_injected() > 0,
                    "MorselPanicked without an injected panic"
                );
            }
            Err(other) => prop_assert!(false, "unclean failure: {other:?}"),
        }
    }

    /// With a retry budget larger than the armed panic budget, the bounded
    /// faults are fully absorbed: the run *must* succeed and equal serial
    /// exactly (retries re-run the pure compute phase, never the apply
    /// phase, so absorption cannot double-count updates).
    #[test]
    fn ample_retries_absorb_bounded_panics_exactly(
        seed in 0u64..1_000,
        detail_side in any::<bool>(),
    ) {
        quiet_injected_panics();
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(FaultInjector::new(seed).period(2).panics(3));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(16)
            .with_morsel_retries(8) // > panic budget: every morsel eventually runs clean
            .with_stats(stats.clone())
            .with_fault_injector(fault.clone());
        let strategy = if detail_side {
            ExecStrategy::MorselDetail
        } else {
            ExecStrategy::MorselBase
        };
        let out = faulted_run(&b, &r, strategy, &ctx);
        prop_assert!(out.is_ok(), "bounded faults must be absorbed: {:?}", out.err());
        let out = out.unwrap();
        prop_assert_eq!(expected.rows(), out.rows());
        prop_assert_eq!(
            stats.morsel_retries(), fault.panics_injected(),
            "every injected panic is one recorded retry"
        );
    }

    /// Injected memory-charge failures behave exactly like real budget
    /// breaches: the serial path degrades into Theorem 4.1 partitioned
    /// evaluation and still produces the exact serial answer.
    #[test]
    fn injected_charge_failures_degrade_and_still_answer(
        seed in 0u64..1_000,
    ) {
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(FaultInjector::new(seed).period(1).charge_failures(2));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_budget_bytes(1 << 30) // budget is ample: only injection can breach
            .with_stats(stats.clone())
            .with_fault_injector(fault);
        let out = faulted_run(&b, &r, ExecStrategy::Serial, &ctx);
        prop_assert!(out.is_ok(), "charge-failure degradation failed: {:?}", out.err());
        let out = out.unwrap();
        prop_assert_eq!(expected.rows(), out.rows());
        prop_assert!(
            stats.degradations() >= 1,
            "injected breach never triggered Theorem 4.1 degradation"
        );
    }

    /// Slow morsels racing a short deadline: the run either finishes in time
    /// with the exact answer or stops with `DeadlineExceeded` — never
    /// anything messier.
    #[test]
    fn slow_morsels_race_deadlines_cleanly(
        seed in 0u64..1_000,
        detail_side in any::<bool>(),
    ) {
        quiet_injected_panics();
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(
            FaultInjector::new(seed)
                .period(1)
                .slow_morsels(4, Duration::from_millis(2)),
        );
        let ctx = ExecContext::new()
            .with_morsel_size(8)
            .with_deadline(Duration::from_millis(4))
            .with_fault_injector(fault);
        let strategy = if detail_side {
            ExecStrategy::MorselDetail
        } else {
            ExecStrategy::MorselBase
        };
        match faulted_run(&b, &r, strategy, &ctx) {
            Ok(out) => prop_assert_eq!(expected.rows(), out.rows()),
            Err(CoreError::DeadlineExceeded) => {}
            Err(other) => prop_assert!(false, "unclean failure: {other:?}"),
        }
    }
}

/// Deterministic single-thread reproduction: the same seed injects at the
/// same sites, so two identical runs agree error-for-error.
#[test]
fn single_threaded_faulted_runs_are_reproducible() {
    quiet_injected_panics();
    let r = sales(400);
    let b = basevalues::group_by(&r, &["cust"]).unwrap();
    let run = |seed: u64| {
        let fault = Arc::new(FaultInjector::new(seed).period(2).panics(1));
        let ctx = ExecContext::new()
            .with_morsel_size(16)
            .with_morsel_retries(0)
            .with_fault_injector(fault);
        MdJoin::new(&b, &r)
            .aggs(&specs())
            .theta(eq(col_b("cust"), col_r("cust")))
            .strategy(ExecStrategy::MorselDetail)
            .threads(1)
            .run(&ctx)
            .map(|rel| rel.rows().to_vec())
            .map_err(|e| e.to_string())
    };
    assert_eq!(run(12345), run(12345));
    assert_eq!(run(999), run(999));
}

/// Crash-recovery drills for the paged table store, driven through the
/// engine's [`FaultInjector`] pager sites (`PagerFaults` is implemented for
/// the injector, so the store consumes the same seeded budgets as every
/// other subsystem). Each test kills the writer at a different point in the
/// append/checkpoint protocol, reopens the directory, and asserts that boot
/// recovery discards exactly the untrusted bytes — never a sealed row — and
/// says so in its report.
mod pager_crash_recovery {
    use super::*;
    use mdj_storage::pager::MANIFEST_FILE;
    use mdj_storage::{PagedStore, PagerFaults, StorageError};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// Gate around the injector so the boot-time checkpoint of
    /// `open_with_faults` runs clean and the armed budget hits the *append*
    /// path under test. `skip_writes` lets a test step past the data-file
    /// write to kill the manifest checkpoint specifically.
    #[derive(Debug)]
    struct ArmedFaults {
        armed: AtomicBool,
        skip_writes: AtomicU64,
        inner: FaultInjector,
    }

    impl ArmedFaults {
        fn new(inner: FaultInjector) -> Arc<ArmedFaults> {
            Arc::new(ArmedFaults {
                armed: AtomicBool::new(false),
                skip_writes: AtomicU64::new(0),
                inner,
            })
        }
    }

    impl PagerFaults for ArmedFaults {
        fn fail_page_write(&self) -> bool {
            if !self.armed.load(Ordering::Relaxed) {
                return false;
            }
            let skip = self.skip_writes.load(Ordering::Relaxed);
            if skip > 0 {
                self.skip_writes.store(skip - 1, Ordering::Relaxed);
                return false;
            }
            self.inner.should_fail_pager_write()
        }

        fn fail_fsync(&self) -> bool {
            self.armed.load(Ordering::Relaxed) && self.inner.should_fail_pager_fsync()
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mdj-pager-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Seed a directory with a 40-row clustered table and close the store.
    fn seeded(dir: &Path) {
        let (store, boot) = PagedStore::open(dir).unwrap();
        assert!(!boot.recovered_anything());
        store.create_table("t", &sales(40), "month", 256).unwrap();
    }

    /// The recovered store must answer the standard query identically to an
    /// in-memory run over its own (sealed) rows.
    fn assert_answers(store: &PagedStore, expected_rows: u64) {
        let t = store.table("t").unwrap();
        assert_eq!(t.row_count(), expected_rows);
        let r = t.read_all(None).unwrap();
        assert_eq!(r.len() as u64, expected_rows);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let out = serial_answer(&b, &r);
        assert_eq!(out.len(), b.len());
    }

    /// A torn data-file write (half the batch's bytes reach disk) surfaces
    /// as a typed error, leaves the in-memory state at the sealed
    /// generation, and the garbage tail is truncated — and reported — on
    /// the next boot.
    #[test]
    fn torn_append_is_discarded_and_reported_on_reboot() {
        let dir = scratch("torn-append");
        seeded(&dir);
        let sealed = std::fs::metadata(dir.join("t.pages")).unwrap().len();
        {
            let faults = ArmedFaults::new(FaultInjector::new(7).period(1).pager_write_failures(1));
            let (store, boot) =
                PagedStore::open_with_faults(&dir, Arc::clone(&faults) as _).unwrap();
            assert!(!boot.recovered_anything(), "clean dir, clean boot");
            faults.armed.store(true, Ordering::Relaxed);
            let err = store.append("t", sales(30).rows()).unwrap_err();
            assert!(matches!(err, StorageError::PagerIo { .. }), "{err:?}");
            assert_eq!(faults.inner.pager_faults_injected(), 1);
            assert_eq!(store.table("t").unwrap().row_count(), 40);
        }
        assert!(
            std::fs::metadata(dir.join("t.pages")).unwrap().len() > sealed,
            "the torn prefix must be on disk for recovery to have work"
        );
        let (store, report) = PagedStore::open(&dir).unwrap();
        assert_eq!(report.torn_tables, 1);
        assert!(report.orphan_bytes > 0);
        assert!(report.recovered_anything());
        assert_eq!(
            std::fs::metadata(dir.join("t.pages")).unwrap().len(),
            sealed
        );
        assert_answers(&store, 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Killing the writer *between* sealing the batch's pages and
    /// committing the manifest: the durable data tail is unsealed, the torn
    /// `MANIFEST.tmp` is never trusted, and reboot serves exactly the
    /// pre-append generation.
    #[test]
    fn death_mid_checkpoint_falls_back_to_the_sealed_generation() {
        let dir = scratch("mid-checkpoint");
        seeded(&dir);
        let sealed = std::fs::metadata(dir.join("t.pages")).unwrap().len();
        {
            let faults = ArmedFaults::new(FaultInjector::new(11).period(1).pager_write_failures(1));
            let (store, _) = PagedStore::open_with_faults(&dir, Arc::clone(&faults) as _).unwrap();
            faults.armed.store(true, Ordering::Relaxed);
            // Let the data-file write through; kill the manifest tmp write.
            faults.skip_writes.store(1, Ordering::Relaxed);
            let err = store.append("t", sales(30).rows()).unwrap_err();
            assert!(matches!(err, StorageError::PagerIo { .. }), "{err:?}");
            // Rollback: the unsealed pages are not served even pre-reboot.
            assert_eq!(store.table("t").unwrap().row_count(), 40);
        }
        assert!(
            dir.join("MANIFEST.tmp").exists(),
            "the torn checkpoint must leave its tmp behind"
        );
        let (store, report) = PagedStore::open(&dir).unwrap();
        assert_eq!(report.tmp_removed, 1, "tmp is discarded unread");
        assert_eq!(report.torn_tables, 1, "unsealed data tail is truncated");
        assert!(report.orphan_bytes > 0);
        assert_eq!(
            std::fs::metadata(dir.join("t.pages")).unwrap().len(),
            sealed
        );
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert_answers(&store, 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A failed fsync means durability was never promised: the append
    /// errors out, and after reboot the batch has simply never happened.
    #[test]
    fn failed_fsync_means_the_batch_never_happened() {
        let dir = scratch("fsync");
        seeded(&dir);
        {
            let faults = ArmedFaults::new(FaultInjector::new(23).period(1).pager_fsync_failures(1));
            let (store, _) = PagedStore::open_with_faults(&dir, Arc::clone(&faults) as _).unwrap();
            faults.armed.store(true, Ordering::Relaxed);
            let err = store.append("t", sales(30).rows()).unwrap_err();
            assert!(matches!(err, StorageError::PagerIo { .. }), "{err:?}");
            assert_eq!(faults.inner.pager_faults_injected(), 1);
        }
        let (store, report) = PagedStore::open(&dir).unwrap();
        // The write itself completed, so recovery truncates the unsealed
        // (never-fsynced) tail.
        assert_eq!(report.torn_tables, 1);
        assert_answers(&store, 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupted `MANIFEST` (torn rename, bad sector) falls back to
    /// `MANIFEST.prev`: the previous generation is served, the boot report
    /// says so, and the next checkpoint re-seals a healthy manifest.
    #[test]
    fn corrupt_manifest_falls_back_to_prev_generation() {
        let dir = scratch("manifest-fallback");
        seeded(&dir);
        {
            // A second checkpoint so MANIFEST.prev exists.
            let (store, _) = PagedStore::open(&dir).unwrap();
            store.append("t", sales(10).rows()).unwrap();
        }
        let manifest = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&manifest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&manifest, &bytes).unwrap();
        let (store, report) = PagedStore::open(&dir).unwrap();
        assert!(report.manifest_fallback, "must report the fallback");
        assert!(report.recovered_anything());
        // prev sealed some earlier generation; whichever it is, the store
        // must be consistent and queryable, with at least the seeded rows.
        let rows = store.table("t").unwrap().row_count();
        assert!(rows >= 40, "sealed rows lost: {rows}");
        assert_answers(&store, rows);
        // Recovery re-checkpointed: a fresh open is clean.
        drop(store);
        let (_store, clean) = PagedStore::open(&dir).unwrap();
        assert!(!clean.manifest_fallback, "repair must stick");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
