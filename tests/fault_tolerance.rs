//! Fault-injection property tests (the robustness harness).
//!
//! Compiled only with `--features fault-injection`. A deterministic
//! [`FaultInjector`] arms bounded panics, memory-charge failures, and slow
//! morsels at seeded execution sites; the properties assert the execution
//! layer's contract under fire:
//!
//! * **result-or-clean-error** — a faulted run either produces the *exact*
//!   serial answer or a typed governor error; never a hang, a poisoned lock,
//!   a partial result, or a propagated panic;
//! * **retries mask bounded faults** — with enough retries, a bounded panic
//!   budget must be absorbed and the answer must equal serial exactly
//!   (injection sites are outside the apply phase, so retries cannot
//!   double-count);
//! * **charge failures degrade, not abort** — injected budget breaches send
//!   the serial path through Theorem 4.1 re-partitioning and the answer
//!   still equals serial.
#![cfg(feature = "fault-injection")]

use mdj_core::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Suppress the default panic hook's backtrace spam for *injected* panics
/// only; real panics still report. Installed once per test binary.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn sales(rows: usize) -> Relation {
    let schema = Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("month", DataType::Int),
        ("sale", DataType::Float),
    ]);
    let data = (0..rows)
        .map(|i| {
            Row::from_values(vec![
                Value::Int((i % 17) as i64),
                Value::Int((i % 12) as i64),
                Value::Float((i % 89) as f64),
            ])
        })
        .collect();
    Relation::from_rows(schema, data)
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("sum", "sale"),
        AggSpec::on_column("avg", "sale"),
    ]
}

fn serial_answer(b: &Relation, r: &Relation) -> Relation {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(eq(col_b("cust"), col_r("cust")))
        .strategy(ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap()
}

fn faulted_run(
    b: &Relation,
    r: &Relation,
    strategy: ExecStrategy,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(eq(col_b("cust"), col_r("cust")))
        .strategy(strategy)
        .threads(2)
        .run(ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Injected panics at morsel sites: every run ends in the exact serial
    /// answer or a clean governor error — across seeds, sides, morsel sizes,
    /// and retry budgets (including zero retries, where the first injected
    /// panic must surface as `MorselPanicked`).
    #[test]
    fn injected_panics_yield_result_or_clean_error(
        seed in 0u64..1_000,
        detail_side in any::<bool>(),
        small_morsels in any::<bool>(),
        retries in 0u32..3,
    ) {
        quiet_injected_panics();
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(FaultInjector::new(seed).period(2).panics(2));
        let ctx = ExecContext::new()
            .with_morsel_size(if small_morsels { 8 } else { 4096 })
            .with_morsel_retries(retries)
            .with_fault_injector(fault.clone());
        let strategy = if detail_side {
            ExecStrategy::MorselDetail
        } else {
            ExecStrategy::MorselBase
        };
        match faulted_run(&b, &r, strategy, &ctx) {
            Ok(out) => prop_assert_eq!(
                expected.rows(), out.rows(),
                "faulted run completed but differs from serial"
            ),
            Err(e @ CoreError::MorselPanicked { .. }) => {
                prop_assert!(e.is_governor());
                prop_assert!(
                    fault.panics_injected() > 0,
                    "MorselPanicked without an injected panic"
                );
            }
            Err(other) => prop_assert!(false, "unclean failure: {other:?}"),
        }
    }

    /// With a retry budget larger than the armed panic budget, the bounded
    /// faults are fully absorbed: the run *must* succeed and equal serial
    /// exactly (retries re-run the pure compute phase, never the apply
    /// phase, so absorption cannot double-count updates).
    #[test]
    fn ample_retries_absorb_bounded_panics_exactly(
        seed in 0u64..1_000,
        detail_side in any::<bool>(),
    ) {
        quiet_injected_panics();
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(FaultInjector::new(seed).period(2).panics(3));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(16)
            .with_morsel_retries(8) // > panic budget: every morsel eventually runs clean
            .with_stats(stats.clone())
            .with_fault_injector(fault.clone());
        let strategy = if detail_side {
            ExecStrategy::MorselDetail
        } else {
            ExecStrategy::MorselBase
        };
        let out = faulted_run(&b, &r, strategy, &ctx);
        prop_assert!(out.is_ok(), "bounded faults must be absorbed: {:?}", out.err());
        let out = out.unwrap();
        prop_assert_eq!(expected.rows(), out.rows());
        prop_assert_eq!(
            stats.morsel_retries(), fault.panics_injected(),
            "every injected panic is one recorded retry"
        );
    }

    /// Injected memory-charge failures behave exactly like real budget
    /// breaches: the serial path degrades into Theorem 4.1 partitioned
    /// evaluation and still produces the exact serial answer.
    #[test]
    fn injected_charge_failures_degrade_and_still_answer(
        seed in 0u64..1_000,
    ) {
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(FaultInjector::new(seed).period(1).charge_failures(2));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_budget_bytes(1 << 30) // budget is ample: only injection can breach
            .with_stats(stats.clone())
            .with_fault_injector(fault);
        let out = faulted_run(&b, &r, ExecStrategy::Serial, &ctx);
        prop_assert!(out.is_ok(), "charge-failure degradation failed: {:?}", out.err());
        let out = out.unwrap();
        prop_assert_eq!(expected.rows(), out.rows());
        prop_assert!(
            stats.degradations() >= 1,
            "injected breach never triggered Theorem 4.1 degradation"
        );
    }

    /// Slow morsels racing a short deadline: the run either finishes in time
    /// with the exact answer or stops with `DeadlineExceeded` — never
    /// anything messier.
    #[test]
    fn slow_morsels_race_deadlines_cleanly(
        seed in 0u64..1_000,
        detail_side in any::<bool>(),
    ) {
        quiet_injected_panics();
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);

        let fault = Arc::new(
            FaultInjector::new(seed)
                .period(1)
                .slow_morsels(4, Duration::from_millis(2)),
        );
        let ctx = ExecContext::new()
            .with_morsel_size(8)
            .with_deadline(Duration::from_millis(4))
            .with_fault_injector(fault);
        let strategy = if detail_side {
            ExecStrategy::MorselDetail
        } else {
            ExecStrategy::MorselBase
        };
        match faulted_run(&b, &r, strategy, &ctx) {
            Ok(out) => prop_assert_eq!(expected.rows(), out.rows()),
            Err(CoreError::DeadlineExceeded) => {}
            Err(other) => prop_assert!(false, "unclean failure: {other:?}"),
        }
    }
}

/// Deterministic single-thread reproduction: the same seed injects at the
/// same sites, so two identical runs agree error-for-error.
#[test]
fn single_threaded_faulted_runs_are_reproducible() {
    quiet_injected_panics();
    let r = sales(400);
    let b = basevalues::group_by(&r, &["cust"]).unwrap();
    let run = |seed: u64| {
        let fault = Arc::new(FaultInjector::new(seed).period(2).panics(1));
        let ctx = ExecContext::new()
            .with_morsel_size(16)
            .with_morsel_retries(0)
            .with_fault_injector(fault);
        MdJoin::new(&b, &r)
            .aggs(&specs())
            .theta(eq(col_b("cust"), col_r("cust")))
            .strategy(ExecStrategy::MorselDetail)
            .threads(1)
            .run(&ctx)
            .map(|rel| rel.rows().to_vec())
            .map_err(|e| e.to_string())
    };
    assert_eq!(run(12345), run(12345));
    assert_eq!(run(999), run(999));
}
