//! Spill-layer fault injection (compiled only with `--features
//! fault-injection`).
//!
//! The spill subsystem has two I/O sites wired into [`FaultInjector`]:
//!
//! * **write** — sealing a run file fails as an injected ENOSPC / short
//!   write, exactly where a full disk would surface;
//! * **read** — a run file is corrupted on disk (one flipped byte) before
//!   it is read back, exercising the checksum-before-parse contract.
//!
//! The properties pin the failure model from DESIGN §8: a faulted spilling
//! run either completes with the *exact* serial answer (the injector never
//! fired) or fails with a typed, classifiable spill error — never a partial
//! result, never a panic — and every failure path removes all of its temp
//! run files via RAII before the error reaches the caller.
#![cfg(feature = "fault-injection")]

use mdj_core::prelude::*;
use mdj_storage::StorageError;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn sales(rows: usize) -> Relation {
    let schema = Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("month", DataType::Int),
        ("sale", DataType::Float),
    ]);
    let data = (0..rows)
        .map(|i| {
            Row::from_values(vec![
                Value::Int((i % 17) as i64),
                Value::Int((i % 12) as i64),
                Value::Float((i % 89) as f64),
            ])
        })
        .collect();
    Relation::from_rows(schema, data)
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("sum", "sale"),
        AggSpec::on_column("avg", "sale"),
    ]
}

fn serial_answer(b: &Relation, r: &Relation) -> Relation {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(eq(col_b("cust"), col_r("cust")))
        .strategy(ExecStrategy::Serial)
        .run(&ExecContext::new())
        .unwrap()
}

/// A per-test spill directory so cleanup assertions cannot race other
/// tests in the same binary.
fn spill_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mdj-spill-faults-{}-{tag}", std::process::id()))
}

/// No run file may survive a query, successful or not.
fn assert_no_leaked_runs(dir: &Path) -> std::result::Result<(), String> {
    if let Ok(entries) = std::fs::read_dir(dir) {
        let leaked: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        if !leaked.is_empty() {
            return Err(format!("leaked run files: {leaked:?}"));
        }
    }
    Ok(())
}

/// A tight budget plus `SpillPolicy::Always` forces the degradation loop
/// onto the spill path (the θ below offers a `cust` partition key).
fn spilling_ctx(dir: &Path, fault: Arc<FaultInjector>, stats: Arc<ScanStats>) -> ExecContext {
    ExecContext::new()
        .with_budget_bytes(2048)
        .with_spill_policy(SpillPolicy::Always)
        .with_spill_dir(dir)
        .with_stats(stats)
        .with_fault_injector(fault)
}

fn faulted_run(b: &Relation, r: &Relation, ctx: &ExecContext) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(&specs())
        .theta(eq(col_b("cust"), col_r("cust")))
        .strategy(ExecStrategy::Serial)
        .run(ctx)
}

/// Control: with the injector armed but zero fault budget, the same
/// configuration really does spill and really does succeed — so the
/// properties below genuinely exercise the spill I/O sites.
#[test]
fn control_run_spills_and_succeeds() {
    let r = sales(600);
    let b = basevalues::group_by(&r, &["cust"]).unwrap();
    let dir = spill_dir("control");
    let fault = Arc::new(FaultInjector::new(7).period(1));
    let stats = Arc::new(ScanStats::new());
    let out = faulted_run(&b, &r, &spilling_ctx(&dir, fault, stats.clone())).unwrap();
    assert_eq!(serial_answer(&b, &r).rows(), out.rows());
    assert!(stats.spill_partitions() > 0, "control run must spill");
    assert!(stats.spill_read_bytes() > 0);
    assert_no_leaked_runs(&dir).unwrap();
    let _ = std::fs::remove_dir(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Injected ENOSPC / short writes while sealing run files: the run
    /// either never hits the fault and answers exactly, or fails with a
    /// typed `SpillIo` error; both ways the spill directory is left empty
    /// and no bytes remain charged.
    #[test]
    fn injected_write_failures_are_typed_and_leak_free(
        seed in 0u64..1_000,
        period in 1u64..4,
    ) {
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);
        let dir = spill_dir(&format!("w{seed}-{period}"));
        let fault = Arc::new(
            FaultInjector::new(seed).period(period).spill_write_failures(1),
        );
        let stats = Arc::new(ScanStats::new());
        let ctx = spilling_ctx(&dir, fault.clone(), stats.clone());
        match faulted_run(&b, &r, &ctx) {
            Ok(out) => {
                prop_assert_eq!(expected.rows(), out.rows());
                prop_assert_eq!(fault.spill_write_failures_injected(), 0,
                    "an injected write failure must fail the query, not pass silently");
            }
            Err(e) => {
                prop_assert!(e.is_spill(), "untyped spill failure: {e:?}");
                prop_assert!(matches!(
                    &e,
                    CoreError::Storage(StorageError::SpillIo { .. })
                ), "write faults must surface as SpillIo: {e:?}");
                prop_assert!(fault.spill_write_failures_injected() > 0,
                    "SpillIo error without an injected fault");
            }
        }
        // Failure or success: RAII removed every run file and released
        // every charged byte.
        if let Err(msg) = assert_no_leaked_runs(&dir) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert_eq!(ctx.memory().unwrap().charged(), 0);
        let _ = std::fs::remove_dir(&dir);
    }

    /// Run files corrupted on disk before read-back: the FNV-1a trailer
    /// checksum must catch the flip *before* any row is parsed, surfacing
    /// as a typed `SpillCorrupt` — and the failure path still removes every
    /// temp file.
    #[test]
    fn injected_read_corruption_is_detected_by_checksum(
        seed in 0u64..1_000,
        period in 1u64..4,
    ) {
        let r = sales(600);
        let b = basevalues::group_by(&r, &["cust"]).unwrap();
        let expected = serial_answer(&b, &r);
        let dir = spill_dir(&format!("r{seed}-{period}"));
        let fault = Arc::new(
            FaultInjector::new(seed).period(period).spill_read_corruptions(1),
        );
        let stats = Arc::new(ScanStats::new());
        let ctx = spilling_ctx(&dir, fault.clone(), stats.clone());
        match faulted_run(&b, &r, &ctx) {
            Ok(out) => {
                prop_assert_eq!(expected.rows(), out.rows());
                prop_assert_eq!(fault.spill_corruptions_injected(), 0,
                    "a corrupted run file must fail the query, not pass silently");
            }
            Err(e) => {
                prop_assert!(e.is_spill(), "untyped spill failure: {e:?}");
                prop_assert!(matches!(
                    &e,
                    CoreError::Storage(StorageError::SpillCorrupt { .. })
                ), "corruption must surface as SpillCorrupt: {e:?}");
                prop_assert!(fault.spill_corruptions_injected() > 0,
                    "SpillCorrupt error without an injected corruption");
            }
        }
        if let Err(msg) = assert_no_leaked_runs(&dir) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert_eq!(ctx.memory().unwrap().charged(), 0);
        let _ = std::fs::remove_dir(&dir);
    }
}

/// Determinism: the same seed injects at the same spill sites, so two
/// identical runs agree error-for-error (the reproduction contract that
/// makes fault reports actionable).
#[test]
fn faulted_spill_runs_are_reproducible() {
    let r = sales(600);
    let b = basevalues::group_by(&r, &["cust"]).unwrap();
    let run = |seed: u64, tag: &str| {
        let dir = spill_dir(tag);
        let fault = Arc::new(
            FaultInjector::new(seed)
                .period(2)
                .spill_write_failures(1)
                .spill_read_corruptions(1),
        );
        let ctx = spilling_ctx(&dir, fault, Arc::new(ScanStats::new()));
        let out = faulted_run(&b, &r, &ctx)
            .map(|rel| rel.rows().to_vec())
            // Canonicalize: the message embeds the (unique) run-file path;
            // everything after it — error kind and injected detail — must
            // reproduce exactly.
            .map_err(|e| {
                let msg = e.to_string();
                match msg.split_once(".run`: ") {
                    Some((_, detail)) => format!("spill fault: {detail}"),
                    None => msg,
                }
            });
        assert_no_leaked_runs(&dir).unwrap();
        let _ = std::fs::remove_dir(&dir);
        out
    };
    assert_eq!(run(12345, "d1a"), run(12345, "d1b"));
    assert_eq!(run(999, "d2a"), run(999, "d2b"));
    // At least one seed in a small scan must actually trip a fault, so the
    // reproduction check is not vacuous.
    let tripped = (0..40u64).any(|s| run(s, &format!("scan{s}")).is_err());
    assert!(tripped, "no seed in 0..40 tripped a spill fault");
}
