//! Chaos soak for the hardened `mdjd` TCP front end.
//!
//! N concurrent hostile clients are thrown at a live server: oversized
//! frames, random byte garbage, half-open sockets that never send, clients
//! that disconnect mid-query, and (under `--features fault-injection`)
//! injected accept/read/write faults and planner failures inside the
//! server itself. The invariants, checked throughout:
//!
//! * every response that arrives is well-formed JSON with `ok`, and every
//!   failure carries a code from the stable set — never a panic, never a
//!   truncated or stringly error;
//! * every *successful* result is bit-identical (floats by `to_bits`) to
//!   the same query executed serially against an undisturbed server;
//! * hostile connections are shed without harming concurrent well-behaved
//!   sessions;
//! * after the storm the memory pool is back to exactly zero;
//! * shutdown under load drains cleanly: in-flight queries finish or are
//!   cancelled, and the drain report shows no leaked reservations.
//!
//! All client behaviour is seeded (SplitMix64), so a failure replays.

use mdj_core::EngineConfig;
use mdj_server::json::{parse, Json};
use mdj_server::{ConnLimits, QueryService, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 16;
const ACTIONS_PER_CLIENT: usize = 8;
const QUERY_BUDGET: usize = 4 << 20;

const QUERIES: [&str; 3] = [
    "select cust, sum(sale) from Sales where month = 3 group by cust",
    "select cust, count(Z.*) as n, avg(Z.sale) as a from Sales \
     group by cust ; Z such that Z.cust = cust and Z.sale > 500.0",
    "select prod, month, sum(sale) from Sales analyze by cube(prod, month)",
];

const KNOWN_CODES: &[&str] = &[
    "bad_request",
    "unknown_session",
    "unknown_statement",
    "lex_error",
    "parse_error",
    "compile_error",
    "bind_error",
    "execution_error",
    "cancelled",
    "deadline_exceeded",
    "budget_exceeded",
    "pool_exhausted",
    "queue_full",
    "frame_too_large",
    "idle_timeout",
    "server_busy",
    "shutting_down",
    "io_error",
];

fn engine() -> Arc<EngineConfig> {
    let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(3_000));
    EngineConfig::new().register_table("Sales", sales).build()
}

fn service(engine: &Arc<EngineConfig>) -> Arc<QueryService> {
    Arc::new(QueryService::new(
        engine.clone(),
        ServiceConfig {
            pool_bytes: 64 << 20,
            default_budget: QUERY_BUDGET,
            max_waiters: 8,
            admission_wait: Duration::from_millis(100),
            default_deadline: Some(Duration::from_secs(30)),
        },
    ))
}

fn chaos_limits() -> ConnLimits {
    ConnLimits {
        max_conns: 12,
        max_frame_bytes: 32 << 10,
        read_timeout: Some(Duration::from_millis(1_500)),
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// What one client action observed. `PeerLoss` is a connection the server
/// closed (or reset) without a response — the expected fate of several
/// hostile behaviours and of injected accept/read/write faults.
#[derive(Debug)]
enum Observed {
    Ok(Vec<String>),
    Code(String),
    PeerLoss,
}

/// One line-delimited JSON exchange; `None` when the peer closed first.
fn exchange(stream: &mut TcpStream, line: &str) -> Option<String> {
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    stream.flush().ok()?;
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> Option<String> {
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut resp = String::new();
    match reader.read_line(&mut resp) {
        Ok(0) | Err(_) => None,
        Ok(_) => Some(resp),
    }
}

/// Canonical multiset key for wire-decoded rows, floats by bit pattern.
/// Both the baseline and the chaos runs decode through the same JSON path,
/// so equality here is bit-identity of what clients actually receive.
fn canonical_wire_rows(resp: &Json) -> Vec<String> {
    let rows = resp.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let mut keys: Vec<String> = rows
        .iter()
        .map(|row| {
            row.as_arr()
                .unwrap_or(&[])
                .iter()
                .map(|v| match v {
                    Json::Null => "N".to_string(),
                    Json::Bool(b) => format!("b{b}"),
                    Json::Int(i) => format!("i{i}"),
                    Json::Float(f) => format!("f{:016x}", f.to_bits()),
                    Json::Str(s) => format!("s{s}"),
                    Json::Obj(_) => "A".to_string(), // {"all":true}
                    Json::Arr(_) => "?".to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    keys.sort();
    keys
}

/// Classify one raw response line under the global invariant: parseable,
/// `ok` present, failures carry a known code.
fn classify(resp: Option<String>) -> Observed {
    let Some(resp) = resp else {
        return Observed::PeerLoss;
    };
    let json = parse(&resp).unwrap_or_else(|e| panic!("unparseable response `{resp}`: {e}"));
    match json.get("ok") {
        Some(Json::Bool(true)) => Observed::Ok(canonical_wire_rows(&json)),
        Some(Json::Bool(false)) => {
            let code = json
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("failure without code: {resp}"))
                .to_string();
            assert!(
                KNOWN_CODES.contains(&code.as_str()),
                "unknown code `{code}`"
            );
            Observed::Code(code)
        }
        other => panic!("response without boolean ok ({other:?}): {resp}"),
    }
}

fn query_line(sid: i64, qi: usize) -> String {
    let sql = QUERIES[qi];
    format!(r#"{{"op":"query","session":{sid},"sql":"{sql}","budget":{QUERY_BUDGET}}}"#)
}

/// Serial baseline: each query template once, against its own quiet server.
fn wire_baseline(engine: &Arc<EngineConfig>) -> Vec<Vec<String>> {
    let svc = service(engine);
    let server = Server::bind_with("127.0.0.1:0", svc, ConnLimits::default()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let resp = exchange(&mut stream, r#"{"op":"open"}"#).expect("open");
    let sid = parse(&resp)
        .unwrap()
        .get("session")
        .and_then(Json::as_int)
        .expect("session id");
    let mut base = Vec::new();
    for qi in 0..QUERIES.len() {
        match classify(exchange(&mut stream, &query_line(sid, qi))) {
            Observed::Ok(rows) => {
                assert!(!rows.is_empty(), "baseline {qi} returned no rows");
                base.push(rows);
            }
            other => panic!("baseline query {qi} failed: {other:?}"),
        }
    }
    let report = server.shutdown(Duration::from_millis(500));
    assert!(report.is_clean(), "{report:?}");
    base
}

fn hostile_client(addr: SocketAddr, seed: u64, baseline: &[Vec<String>]) -> (usize, usize, usize) {
    let mut rng = SplitMix64(seed);
    let (mut ok, mut shed, mut lost) = (0usize, 0usize, 0usize);
    for _ in 0..ACTIONS_PER_CLIENT {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            lost += 1;
            continue;
        };
        // Client-side safety net so a server bug cannot hang the suite.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        match rng.below(6) {
            // Well-behaved session: open, query, verify, close.
            0..=2 => {
                let Some(resp) = exchange(&mut stream, r#"{"op":"open"}"#) else {
                    lost += 1;
                    continue;
                };
                let json = parse(&resp).unwrap();
                let Some(sid) = json.get("session").and_then(Json::as_int) else {
                    // Shed at admission (server_busy / shutting_down) or an
                    // injected fault; must still be a typed outcome.
                    match classify(Some(resp)) {
                        Observed::Code(_) => shed += 1,
                        _ => lost += 1,
                    }
                    continue;
                };
                let qi = rng.below(QUERIES.len());
                match classify(exchange(&mut stream, &query_line(sid, qi))) {
                    Observed::Ok(rows) => {
                        assert_eq!(
                            rows, baseline[qi],
                            "concurrent result diverged from serial baseline on {qi}"
                        );
                        ok += 1;
                    }
                    Observed::Code(_) => shed += 1,
                    Observed::PeerLoss => lost += 1,
                }
                let _ = exchange(&mut stream, &format!(r#"{{"op":"close","session":{sid}}}"#));
            }
            // Oversized frame: must come back typed, on this connection
            // only.
            3 => {
                let big = "x".repeat((32 << 10) + 1 + rng.below(4096));
                match classify(exchange(&mut stream, &big)) {
                    Observed::Code(code) => {
                        assert!(
                            code == "frame_too_large" || code == "server_busy",
                            "oversized frame got `{code}`"
                        );
                        shed += 1;
                    }
                    Observed::PeerLoss => lost += 1,
                    Observed::Ok(_) => panic!("oversized frame was accepted"),
                }
            }
            // Random byte garbage (newline-terminated so it is one frame).
            4 => {
                let len = 1 + rng.below(200);
                let junk: String = (0..len)
                    .map(|_| (0x20 + (rng.next() % 0x5f) as u8) as char)
                    .filter(|c| *c != '\n')
                    .collect();
                match classify(exchange(&mut stream, &junk)) {
                    Observed::Ok(_) => ok += 1, // junk can parse as a valid op by chance
                    Observed::Code(_) => shed += 1,
                    Observed::PeerLoss => lost += 1,
                }
            }
            // Mid-query disconnect: fire a query and vanish without
            // reading; the server must reap the session and its query.
            _ => {
                let line = format!(
                    r#"{{"op":"query","session":1,"sql":"{}"}}"#,
                    QUERIES[rng.below(QUERIES.len())]
                );
                let _ = stream.write_all(line.as_bytes());
                let _ = stream.write_all(b"\n");
                drop(stream);
                lost += 1;
            }
        }
    }
    (ok, shed, lost)
}

#[test]
fn hostile_clients_cannot_corrupt_results_or_leak_resources() {
    let engine = engine();
    let baseline = wire_baseline(&engine);

    let svc = service(&engine);
    #[cfg(feature = "fault-injection")]
    svc.set_fault_injector(Some(Arc::new(
        mdj_core::FaultInjector::new(0xC4A05_C4A05)
            .period(5)
            .planner_failures(8)
            .server_accept_failures(4)
            .server_read_failures(4)
            .server_write_failures(4),
    )));
    let server = Server::bind_with("127.0.0.1:0", svc.clone(), chaos_limits()).unwrap();
    let addr = server.local_addr();

    let totals: Vec<(usize, usize, usize)> = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|c| {
                let baseline = &baseline;
                scope.spawn(move || hostile_client(addr, 0x5eed_0000 + c as u64, baseline))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let (ok, shed, lost) = totals
        .iter()
        .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z));
    println!("chaos soak: {ok} verified results, {shed} typed sheds, {lost} peer losses");
    // The storm must not have starved out every well-behaved client.
    assert!(ok > 0, "no well-behaved query got through the storm");

    // After the storm: in-flight queries from vanished clients unwind and
    // the pool returns every byte.
    for _ in 0..600 {
        if svc.running_query_count() == 0 && svc.pool().reserved() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        svc.running_query_count(),
        0,
        "queries leaked past their clients"
    );
    assert_eq!(svc.pool().reserved(), 0, "pool bytes leaked");
    assert_eq!(svc.pool().waiters(), 0);

    // The server is still healthy for a fresh client (injected faults may
    // shed individual attempts, so allow retries — typed outcomes only).
    let mut served = false;
    for _ in 0..20 {
        let Ok(mut check) = TcpStream::connect(addr) else {
            continue;
        };
        check
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        if let Some(resp) = exchange(&mut check, r#"{"op":"ping"}"#) {
            if resp.contains("\"ok\":true") {
                served = true;
                break;
            }
            classify(Some(resp)); // typed shed is acceptable, retry
        }
    }
    assert!(served, "server unhealthy after the storm");

    let report = server.shutdown(Duration::from_secs(2));
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn shutdown_under_load_drains_cleanly() {
    let engine = engine();
    let svc = service(&engine);
    let server = Server::bind_with("127.0.0.1:0", svc.clone(), ConnLimits::default()).unwrap();
    let addr = server.local_addr();

    // A few clients hammer cube queries for the whole test; their
    // outcomes must all be typed: ok, a governor code, or peer loss when
    // the drain closes the transport under them.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        break;
                    };
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let Some(resp) = exchange(&mut stream, r#"{"op":"open"}"#) else {
                        break;
                    };
                    let Some(sid) = parse(&resp).unwrap().get("session").and_then(Json::as_int)
                    else {
                        outcomes.push(classify(Some(resp)));
                        break;
                    };
                    outcomes.push(classify(exchange(&mut stream, &query_line(sid, 2))));
                }
                outcomes
            })
        })
        .collect();

    // Let the load build, then pull the plug with a short drain so some
    // queries are still in flight.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.shutdown(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(report.is_clean(), "unclean drain under load: {report:?}");
    assert_eq!(svc.pool().reserved(), 0);
    assert_eq!(svc.running_query_count(), 0);

    for w in workers {
        for outcome in w.join().expect("worker") {
            match outcome {
                Observed::Ok(_) | Observed::PeerLoss => {}
                Observed::Code(code) => {
                    assert!(KNOWN_CODES.contains(&code.as_str()), "unknown `{code}`");
                }
            }
        }
    }
}
