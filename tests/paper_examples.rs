//! End-to-end reproductions of every worked example in the paper, each
//! cross-checked against the classical relational formulation (the paper's
//! own description of what a user must write without the MD-join).

use mdj_agg::Registry;
use mdj_algebra::{execute, rules::split_into_join, Plan};
use mdj_core::basevalues::{cube, cube_match_theta};
use mdj_core::prelude::*;
use mdj_datagen::{payments, sales, PaymentsConfig, SalesConfig};
use mdj_expr::builder::and_all;
use mdj_sql::SqlEngine;
use mdj_storage::Catalog;

/// The examples below are stated over the serial Algorithm 3.1 plan.
fn md_join(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(ctx)
}

fn sales_rel(rows: usize) -> Relation {
    sales(
        &SalesConfig::default()
            .with_rows(rows)
            .with_customers(40)
            .with_products(6)
            .with_states(5)
            .with_years(1996, 1999),
    )
}

fn engine(rows: usize) -> SqlEngine {
    let mut catalog = Catalog::new();
    catalog.register("Sales", sales_rel(rows));
    SqlEngine::new(catalog)
}

/// Example 2.1 / Figure 1: the cube-by query. The MD-join cube must agree
/// with 2ⁿ independent group-bys padded with ALL.
#[test]
fn example_2_1_cube_by() {
    let r = sales_rel(3_000);
    let e = {
        let mut catalog = Catalog::new();
        catalog.register("Sales", r.clone());
        SqlEngine::new(catalog)
    };
    let via_sql = e
        .query(
            "select prod, month, state, sum(sale) from Sales analyze by cube(prod, month, state)",
        )
        .unwrap();
    let via_groupbys = mdj_naive::plans::cube_by_groupbys(
        &r,
        &["prod", "month", "state"],
        &[AggSpec::on_column("sum", "sale")],
        &Registry::standard(),
    )
    .unwrap();
    // Float tolerance: the engine's fast cube path (Theorem 4.5 roll-up)
    // sums partial aggregates, so totals differ in the last bits.
    assert!(via_sql.approx_same_multiset(&via_groupbys, 1e-9));
    // Figure 1's shape: ALL markers appear at every granularity.
    assert!(via_sql
        .iter()
        .any(|row| row[0].is_all() && !row[1].is_all()));
    assert!(via_sql
        .iter()
        .any(|row| row[0].is_all() && row[1].is_all() && row[2].is_all()));
}

/// Example 2.1 (second query): grouping sets = the one-dimensional marginals.
#[test]
fn example_2_1_grouping_sets_marginals() {
    let e = engine(2_000);
    let gs = e
        .query(
            "select prod, month, state, sum(sale) from Sales \
             analyze by grouping sets ((prod), (month), (state))",
        )
        .unwrap();
    let unpivot = e
        .query(
            "select prod, month, state, sum(sale) from Sales \
             analyze by unpivot(prod, month, state)",
        )
        .unwrap();
    assert!(gs.approx_same_multiset(&unpivot, 1e-9));
    // Every row keeps exactly one dimension.
    for row in gs.iter() {
        let alls = row.values()[..3].iter().filter(|v| v.is_all()).count();
        assert_eq!(alls, 2);
    }
}

/// Example 2.2 / 3.1: the tri-state pivot. SQL grouping variables vs the
/// four-subquery outer-join plan.
#[test]
fn example_2_2_tristate_pivot() {
    let r = sales_rel(5_000);
    let mut catalog = Catalog::new();
    catalog.register("Sales", r.clone());
    let e = SqlEngine::new(catalog);
    let md = e
        .query(
            "select cust, avg(X.sale) as avg_ny, avg(Y.sale) as avg_nj, avg(Z.sale) as avg_ct \
             from Sales group by cust ; X, Y, Z \
             such that X.cust = cust and X.state = 'NY', \
                       Y.cust = cust and Y.state = 'NJ', \
                       Z.cust = cust and Z.state = 'CT'",
        )
        .unwrap();
    let naive = mdj_naive::plans::example_2_2(&r, &Registry::standard()).unwrap();
    let cols = ["cust", "avg_ny", "avg_nj", "avg_ct"];
    assert!(md
        .project(&cols)
        .unwrap()
        .same_multiset(&naive.project(&cols).unwrap()));
    // |output| = |customers| — outer-join semantics.
    assert_eq!(md.len(), r.distinct_on(&["cust"]).unwrap().len());
}

/// Example 2.3 / 3.2: count above the cube-cell average — two MD-joins over
/// a cube base vs eight group-bys + joins + eight more group-bys.
#[test]
fn example_2_3_count_above_cell_average() {
    let r = sales_rel(800);
    let ctx = ExecContext::new();
    let dims = ["prod", "month", "state"];
    // MD-join formulation (Example 3.2).
    let b = cube(&r, &dims).unwrap();
    let theta1 = cube_match_theta(&dims);
    let step1 = md_join(&b, &r, &[AggSpec::on_column("avg", "sale")], &theta1, &ctx).unwrap();
    let theta2 = and(
        cube_match_theta(&dims),
        gt(col_r("sale"), col_b("avg_sale")),
    );
    let step2 = md_join(
        &step1,
        &r,
        &[AggSpec::count_star().with_alias("cnt")],
        &theta2,
        &ctx,
    )
    .unwrap();
    let md = step2.project(&["prod", "month", "state", "cnt"]).unwrap();
    // Classical formulation.
    let naive = mdj_naive::plans::example_2_3(&r, &Registry::standard()).unwrap();
    assert!(md.same_multiset(&naive), "MD:\n{md}\nnaive:\n{naive}");
}

/// Example 2.5 / Section 5's EMF query: per (prod, month of 1997), count
/// sales between the previous and following months' averages.
#[test]
fn example_2_5_between_neighbor_month_averages() {
    let r = sales_rel(6_000);
    let mut catalog = Catalog::new();
    catalog.register("Sales", r.clone());
    let e = SqlEngine::new(catalog);
    let md = e
        .query(
            "select prod, month, count(Z.*) as cnt from Sales where year = 1997 \
             group by prod, month ; X, Y, Z \
             such that X.prod = prod and X.month = month - 1, \
                       Y.prod = prod and Y.month = month + 1, \
                       Z.prod = prod and Z.month = month \
                         and Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)",
        )
        .unwrap();
    let naive = mdj_naive::plans::example_2_5(&r, 1997, &Registry::standard()).unwrap();
    let cols = ["prod", "month", "cnt"];
    assert!(md
        .project(&cols)
        .unwrap()
        .same_multiset(&naive.project(&cols).unwrap()));
    // There is real signal: some cell counts are positive.
    assert!(md
        .iter()
        .any(|row| row[2].sql_cmp(&Value::Int(0)) == Some(std::cmp::Ordering::Greater)));
}

/// Example 2.4: aggregate only at externally supplied cube points.
#[test]
fn example_2_4_external_base_table() {
    let r = sales_rel(2_000);
    let ctx = ExecContext::new();
    // "Crucial points" — two product rollups and one month rollup.
    let t = {
        let schema = mdj_storage::Schema::from_pairs(&[
            ("prod", mdj_storage::DataType::Int),
            ("month", mdj_storage::DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            vec![
                mdj_storage::Row::new(vec![Value::Int(1), Value::All]),
                mdj_storage::Row::new(vec![Value::Int(2), Value::All]),
                mdj_storage::Row::new(vec![Value::All, Value::Int(6)]),
            ],
        )
    };
    let out = md_join(
        &t,
        &r,
        &[AggSpec::on_column("sum", "sale")],
        &cube_match_theta(&["prod", "month"]),
        &ctx,
    )
    .unwrap();
    assert_eq!(out.len(), 3);
    // Cross-check each point against the full cube.
    let full = cube(&r, &["prod", "month"]).unwrap();
    let full_cube = md_join(
        &full,
        &r,
        &[AggSpec::on_column("sum", "sale")],
        &cube_match_theta(&["prod", "month"]),
        &ctx,
    )
    .unwrap();
    for row in out.iter() {
        let matching = full_cube
            .iter()
            .find(|f| f[0] == row[0] && f[1] == row[1])
            .expect("point exists in full cube");
        assert_eq!(matching[2], row[2]);
    }
}

/// Example 3.3 + Theorem 4.4: totals over two fact tables, split into an
/// equijoin of per-table MD-joins.
#[test]
fn example_3_3_sales_and_payments() {
    let s = sales_rel(3_000);
    let p = payments(
        &PaymentsConfig::default()
            .with_rows(3_000)
            .with_customers(40),
    );
    let mut catalog = Catalog::new();
    catalog.register("Sales", s.clone());
    catalog.register("Payments", p.clone());
    let ctx = ExecContext::new();
    let registry = Registry::standard();
    let chain = Plan::table("Sales")
        .group_by_base(&["cust", "month"])
        .md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale")],
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("month"), col_b("month")),
            ),
        )
        .md_join(
            Plan::table("Payments"),
            vec![AggSpec::on_column("sum", "amount")],
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("month"), col_b("month")),
            ),
        );
    let seq = execute(&chain, &catalog, &ctx).unwrap();
    let split = split_into_join(&chain, &catalog, &registry).unwrap();
    let par = execute(&split, &catalog, &ctx).unwrap();
    assert!(seq.same_multiset(&par));
    // Oracle for a few rows: manual sums.
    for row in seq.rows().iter().take(5) {
        let (c, m) = (row[0].clone(), row[1].clone());
        let sum_sales: f64 = s
            .iter()
            .filter(|t| t[0] == c && t[3] == m)
            .map(|t| t[6].as_float().unwrap())
            .sum();
        match row[2].as_float() {
            Some(f) => assert!((f - sum_sales).abs() < 1e-6),
            None => assert_eq!(sum_sales, 0.0),
        }
    }
}

/// Example 4.1: 1994–96 vs 1999 totals — Theorem 4.2 lets both MD-joins scan
/// only their year slice; results must match the unpushed plan.
#[test]
fn example_4_1_period_comparison() {
    let r = sales_rel(4_000);
    let mut catalog = Catalog::new();
    catalog.register("Sales", r.clone());
    let ctx = ExecContext::new();
    let chain = Plan::table("Sales")
        .group_by_base(&["prod"])
        .md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("sum_94_96")],
            and_all([
                eq(col_r("prod"), col_b("prod")),
                ge(col_r("year"), lit(1996i64)),
                le(col_r("year"), lit(1997i64)),
            ]),
        )
        .md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("sum_99")],
            and(
                eq(col_r("prod"), col_b("prod")),
                eq(col_r("year"), lit(1999i64)),
            ),
        );
    let direct = execute(&chain, &catalog, &ctx).unwrap();
    let pushed = mdj_algebra::rules::pushdown_detail_selection(chain);
    let via_pushdown = execute(&pushed, &catalog, &ctx).unwrap();
    assert!(direct.same_multiset(&via_pushdown));
    // And the optimizer coalesces the two period aggregates into one scan.
    let optimized = mdj_algebra::rules::coalesce_chains(via_chain(&r));
    assert_eq!(
        mdj_algebra::rules::coalesce::detail_scan_count(&optimized),
        1
    );
}

fn via_chain(_r: &Relation) -> Plan {
    Plan::table("Sales")
        .group_by_base(&["prod"])
        .md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("a")],
            and(
                eq(col_r("prod"), col_b("prod")),
                ge(col_r("year"), lit(1996i64)),
            ),
        )
        .md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("b")],
            and(
                eq(col_r("prod"), col_b("prod")),
                eq(col_r("year"), lit(1999i64)),
            ),
        )
}

/// Section 5's EMF-SQL example parses and runs through the full stack.
#[test]
fn section_5_query_surface() {
    let e = engine(1_000);
    for q in [
        "select prod, month, state, sum(sale) from Sales analyze by cube(prod, month, state)",
        "select prod, month, sum(sale) from Sales analyze by unpivot(prod, month, state)",
        "select prod, month, state, sum(sale) from Sales analyze by rollup(prod, month, state)",
    ] {
        let out = e.query(q).unwrap();
        assert!(!out.is_empty(), "{q}");
    }
    // The explain surface shows MD-joins.
    let plan = e
        .explain("select prod, sum(sale) from Sales analyze by cube(prod, month)")
        .unwrap();
    assert!(plan.contains("MDJoin"));
}
