//! Property-based tests: Definition 3.1 and every theorem in Section 4 hold
//! on randomized inputs.
//!
//! The oracle implements Definition 3.1 *literally* — for each base tuple,
//! collect `RNG(b, R, θ)` by scanning `R`, then fold the aggregates — while
//! the production code implements Algorithm 3.1 (tuple-at-a-time probing)
//! plus the optimized variants. Agreement between the two directions on
//! random inputs is the core soundness property.

use mdj_agg::{AggInput, Registry};
use mdj_core::prelude::*;
use mdj_cube::rollup_chain::rollup_one;
use mdj_cube::CubeSpec;
use mdj_expr::builder::*;
use proptest::prelude::*;

/// The legacy free-function shapes, expressed through the [`MdJoin`] builder
/// so the properties exercise the single public entrypoint.
fn md_join(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Serial)
        .run(ctx)
}

fn md_join_partitioned(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    m: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::Partitioned { partitions: m })
        .run(ctx)
}

fn md_join_parallel(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::ChunkBase)
        .threads(threads)
        .run(ctx)
}

fn md_join_parallel_detail(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    MdJoin::new(b, r)
        .aggs(l)
        .theta(theta.clone())
        .strategy(ExecStrategy::ChunkDetail)
        .threads(threads)
        .run(ctx)
}

/// Definition 3.1, executed verbatim.
fn oracle_md_join(
    b: &Relation,
    r: &Relation,
    specs: &[AggSpec],
    theta: &Expr,
    registry: &Registry,
) -> Relation {
    let bound = theta
        .bind(Some(b.schema()), Some(r.schema()))
        .expect("bind oracle theta");
    let mut fields = b.schema().fields().to_vec();
    for spec in specs {
        let agg = registry.get(&spec.function).unwrap();
        fields.push(mdj_storage::Field::new(
            spec.output_name(),
            agg.output_type(DataType::Any),
        ));
    }
    let mut out = Relation::empty(Schema::new(fields));
    for brow in b.iter() {
        // RNG(b, R, θ)
        let rng: Vec<&Row> = r
            .iter()
            .filter(|t| bound.eval_bool(brow.values(), t.values()).unwrap_or(false))
            .collect();
        let mut vals = brow.values().to_vec();
        for spec in specs {
            let agg = registry.get(&spec.function).unwrap();
            let mut state = agg.init();
            for t in &rng {
                let v = match &spec.input {
                    AggInput::Star => Value::Null,
                    AggInput::Column(c) => t[r.schema().index_of(c).unwrap()].clone(),
                };
                state.update(&v).unwrap();
            }
            vals.push(state.finalize());
        }
        out.push_unchecked(Row::new(vals));
    }
    out
}

fn detail_strategy() -> impl Strategy<Value = Relation> {
    // (k, m, v) rows with small domains so groups collide.
    proptest::collection::vec((0i64..6, 0i64..5, -50i64..50), 0..60).prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("m", DataType::Int),
            ("v", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(k, m, v)| Row::from_values([k, m, v]))
                .collect(),
        )
    })
}

fn base_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set((0i64..6, 0i64..5), 0..12).prop_map(|keys| {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("m", DataType::Int)]);
        Relation::from_rows(
            schema,
            keys.into_iter()
                .map(|(k, m)| Row::from_values([k, m]))
                .collect(),
        )
    })
}

/// A grab-bag of θ shapes: equi, computed-key, inequality, mixed.
fn theta_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(eq(col_b("k"), col_r("k"))),
        Just(and(eq(col_b("k"), col_r("k")), eq(col_b("m"), col_r("m")))),
        Just(and(
            eq(col_b("k"), col_r("k")),
            eq(col_b("m"), add(col_r("m"), lit(1i64)))
        )),
        Just(le(col_b("m"), col_r("m"))),
        Just(and(eq(col_b("k"), col_r("k")), gt(col_r("v"), lit(0i64)))),
        Just(Expr::always_true()),
    ]
}

fn all_specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star(),
        AggSpec::on_column("sum", "v"),
        AggSpec::on_column("avg", "v"),
        AggSpec::on_column("min", "v"),
        AggSpec::on_column("max", "v"),
    ]
}

fn approx_same(a: &Relation, b: &Relation) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ar = a.rows().to_vec();
    let mut br = b.rows().to_vec();
    ar.sort();
    br.sort();
    ar.iter().zip(&br).all(|(x, y)| {
        x.values()
            .iter()
            .zip(y.values())
            .all(|(u, w)| match (u, w) {
                (Value::Float(p), Value::Float(q)) => (p - q).abs() < 1e-9,
                _ => u == w,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 3.1 (both probe strategies) ≡ Definition 3.1.
    #[test]
    fn definition_equals_algorithm(b in base_strategy(), r in detail_strategy(), theta in theta_strategy()) {
        let registry = Registry::standard();
        let specs = all_specs();
        let expected = oracle_md_join(&b, &r, &specs, &theta, &registry);
        for strategy in [ProbeStrategy::NestedLoop, ProbeStrategy::Auto] {
            let ctx = ExecContext::new().with_strategy(strategy);
            let got = md_join(&b, &r, &specs, &theta, &ctx).unwrap();
            prop_assert!(approx_same(&expected, &got), "strategy {strategy:?}");
        }
    }

    /// Theorem 4.1: any chunk partition of B yields the same result.
    #[test]
    fn theorem_4_1_partition(b in base_strategy(), r in detail_strategy(), theta in theta_strategy(), m in 1usize..6) {
        let ctx = ExecContext::new();
        let specs = all_specs();
        let direct = md_join(&b, &r, &specs, &theta, &ctx).unwrap();
        let parted = md_join_partitioned(&b, &r, &specs, &theta, m, &ctx).unwrap();
        prop_assert!(approx_same(&direct, &parted));
    }

    /// Theorem 4.1 (§4.1.2): base- and detail-partitioned parallel plans
    /// agree with the sequential result (merge correctness included).
    #[test]
    fn theorem_4_1_parallel(b in base_strategy(), r in detail_strategy(), theta in theta_strategy(), threads in 1usize..5) {
        let ctx = ExecContext::new();
        let specs = all_specs();
        let direct = md_join(&b, &r, &specs, &theta, &ctx).unwrap();
        let p1 = md_join_parallel(&b, &r, &specs, &theta, threads, &ctx).unwrap();
        prop_assert!(approx_same(&direct, &p1));
        let p2 = md_join_parallel_detail(&b, &r, &specs, &theta, threads, &ctx).unwrap();
        prop_assert!(approx_same(&direct, &p2));
    }

    /// Theorem 4.2: detail-only conjuncts push into a selection on R.
    #[test]
    fn theorem_4_2_pushdown(b in base_strategy(), r in detail_strategy(), v in -20i64..20) {
        let ctx = ExecContext::new();
        let specs = all_specs();
        let theta = and(eq(col_b("k"), col_r("k")), gt(col_r("v"), lit(v)));
        let direct = md_join(&b, &r, &specs, &theta, &ctx).unwrap();
        // Pushed: σ_{v > c}(R), residual equality only.
        let sigma = r.filter(|row| row[2].sql_cmp(&Value::Int(v)) == Some(std::cmp::Ordering::Greater));
        let pushed = md_join(&b, &sigma, &specs, &eq(col_b("k"), col_r("k")), &ctx).unwrap();
        prop_assert!(approx_same(&direct, &pushed));
    }

    /// Theorem 4.3: independent MD-joins commute (up to column order).
    #[test]
    fn theorem_4_3_commute(b in base_strategy(), r in detail_strategy(), v in -10i64..10) {
        let ctx = ExecContext::new();
        let l1 = vec![AggSpec::on_column("sum", "v").with_alias("s1")];
        let l2 = vec![AggSpec::count_star().with_alias("c2")];
        let t1 = and(eq(col_b("k"), col_r("k")), gt(col_r("v"), lit(v)));
        let t2 = and(eq(col_b("k"), col_r("k")), eq(col_b("m"), col_r("m")));
        let ab = {
            let s1 = md_join(&b, &r, &l1, &t1, &ctx).unwrap();
            md_join(&s1, &r, &l2, &t2, &ctx).unwrap()
        };
        let ba = {
            let s1 = md_join(&b, &r, &l2, &t2, &ctx).unwrap();
            md_join(&s1, &r, &l1, &t1, &ctx).unwrap()
        };
        let cols = ["k", "m", "s1", "c2"];
        prop_assert!(approx_same(&ab.project(&cols).unwrap(), &ba.project(&cols).unwrap()));
    }

    /// Theorem 4.3 (generalized): a coalesced evaluation equals the chain.
    #[test]
    fn theorem_4_3_coalesce(b in base_strategy(), r in detail_strategy(), v in -10i64..10) {
        let md_join_multi = |b: &Relation, r: &Relation, blocks: &[Block], ctx: &ExecContext| {
            MdJoin::new(b, r).blocks(blocks.iter().cloned()).run(ctx)
        };
        let ctx = ExecContext::new();
        let blk1 = Block::new(
            and(eq(col_b("k"), col_r("k")), gt(col_r("v"), lit(v))),
            vec![AggSpec::on_column("sum", "v").with_alias("s1")],
        );
        let blk2 = Block::new(
            le(col_b("m"), col_r("m")),
            vec![AggSpec::count_star().with_alias("c2")],
        );
        let multi = md_join_multi(&b, &r, &[blk1.clone(), blk2.clone()], &ctx).unwrap();
        let chain = {
            let s1 = md_join(&b, &r, &blk1.aggs, &blk1.theta, &ctx).unwrap();
            md_join(&s1, &r, &blk2.aggs, &blk2.theta, &ctx).unwrap()
        };
        prop_assert!(approx_same(&multi, &chain));
    }

    /// Theorem 4.4: the chain over two detail tables equals the equijoin of
    /// independent MD-joins (B's rows are distinct by construction).
    #[test]
    fn theorem_4_4_split(b in base_strategy(), r1 in detail_strategy(), r2 in detail_strategy()) {
        let ctx = ExecContext::new();
        let l1 = vec![AggSpec::on_column("sum", "v").with_alias("s1")];
        let l2 = vec![AggSpec::on_column("min", "v").with_alias("m2")];
        let theta = and(eq(col_b("k"), col_r("k")), eq(col_b("m"), col_r("m")));
        let chain = {
            let s1 = md_join(&b, &r1, &l1, &theta, &ctx).unwrap();
            md_join(&s1, &r2, &l2, &theta, &ctx).unwrap()
        };
        // Split: MD(B,R1) ⋈ MD(B,R2) on B's columns.
        let left = md_join(&b, &r1, &l1, &theta, &ctx).unwrap();
        let right = md_join(&b, &r2, &l2, &theta, &ctx).unwrap();
        let joined = mdj_naive::join::hash_join(&left, &right, &["k", "m"], &["k", "m"]).unwrap();
        let split = {
            // keep left cols + right's aggregate.
            let idx: Vec<usize> = (0..left.schema().len()).chain([left.schema().len() + 2]).collect();
            let schema = joined.schema().project(&idx);
            let rows = joined.iter().map(|row| Row::new(row.key(&idx))).collect();
            Relation::from_rows(schema, rows)
        };
        prop_assert!(approx_same(&chain, &split));
    }

    /// Theorem 4.5: a coarser cuboid rolled up from a finer one equals direct
    /// computation, for random cuboid pairs and distributive aggregates.
    #[test]
    fn theorem_4_5_rollup(r in detail_strategy(), fine_bits in 1u32..8, coarse_seed in 0u32..8) {
        let spec = CubeSpec::new(
            &["k", "m", "v"],
            vec![
                AggSpec::count_star(),
                AggSpec::on_column("sum", "v"),
                AggSpec::on_column("min", "v"),
                AggSpec::on_column("max", "v"),
            ],
        );
        let fine = fine_bits & 0b111;
        prop_assume!(fine != 0);
        let coarse = coarse_seed & fine;
        prop_assume!(coarse != fine);
        let ctx = ExecContext::new();
        let (via, direct) = rollup_one(&r, &spec, coarse, fine, &ctx).unwrap();
        prop_assert!(approx_same(&via, &direct));
    }

    /// The MD-join's outer semantics: output cardinality is exactly |B|, for
    /// any θ and any detail table.
    #[test]
    fn output_cardinality_is_base_cardinality(b in base_strategy(), r in detail_strategy(), theta in theta_strategy()) {
        let ctx = ExecContext::new();
        let out = md_join(&b, &r, &[AggSpec::count_star()], &theta, &ctx).unwrap();
        prop_assert_eq!(out.len(), b.len());
    }
}
