//! SQL-surface integration tests on generated workloads, cross-checked
//! against the classical evaluator.

use mdj_agg::{AggSpec, Registry};
use mdj_app::demo_engine;
use mdj_naive::groupby::group_by_agg;
use mdj_storage::Value;

#[test]
fn group_by_matches_classical_group_by() {
    let e = demo_engine(3_000, 7);
    let sales = e.catalog.get("Sales").unwrap();
    let md = e
        .query("select state, sum(sale), count(*), min(sale), max(sale) from Sales group by state")
        .unwrap();
    let oracle = group_by_agg(
        &sales,
        &["state"],
        &[
            AggSpec::on_column("sum", "sale"),
            AggSpec::count_star(),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "sale"),
        ],
        &Registry::standard(),
    )
    .unwrap();
    assert!(md.same_multiset(&oracle));
}

#[test]
fn cube_query_matches_naive_cube() {
    let e = demo_engine(2_000, 8);
    let sales = e.catalog.get("Sales").unwrap();
    let md = e
        .query("select prod, state, sum(sale) from Sales analyze by cube(prod, state)")
        .unwrap();
    let oracle = mdj_naive::plans::cube_by_groupbys(
        &sales,
        &["prod", "state"],
        &[AggSpec::on_column("sum", "sale")],
        &Registry::standard(),
    )
    .unwrap();
    // Tolerant compare: the fast cube path rolls partial float sums up.
    assert!(md.approx_same_multiset(&oracle, 1e-9));
}

#[test]
fn rollup_is_a_subset_of_cube() {
    let e = demo_engine(1_500, 9);
    let cube = e
        .query("select prod, month, sum(sale) from Sales analyze by cube(prod, month)")
        .unwrap();
    let rollup = e
        .query("select prod, month, sum(sale) from Sales analyze by rollup(prod, month)")
        .unwrap();
    assert!(rollup.len() < cube.len());
    // Tolerant subset check: rollup cells must match their cube counterparts
    // (the cube side was computed by roll-up chains, the rollup side by
    // per-cuboid probes, so float totals differ in the last bits).
    for row in rollup.iter() {
        let matched = cube.iter().any(|c| {
            c[0] == row[0]
                && c[1] == row[1]
                && match (c[2].as_float(), row[2].as_float()) {
                    (Some(a), Some(b)) => (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
                    _ => c[2] == row[2],
                }
        });
        assert!(matched, "rollup row {row} missing from cube");
    }
    // No (ALL, month) rows in a rollup.
    assert!(!rollup.iter().any(|r| r[0].is_all() && !r[1].is_all()));
}

#[test]
fn grouping_variables_match_hand_built_answer() {
    let e = demo_engine(2_500, 10);
    let sales = e.catalog.get("Sales").unwrap();
    let md = e
        .query(
            "select cust, count(Z.*) as big from Sales group by cust ; Z \
             such that Z.cust = cust and Z.sale > 900",
        )
        .unwrap();
    for row in md.iter().take(20) {
        let expected = sales
            .iter()
            .filter(|t| {
                t[0] == row[0]
                    && t[6].sql_cmp(&Value::Float(900.0)) == Some(std::cmp::Ordering::Greater)
            })
            .count() as i64;
        assert_eq!(row[1], Value::Int(expected));
    }
}

#[test]
fn emf_example_2_5_equals_multiblock_plan() {
    let e = demo_engine(4_000, 11);
    let sales = e.catalog.get("Sales").unwrap();
    let md = e
        .query(
            "select prod, month, count(Z.*) as cnt from Sales where year = 1997 \
             group by prod, month ; X, Y, Z \
             such that X.prod = prod and X.month = month - 1, \
                       Y.prod = prod and Y.month = month + 1, \
                       Z.prod = prod and Z.month = month \
                         and Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)",
        )
        .unwrap();
    let naive = mdj_naive::plans::example_2_5(&sales, 1997, &Registry::standard()).unwrap();
    let cols = ["prod", "month", "cnt"];
    assert!(md
        .project(&cols)
        .unwrap()
        .same_multiset(&naive.project(&cols).unwrap()));
}

#[test]
fn having_matches_post_filter() {
    let e = demo_engine(2_000, 12);
    let with_having = e
        .query("select cust, sum(sale) from Sales group by cust having sum(sale) > 10000")
        .unwrap();
    let all = e
        .query("select cust, sum(sale) from Sales group by cust")
        .unwrap();
    let filtered =
        all.filter(|r| r[1].sql_cmp(&Value::Float(10_000.0)) == Some(std::cmp::Ordering::Greater));
    assert!(with_having.same_multiset(&filtered));
}

#[test]
fn where_clause_restricts_both_base_and_detail() {
    let e = demo_engine(2_000, 13);
    let sales = e.catalog.get("Sales").unwrap();
    let out = e
        .query("select cust, count(*) from Sales where state = 'NY' group by cust")
        .unwrap();
    let ny_customers = sales
        .filter(|t| t[5] == Value::str("NY"))
        .distinct_on(&["cust"])
        .unwrap();
    assert_eq!(out.len(), ny_customers.len());
    // Counts are NY-only.
    for row in out.iter().take(10) {
        let expected = sales
            .iter()
            .filter(|t| t[0] == row[0] && t[5] == Value::str("NY"))
            .count() as i64;
        assert_eq!(row[1], Value::Int(expected));
    }
}

#[test]
fn multi_fact_query_over_payments() {
    let e = demo_engine(2_000, 14);
    let out = e
        .query("select cust, sum(amount) from Payments group by cust")
        .unwrap();
    assert!(!out.is_empty());
    let payments = e.catalog.get("Payments").unwrap();
    for row in out.iter().take(10) {
        let expected: f64 = payments
            .iter()
            .filter(|t| t[0] == row[0])
            .map(|t| t[4].as_float().unwrap())
            .sum();
        assert!((row[1].as_float().unwrap() - expected).abs() < 1e-6);
    }
}

#[test]
fn optimizer_preserves_every_query_shape() {
    let e = demo_engine(1_500, 15);
    for sql in [
        "select cust, sum(sale) from Sales group by cust",
        "select prod, month, sum(sale) from Sales analyze by cube(prod, month)",
        "select prod, sum(sale) from Sales analyze by unpivot(prod, month)",
        "select cust, avg(X.sale) as a, avg(Y.sale) as b from Sales group by cust ; X, Y \
         such that X.cust = cust and X.state = 'NY', Y.cust = cust and Y.state = 'CA'",
        "select count(*) from Sales",
    ] {
        let a = e.query(sql).unwrap();
        let b = e.query_unoptimized(sql).unwrap();
        // Tolerant compare: query() may take the fast cube path, which sums
        // floats in a different order than the generic plan.
        assert!(a.approx_same_multiset(&b, 1e-9), "{sql}");
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let e = demo_engine(100, 16);
    for bad in [
        "select bogus_col, count(*) from Sales group by cust",
        "select cust, frobnicate(sale) from Sales group by cust",
        "select cust from Sales group by",
        "select count(*) from Missing",
        "select cust, count(X.*) from Sales group by cust ; X such that X.cust = cust and X.sale > avg(Y.sale)",
    ] {
        assert!(e.query(bad).is_err(), "{bad} should fail");
    }
}
