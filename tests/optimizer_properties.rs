//! Whole-optimizer fuzzing: random MD-join chains over a small catalog must
//! execute to the same relation before and after optimization, and the
//! optimizer must never increase the estimated cost or the number of detail
//! scans.

use mdj_agg::Registry;
use mdj_algebra::rules::coalesce::detail_scan_count;
use mdj_algebra::{execute, optimize, Plan};
use mdj_core::prelude::*;
use mdj_expr::builder::and_all;
use mdj_storage::Catalog;
use proptest::prelude::*;

fn catalog() -> Catalog {
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("m", DataType::Int),
        ("s", DataType::Str),
        ("v", DataType::Int),
    ]);
    let states = ["NY", "NJ", "CT", "CA"];
    let rows: Vec<Row> = (0..400i64)
        .map(|i| {
            Row::from_values(vec![
                Value::Int(i % 7),
                Value::Int(i % 12 + 1),
                Value::str(states[(i % 4) as usize]),
                Value::Int((i * 37) % 100 - 50),
            ])
        })
        .collect();
    let mut c = Catalog::new();
    c.register("T", Relation::from_rows(schema, rows));
    c
}

/// One stage of a random chain. `dep` makes the stage's θ read the output of
/// an earlier stage (when one exists), exercising the scheduler's dependency
/// analysis.
#[derive(Debug, Clone)]
struct StageSpec {
    func: usize,
    filter: usize,
    dep: bool,
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    (0usize..4, 0usize..5, any::<bool>()).prop_map(|(func, filter, dep)| StageSpec {
        func,
        filter,
        dep,
    })
}

fn build_chain(stages: &[StageSpec]) -> Plan {
    let mut plan = Plan::table("T").group_by_base(&["k"]);
    let mut produced: Vec<String> = Vec::new();
    for (i, st) in stages.iter().enumerate() {
        let alias = format!("a{i}");
        let agg = match st.func {
            0 => AggSpec::count_star().with_alias(alias.clone()),
            1 => AggSpec::on_column("sum", "v").with_alias(alias.clone()),
            2 => AggSpec::on_column("min", "v").with_alias(alias.clone()),
            _ => AggSpec::on_column("max", "v").with_alias(alias.clone()),
        };
        let mut conjs: Vec<Expr> = vec![eq(col_b("k"), col_r("k"))];
        match st.filter {
            0 => conjs.push(eq(col_r("s"), lit("NY"))),
            1 => conjs.push(gt(col_r("v"), lit(0i64))),
            2 => conjs.push(le(col_r("m"), lit(6i64))),
            3 => conjs.push(eq(col_r("s"), lit("CT"))),
            _ => {}
        }
        if st.dep {
            if let Some(earlier) = produced.first() {
                conjs.push(gt(col_b(earlier.clone()), lit(-1_000i64)));
            }
        }
        plan = plan.md_join(Plan::table("T"), vec![agg], and_all(conjs));
        produced.push(alias);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// optimize(plan) executes to the same relation as plan (up to column
    /// order, which coalescing may permute).
    #[test]
    fn optimizer_preserves_semantics(stages in proptest::collection::vec(stage_strategy(), 1..6)) {
        let cat = catalog();
        let reg = Registry::standard();
        let ctx = ExecContext::new();
        let plan = build_chain(&stages);
        let optimized = optimize(plan.clone(), &cat, &reg).unwrap();
        let a = execute(&plan, &cat, &ctx).unwrap();
        let b = execute(&optimized, &cat, &ctx).unwrap();
        // Compare on a canonical column order.
        let mut cols: Vec<String> = vec!["k".into()];
        cols.extend((0..stages.len()).map(|i| format!("a{i}")));
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        prop_assert!(a
            .project(&refs)
            .unwrap()
            .same_multiset(&b.project(&refs).unwrap()));
    }

    /// The optimizer never increases detail-scan count or estimated cost.
    #[test]
    fn optimizer_never_regresses(stages in proptest::collection::vec(stage_strategy(), 1..6)) {
        let cat = catalog();
        let reg = Registry::standard();
        let plan = build_chain(&stages);
        let before_scans = detail_scan_count(&plan);
        let before_cost = mdj_algebra::cost::estimate_cost(&plan, &cat, &reg).unwrap();
        let optimized = optimize(plan, &cat, &reg).unwrap();
        prop_assert!(detail_scan_count(&optimized) <= before_scans);
        let after_cost = mdj_algebra::cost::estimate_cost(&optimized, &cat, &reg).unwrap();
        prop_assert!(after_cost <= before_cost + 1e-9);
    }

    /// Fully independent chains always coalesce to a single scan.
    #[test]
    fn independent_chains_fully_coalesce(n in 1usize..6, filter in 0usize..5) {
        let stages: Vec<StageSpec> = (0..n)
            .map(|_| StageSpec { func: 1, filter, dep: false })
            .collect();
        let cat = catalog();
        let reg = Registry::standard();
        let plan = build_chain(&stages);
        let optimized = optimize(plan, &cat, &reg).unwrap();
        prop_assert_eq!(detail_scan_count(&optimized), 1);
    }
}
