//! Buffer-pool torture: property-generated interleavings of pin / unpin /
//! ingest / drain against a deliberately starved byte budget, checked step
//! by step against an exact shadow model of the pool's contract — strict
//! LRU eviction of unpinned frames, pinned frames never evicted, residency
//! never above budget, hit/miss/eviction counters exact, and
//! `PoolExhausted` as the *only* admissible failure. Page payloads are
//! verified against a shadow of the table on every pin and once more at the
//! end through `read_all`, so a checksum or pagination bug cannot hide
//! behind the pool.

use mdj_storage::{
    BufferPool, DataType, PagedStore, PagedTable, PinnedPage, Relation, Row, Schema, StorageError,
    Value,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PAGE_BYTES: u64 = 128;
const POOL_BUDGET: u64 = 512;
/// Cap on simultaneously held pins: high enough that pinned bytes alone can
/// exceed the budget (forcing `PoolExhausted`), low enough to keep most
/// steps admissible.
const MAX_HELD: usize = 6;

struct CaseDir(PathBuf);

impl CaseDir {
    fn new(tag: &str) -> CaseDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mdj-pager-torture-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        CaseDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for CaseDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One generated step of the torture schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Fetch page `seed % page_count`, holding the pin (up to `MAX_HELD`).
    Pin(u16),
    /// Drop held pin `seed % held.len()`.
    Unpin(u16),
    /// Append `1 + seed % 17` fresh rows through the store.
    Ingest(u16),
    /// `BufferPool::clear()` — every unpinned frame must vanish.
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u16>().prop_map(Op::Pin),
        2 => any::<u16>().prop_map(Op::Unpin),
        1 => any::<u16>().prop_map(Op::Ingest),
        1 => Just(Op::Drain),
    ]
}

/// Exact replica of the pool's documented admission algorithm, advanced in
/// lockstep with the real pool. Ticks are unique per fetch, so strict-LRU
/// victim choice is deterministic and the comparison is sound.
#[derive(Default)]
struct ModelFrame {
    page: usize,
    bytes: u64,
    tick: u64,
    pins: u32,
}

#[derive(Default)]
struct ModelPool {
    frames: Vec<ModelFrame>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelPool {
    fn resident(&self) -> u64 {
        self.frames.iter().map(|f| f.bytes).sum()
    }

    /// `Ok(())` when the real fetch must succeed; `Err(())` when it must
    /// fail with `PoolExhausted`. Mirrors the real pool exactly, including
    /// the evictions performed *before* a failed admission.
    fn fetch(&mut self, page: usize, bytes: u64) -> Result<(), ()> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(f) = self.frames.iter_mut().find(|f| f.page == page) {
            f.pins += 1;
            f.tick = tick;
            self.hits += 1;
            return Ok(());
        }
        while self.resident() + bytes > POOL_BUDGET {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.tick)
                .map(|(i, _)| i);
            let Some(i) = victim else { break };
            self.frames.remove(i);
            self.evictions += 1;
        }
        if self.resident() + bytes > POOL_BUDGET {
            return Err(());
        }
        self.misses += 1;
        self.frames.push(ModelFrame {
            page,
            bytes,
            tick,
            pins: 1,
        });
        Ok(())
    }

    fn unpin(&mut self, page: usize) {
        let f = self
            .frames
            .iter_mut()
            .find(|f| f.page == page)
            .expect("unpinning a page the model does not hold");
        f.pins = f.pins.saturating_sub(1);
    }

    fn clear(&mut self) {
        self.frames.retain(|f| f.pins > 0);
    }
}

/// Expected rows of page `page_no`: pages partition the shadow row list in
/// page order, so the slice is found by summing earlier pages' row counts.
fn expected_page_rows<'a>(table: &PagedTable, shadow: &'a [Row], page_no: usize) -> &'a [Row] {
    let metas = table.page_metas();
    let start: usize = metas[..page_no].iter().map(|m| m.rows as usize).sum();
    let len = metas[page_no].rows as usize;
    &shadow[start..start + len]
}

fn fresh_store() -> (CaseDir, Arc<PagedStore>, Arc<PagedTable>, Vec<Row>) {
    let dir = CaseDir::new("model");
    let (store, boot) = PagedStore::open(dir.path()).unwrap();
    assert!(!boot.recovered_anything());
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    // Keys deliberately out of order: create_table must cluster them.
    let rel = Relation::from_rows(
        schema,
        (0..120i64)
            .map(|i| Row::new(vec![Value::Int((i * 7) % 40), Value::Int(i)]))
            .collect(),
    );
    let table = store.create_table("T", &rel, "k", PAGE_BYTES).unwrap();
    // Shadow of the on-disk row order: stable sort by the clustered key,
    // then every ingested batch in arrival order.
    let mut shadow: Vec<Row> = rel.rows().to_vec();
    shadow.sort_by_key(|r| match r[0] {
        Value::Int(k) => k,
        _ => unreachable!("key column is Int"),
    });
    (dir, store, table, shadow)
}

/// Cross-check every externally observable pool fact against the model.
fn check_pool(
    pool: &Arc<BufferPool>,
    table: &PagedTable,
    model: &ModelPool,
    step: usize,
) -> Result<(), TestCaseError> {
    prop_assert!(
        pool.resident_bytes() <= POOL_BUDGET,
        "step {step}: residency above budget"
    );
    prop_assert_eq!(pool.resident_bytes(), model.resident(), "step {}", step);
    prop_assert_eq!(pool.resident_frames(), model.frames.len(), "step {}", step);
    prop_assert_eq!(pool.hits(), model.hits, "step {}", step);
    prop_assert_eq!(pool.misses(), model.misses, "step {}", step);
    prop_assert_eq!(pool.evictions(), model.evictions, "step {}", step);
    for f in &model.frames {
        prop_assert!(
            pool.is_resident(table, f.page),
            "step {step}: page {} should be resident",
            f.page
        );
        prop_assert_eq!(
            pool.pin_count(table, f.page),
            Some(f.pins),
            "step {} page {}",
            step,
            f.page
        );
        if f.pins > 0 {
            // The headline invariant: a pinned frame survives any amount of
            // eviction pressure and any drain.
            prop_assert!(pool.is_resident(table, f.page), "pinned page evicted");
        }
    }
    prop_assert_eq!(
        pool.pinned_total(),
        model.frames.iter().map(|f| f.pins as u64).sum::<u64>(),
        "step {}",
        step
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random pin/unpin/ingest/drain schedules under a starved budget: the
    /// real pool agrees with the shadow model at every step, every pinned
    /// payload matches the shadow table bytes, and the only error the pool
    /// ever surfaces is `PoolExhausted`.
    #[test]
    fn pool_matches_the_shadow_model_under_torture(
        ops in proptest::collection::vec(op_strategy(), 1..160),
    ) {
        let (_dir, store, table, mut shadow) = fresh_store();
        let pool = BufferPool::new(POOL_BUDGET);
        let mut model = ModelPool::default();
        let mut held: Vec<(usize, PinnedPage)> = Vec::new();
        let mut next_val = 1_000i64;
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Pin(seed) => {
                    if held.len() >= MAX_HELD {
                        continue;
                    }
                    let page_no = seed as usize % table.page_count();
                    let bytes = table.page_meta(page_no).unwrap().len as u64;
                    let want = model.fetch(page_no, bytes);
                    match pool.fetch(&table, page_no, None) {
                        Ok(pin) => {
                            prop_assert!(want.is_ok(), "step {}: model predicted exhaustion", step);
                            // Checksums were verified on the miss path; the
                            // decoded payload must be the shadow slice.
                            prop_assert_eq!(
                                &*pin,
                                expected_page_rows(&table, &shadow, page_no),
                                "step {} page {}", step, page_no
                            );
                            held.push((page_no, pin));
                        }
                        Err(StorageError::PoolExhausted { needed, available, capacity }) => {
                            prop_assert!(want.is_err(), "step {}: model predicted admission", step);
                            prop_assert_eq!(needed, bytes);
                            prop_assert_eq!(capacity, POOL_BUDGET);
                            prop_assert!(available < needed);
                        }
                        Err(other) => {
                            return Err(TestCaseError::Fail(format!(
                                "step {step}: only PoolExhausted is admissible, got {other}"
                            )));
                        }
                    }
                }
                Op::Unpin(seed) => {
                    if held.is_empty() {
                        continue;
                    }
                    let idx = seed as usize % held.len();
                    let (page_no, pin) = held.swap_remove(idx);
                    drop(pin);
                    model.unpin(page_no);
                }
                Op::Ingest(seed) => {
                    let n = 1 + seed as usize % 17;
                    let rows: Vec<Row> = (0..n)
                        .map(|_| {
                            next_val += 1;
                            Row::new(vec![Value::Int(next_val % 40), Value::Int(next_val)])
                        })
                        .collect();
                    // `append` reports sealed *pages*; at least one per batch.
                    let pages_appended = store.append("T", &rows).unwrap();
                    prop_assert!(pages_appended >= 1, "step {}", step);
                    shadow.extend(rows);
                }
                Op::Drain => {
                    pool.clear();
                    model.clear();
                }
            }
            check_pool(&pool, &table, &model, step)?;
        }
        // Nothing was lost or reordered on disk across the whole schedule.
        let all = table.read_all(None).unwrap();
        prop_assert_eq!(all.rows(), &shadow[..]);
        prop_assert_eq!(table.row_count() as usize, shadow.len());
        // Full drain: releasing every pin and clearing empties the pool.
        held.clear();
        pool.clear();
        prop_assert_eq!(pool.resident_bytes(), 0);
        prop_assert_eq!(pool.resident_frames(), 0);
        prop_assert_eq!(pool.pinned_total(), 0);
    }
}

/// A flipped byte anywhere in a page makes its checksum fail: the pool must
/// surface `PageCorrupt` (never wrong rows) and must not admit the frame.
#[test]
fn corrupted_page_is_rejected_not_served() {
    let (dir, _store, table, _shadow) = fresh_store();
    let meta = table.page_meta(1).unwrap();
    let path = dir.path().join("T.pages");
    let mut bytes = std::fs::read(&path).unwrap();
    let victim = meta.offset as usize + meta.len as usize / 2;
    bytes[victim] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let pool = BufferPool::new(POOL_BUDGET);
    let err = pool.fetch(&table, 1, None);
    assert!(
        matches!(err, Err(StorageError::PageCorrupt { .. })),
        "expected PageCorrupt, got {err:?}"
    );
    assert!(!pool.is_resident(&table, 1), "corrupt frame admitted");
    assert_eq!(pool.resident_bytes(), 0);
    // Undamaged pages on the same table still verify and serve.
    let ok = pool.fetch(&table, 0, None).unwrap();
    assert!(!ok.is_empty());
}
