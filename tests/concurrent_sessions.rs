//! Concurrent multi-session stress tests for the query service.
//!
//! The acceptance bar from the server issue: ≥ 8 concurrent sessions over
//! ONE shared `Arc<EngineConfig>`, running a mix of light and heavy (E1/E8-
//! shaped and cube) prepared statements with random mid-flight cancels,
//! where
//!
//! * every successful result is **bit-identical** to the same statement
//!   executed serially, single-user (floats compared by `to_bits`);
//! * every failure is one of the typed governor outcomes — `cancelled`,
//!   `deadline_exceeded`, `pool_exhausted`, `queue_full` — never a panic
//!   or a stringly error;
//! * the global memory pool drains back to exactly zero bytes;
//! * no spill files are left behind;
//! * per-query `ScanStats` never bleed between sessions (the PR-1→PR-5
//!   context carried one shared stats object; this is the regression test
//!   that keeps counters strictly per-query).

use mdj_core::EngineConfig;
use mdj_server::{ExecOptions, QueryService, ServiceConfig};
use mdj_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: usize = 8;
const ITERS_PER_SESSION: usize = 6;

/// The mixed workload: a cheap selective probe, an E1/E8-shaped grouping-
/// variable query (the heavy MD-join path), and a cube. All prepared once
/// per session and re-bound per execution.
const STATEMENTS: [&str; 3] = [
    "select cust, sum(sale) from Sales where month = ? group by cust",
    "select cust, count(Z.*) as big, avg(Z.sale) as a from Sales \
     group by cust ; Z such that Z.cust = cust and Z.sale > ?",
    "select prod, month, sum(sale) from Sales analyze by cube(prod, month)",
];

/// Parameter pools per statement (empty = no placeholders).
fn param_choices(stmt: usize) -> Vec<Vec<Value>> {
    match stmt {
        0 => (1..=6).map(|m| vec![Value::Int(m)]).collect(),
        1 => [100.0, 400.0, 700.0, 900.0]
            .iter()
            .map(|t| vec![Value::Float(*t)])
            .collect(),
        _ => vec![vec![]],
    }
}

/// Identical budget in the serial baseline and the concurrent run, so the
/// coverage-costed planner makes the same choice and results stay
/// bit-identical.
const QUERY_BUDGET: usize = 4 << 20;

fn shared_engine(spill_dir: &Path) -> Arc<EngineConfig> {
    let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(6_000));
    EngineConfig::new()
        .register_table("Sales", sales)
        .with_spill_dir(spill_dir)
        .build()
}

/// Canonical, bitwise-faithful key for a result set: rows rendered with
/// `f64::to_bits` for floats, then sorted (executors do not promise a row
/// order, only a multiset).
fn canonical(rows: &[Vec<Value>]) -> Vec<String> {
    let mut keys: Vec<String> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Null => "N".to_string(),
                    Value::All => "A".to_string(),
                    Value::Int(i) => format!("i{i}"),
                    Value::Float(f) => format!("f{:016x}", f.to_bits()),
                    Value::Str(s) => format!("s{s}"),
                    Value::Bool(b) => format!("b{b}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    keys.sort();
    keys
}

struct Baseline {
    /// (statement index, param index) → canonical rows + per-query counters.
    results: BTreeMap<(usize, usize), (Vec<String>, u64, u64)>,
}

/// Run every (statement, params) combination serially, single-user, over
/// the same engine config the stress threads will share.
fn serial_baseline(engine: &Arc<EngineConfig>) -> Baseline {
    let svc = QueryService::new(
        engine.clone(),
        ServiceConfig {
            pool_bytes: 1 << 30,
            default_deadline: None,
            ..ServiceConfig::default()
        },
    );
    let sid = svc.open_session();
    let mut results = BTreeMap::new();
    for (si, sql) in STATEMENTS.iter().enumerate() {
        let (stmt, _) = svc.prepare(sid, sql).unwrap();
        for (pi, params) in param_choices(si).iter().enumerate() {
            let out = svc
                .execute(
                    sid,
                    stmt,
                    params,
                    ExecOptions {
                        budget: Some(QUERY_BUDGET),
                        ..ExecOptions::default()
                    },
                )
                .unwrap();
            results.insert(
                (si, pi),
                (
                    canonical(&out.rows),
                    out.stats.tuples_scanned,
                    out.stats.updates,
                ),
            );
        }
    }
    assert_eq!(svc.pool().reserved(), 0);
    Baseline { results }
}

fn temp_spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdj_conc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn eight_sessions_mixed_workload_with_random_cancels() {
    let spill_dir = temp_spill_dir("stress");
    let engine = shared_engine(&spill_dir);
    let baseline = serial_baseline(&engine);

    // A pool deliberately smaller than SESSIONS × QUERY_BUDGET so admission
    // control actually has to queue and shed under full concurrency.
    let svc = QueryService::new(
        engine.clone(),
        ServiceConfig {
            pool_bytes: 5 * QUERY_BUDGET,
            default_budget: QUERY_BUDGET,
            max_waiters: 2,
            admission_wait: Duration::from_millis(40),
            default_deadline: Some(Duration::from_secs(30)),
        },
    );

    let mut ok = 0usize;
    let mut cancelled = 0usize;
    let mut deadline = 0usize;
    let mut shed = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|t| {
                let svc = &svc;
                let baseline = &baseline;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE + t as u64);
                    let sid = svc.open_session();
                    let stmts: Vec<u64> = STATEMENTS
                        .iter()
                        .map(|sql| svc.prepare(sid, sql).unwrap().0)
                        .collect();
                    let mut tally = (0usize, 0usize, 0usize, 0usize);
                    for iter in 0..ITERS_PER_SESSION {
                        let si = rng.gen_range(0..STATEMENTS.len());
                        let choices = param_choices(si);
                        let pi = rng.gen_range(0..choices.len());
                        // A third of the iterations race a cancel against
                        // the query from a sibling thread.
                        let tag = format!("s{t}i{iter}");
                        let with_cancel = rng.gen_bool(1.0 / 3.0);
                        let cancel_handle = with_cancel.then(|| {
                            let delay = Duration::from_micros(rng.gen_range(50..8_000));
                            let tag = tag.clone();
                            scope.spawn(move || {
                                std::thread::sleep(delay);
                                let _ = svc.cancel(sid, &tag);
                            })
                        });
                        let result = svc.execute(
                            sid,
                            stmts[si],
                            &choices[pi],
                            ExecOptions {
                                budget: Some(QUERY_BUDGET),
                                tag: Some(tag),
                                ..ExecOptions::default()
                            },
                        );
                        if let Some(h) = cancel_handle {
                            h.join().unwrap();
                        }
                        match result {
                            Ok(out) => {
                                let (want_rows, _, _) = &baseline.results[&(si, pi)];
                                assert_eq!(
                                    &canonical(&out.rows),
                                    want_rows,
                                    "session {t} stmt {si} param {pi}: result diverged from serial"
                                );
                                tally.0 += 1;
                            }
                            Err(e) => match e.code() {
                                "cancelled" => tally.1 += 1,
                                "deadline_exceeded" => tally.2 += 1,
                                "pool_exhausted" | "queue_full" => tally.3 += 1,
                                other => panic!("untyped outcome `{other}`: {e}"),
                            },
                        }
                    }
                    svc.close_session(sid).unwrap();
                    tally
                })
            })
            .collect();
        for h in handles {
            let (o, c, d, s) = h.join().expect("stress thread panicked");
            ok += o;
            cancelled += c;
            deadline += d;
            shed += s;
        }
    });

    let total = SESSIONS * ITERS_PER_SESSION;
    assert_eq!(ok + cancelled + deadline + shed, total);
    // Under a pool of 5 budgets across 8 sessions the workload cannot be
    // all-shed, and verification needs real completions.
    assert!(
        ok > 0,
        "no query completed ({cancelled} cancelled, {shed} shed)"
    );

    // Pool balance: every reservation returned, nobody still waiting.
    assert_eq!(svc.pool().reserved(), 0, "pool leaked bytes");
    assert_eq!(svc.pool().waiters(), 0, "pool leaked waiters");
    assert_eq!(svc.session_count(), 0);

    // No leaked spill files.
    let leftover: Vec<_> = std::fs::read_dir(&spill_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(leftover.is_empty(), "leaked spill files: {leftover:?}");
    let _ = std::fs::remove_dir_all(&spill_dir);
}

/// Satellite regression test: `ScanStats` are strictly per-query. Eight
/// sessions run the *same* statement concurrently; each must observe
/// exactly the serial counter values — a shared stats object would show
/// (roughly) summed counters instead.
#[test]
fn scan_stats_never_bleed_across_concurrent_sessions() {
    let spill_dir = temp_spill_dir("stats");
    let engine = shared_engine(&spill_dir);
    let baseline = serial_baseline(&engine);
    let (_, want_scanned, want_updates) = baseline.results[&(1, 2)].clone();

    let svc = QueryService::new(
        engine,
        ServiceConfig {
            pool_bytes: 1 << 30,
            default_deadline: None,
            ..ServiceConfig::default()
        },
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|_| {
                let svc = &svc;
                scope.spawn(move || {
                    let sid = svc.open_session();
                    let (stmt, _) = svc.prepare(sid, STATEMENTS[1]).unwrap();
                    let out = svc
                        .execute(
                            sid,
                            stmt,
                            &param_choices(1)[2],
                            ExecOptions {
                                budget: Some(QUERY_BUDGET),
                                ..ExecOptions::default()
                            },
                        )
                        .unwrap();
                    svc.close_session(sid).unwrap();
                    (out.stats.tuples_scanned, out.stats.updates)
                })
            })
            .collect();
        for h in handles {
            let (scanned, updates) = h.join().unwrap();
            assert_eq!(scanned, want_scanned, "tuples_scanned bled across queries");
            assert_eq!(updates, want_updates, "updates bled across queries");
        }
    });
    assert_eq!(svc.pool().reserved(), 0);
    let _ = std::fs::remove_dir_all(&spill_dir);
}

/// A long cube query is cancelled mid-flight from another thread; the
/// outcome must be the typed `cancelled` error, the pool must drain, and
/// the session must stay usable afterwards.
#[test]
fn mid_flight_cancel_yields_typed_outcome_and_drains_pool() {
    let spill_dir = temp_spill_dir("cancel");
    let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(30_000));
    let engine = EngineConfig::new()
        .register_table("Sales", sales)
        .with_spill_dir(spill_dir.clone())
        .build();
    let svc = QueryService::new(
        engine,
        ServiceConfig {
            default_deadline: None,
            ..ServiceConfig::default()
        },
    );
    let sid = svc.open_session();
    std::thread::scope(|scope| {
        let svc = &svc;
        let canceller = scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            svc.cancel(sid, "slow").unwrap()
        });
        let err = svc
            .query(
                sid,
                "select cust, prod, month, sum(sale) from Sales analyze by cube(cust, prod, month)",
                ExecOptions {
                    tag: Some("slow".into()),
                    ..ExecOptions::default()
                },
            )
            .unwrap_err();
        assert_eq!(err.code(), "cancelled", "{err}");
        assert!(
            canceller.join().unwrap(),
            "cancel should find the running query"
        );
    });
    assert_eq!(svc.pool().reserved(), 0);

    // The session survives a cancelled query.
    let out = svc
        .query(sid, "select count(*) from Sales", ExecOptions::default())
        .unwrap();
    assert_eq!(out.rows.len(), 1);

    // An immediate deadline is the other typed latency outcome.
    let err = svc
        .query(
            sid,
            "select cust, sum(sale) from Sales group by cust",
            ExecOptions {
                deadline: Some(Duration::ZERO),
                ..ExecOptions::default()
            },
        )
        .unwrap_err();
    assert_eq!(err.code(), "deadline_exceeded", "{err}");
    assert_eq!(svc.pool().reserved(), 0);
    let _ = std::fs::remove_dir_all(&spill_dir);
}
