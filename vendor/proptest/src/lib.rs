//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use, as a deterministic *sample-based* runner: each test gets an RNG
//! seeded from its fully-qualified name, draws `cases` samples from its
//! strategies, and fails with the assertion message on the first
//! counterexample. There is no shrinking — failures reproduce exactly on
//! re-run because the seed is a pure function of the test name.
//!
//! Covered surface: `Strategy` (`prop_map`, `boxed`), `BoxedStrategy`,
//! `Just`, `any`, integer range strategies, tuple strategies (arity ≤ 6),
//! `&str` regex-subset strategies (`[class]{lo,hi}` atoms),
//! `collection::{vec, btree_set}`, `num::f64::NORMAL`, the `proptest!` /
//! `prop_oneof!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros, and `ProptestConfig::with_cases`.

pub mod test_runner {
    /// How a single generated case ended, mirroring proptest's type.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// An assertion failed with this message.
        Fail(String),
    }

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test's name, so every
    /// run of a given test sees the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test's fully qualified name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, so heterogeneous strategies can be boxed.
    trait DynStrategy<T> {
        fn dyn_sample(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.dyn_sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Full-domain generation for `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias ~1/8 of draws toward boundary values, where bugs
                    // cluster; otherwise uniform over the full domain.
                    if rng.below(8) == 0 {
                        const EDGES: [i64; 5] = [0, 1, -1, i64::MIN, i64::MAX];
                        EDGES[rng.below(5) as usize] as $t
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// `&str` patterns act as regex strategies in proptest. The stand-in
    /// supports the subset the tests use: a sequence of atoms, where an atom
    /// is a literal character or a `[...]` class (with `a-z` ranges and
    /// `\n`/`\t`/`\\`/`\-`/`\]` escapes), optionally followed by `{n}`,
    /// `{lo,hi}`, `?`, `*`, or `+`.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let span = atom.max - atom.min + 1;
                let n = atom.min + rng.below(span as u64) as usize;
                for _ in 0..n {
                    out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    struct PatternAtom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
        let mut atoms: Vec<PatternAtom> = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            match c {
                '[' => {
                    let mut chars = Vec::new();
                    loop {
                        let c = it
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match c {
                            ']' => break,
                            '\\' => chars.push(unescape(it.next().unwrap_or('\\'))),
                            _ => {
                                if it.peek() == Some(&'-') {
                                    it.next();
                                    match it.peek() {
                                        Some(']') | None => {
                                            chars.push(c);
                                            chars.push('-');
                                        }
                                        Some(_) => {
                                            let hi = it.next().unwrap();
                                            for v in c as u32..=hi as u32 {
                                                if let Some(ch) = char::from_u32(v) {
                                                    chars.push(ch);
                                                }
                                            }
                                        }
                                    }
                                } else {
                                    chars.push(c);
                                }
                            }
                        }
                    }
                    assert!(!chars.is_empty(), "empty class in {pattern:?}");
                    atoms.push(PatternAtom {
                        chars,
                        min: 1,
                        max: 1,
                    });
                }
                '{' => {
                    let atom = atoms
                        .last_mut()
                        .unwrap_or_else(|| panic!("dangling repetition in {pattern:?}"));
                    let mut spec = String::new();
                    for c in it.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                        None => {
                            let n = spec.trim().parse().unwrap();
                            (n, n)
                        }
                    };
                    assert!(lo <= hi, "bad repetition in {pattern:?}");
                    atom.min = lo;
                    atom.max = hi;
                }
                '?' | '*' | '+' => {
                    let atom = atoms
                        .last_mut()
                        .unwrap_or_else(|| panic!("dangling repetition in {pattern:?}"));
                    let (lo, hi) = match c {
                        '?' => (0, 1),
                        '*' => (0, 8),
                        _ => (1, 8),
                    };
                    atom.min = lo;
                    atom.max = hi;
                }
                '\\' => {
                    let e = it.next().unwrap_or('\\');
                    atoms.push(PatternAtom {
                        chars: vec![unescape(e)],
                        min: 1,
                        max: 1,
                    });
                }
                _ => atoms.push(PatternAtom {
                    chars: vec![c],
                    min: 1,
                    max: 1,
                }),
            }
        }
        atoms
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below target; retry a bounded number
            // of times so small element domains cannot loop forever.
            let mut attempts = 10 * target + 16;
            while out.len() < target && attempts > 0 {
                out.insert(self.element.sample(rng));
                attempts -= 1;
            }
            out
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over all *normal* `f64` values (no zero, subnormals,
        /// infinities, or NaN), mirroring `proptest::num::f64::NORMAL`.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> f64 {
                let sign = rng.next_u64() & (1 << 63);
                // Normal floats have a biased exponent in [1, 2046].
                let exponent = 1 + rng.below(2046);
                let mantissa = rng.next_u64() & ((1 << 52) - 1);
                f64::from_bits(sign | (exponent << 52) | mantissa)
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(param in strategy, ...) { body }`
/// becomes a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($param:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $param =
                        $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        __message,
                    )) => {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __message
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((0..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = TestRng::from_name("weights");
        let s = prop_oneof![3 => Just(1u32), 1 => Just(2u32)];
        let ones = (0..1000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!((600..900).contains(&ones), "got {ones} ones");
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::from_name("pattern");
        let s = "[a-c0-1 ,\"'\n]{0,12}";
        for _ in 0..300 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v.chars().count() <= 12);
            assert!(v
                .chars()
                .all(|c| matches!(c, 'a'..='c' | '0'..='1' | ' ' | ',' | '"' | '\'' | '\n')));
        }
    }

    #[test]
    fn normal_floats_are_normal() {
        let mut rng = TestRng::from_name("normal");
        for _ in 0..1000 {
            let v = Strategy::sample(&crate::num::f64::NORMAL, &mut rng);
            assert!(v.is_normal(), "{v} not normal");
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::from_name("collections");
        let vs = crate::collection::vec(0i64..5, 2..4);
        let ss = crate::collection::btree_set(0i64..100, 3..=3);
        for _ in 0..100 {
            let v = vs.sample(&mut rng);
            assert!((2..4).contains(&v.len()));
            let s = ss.sample(&mut rng);
            assert!(s.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0i64..50, b in 0i64..50) {
            prop_assume!(a != 49);
            prop_assert!(a + b >= a, "sum {} shrank", a + b);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
