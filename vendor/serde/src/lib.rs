//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors a minimal shim: the `Serialize`/`Deserialize` traits
//! exist as markers and the derives expand to nothing. None of the workspace
//! crates actually serialize at runtime today — the derives only reserve the
//! capability — so a no-op implementation preserves the API surface without
//! pulling in the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
