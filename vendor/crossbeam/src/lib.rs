//! Offline stand-in for `crossbeam` 0.8.
//!
//! Two modules are provided, matching what the workspace uses:
//!
//! - [`thread`]: the `crossbeam::thread::scope` API, implemented on top of
//!   `std::thread::scope` (stable since 1.63). The crossbeam signatures are
//!   preserved — `scope` returns a `Result`, and spawned closures receive a
//!   `&Scope` so workers can spawn siblings.
//! - [`deque`]: `Worker` / `Stealer` / `Injector` work-stealing queues. The
//!   stand-in backs them with a `Mutex<VecDeque>` instead of a lock-free
//!   Chase-Lev deque; morsels are coarse (thousands of rows), so queue
//!   operations are nowhere near the contention point.

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`, wrapping the std scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. As in crossbeam, the closure receives the scope
        /// again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Mirror of `crossbeam::thread::scope`.
    ///
    /// std's scoped threads re-raise panics from un-joined workers instead of
    /// collecting them, so the error arm is never constructed here; callers
    /// that `.expect()` the result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// A worker-owned queue; the owner pops from the front, thieves steal
    /// from the back (FIFO flavor, like `Worker::new_fifo`).
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Handle other workers use to steal from a [`Worker`].
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_back() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    /// A shared FIFO injector queue, mirroring `crossbeam_deque::Injector`.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawns_and_joins() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn deque_steals_from_back() {
        use super::deque::{Steal, Worker};
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::<i32>::Empty);
    }

    #[test]
    fn injector_is_fifo_across_threads() {
        use super::deque::{Injector, Steal};
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let sum: i32 = super::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local = 0;
                        while let Steal::Success(v) = inj.steal() {
                            local += v;
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, (0..100).sum::<i32>());
    }
}
