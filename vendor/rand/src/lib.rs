//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface the workspace uses: a deterministic seeded
//! generator (`rngs::StdRng` + `SeedableRng::seed_from_u64`) and the `Rng`
//! extension methods `gen`, `gen_range`, and `gen_bool` over the integer /
//! float ranges the data generators need. The engine is SplitMix64 — not
//! cryptographic, but statistically fine for synthetic benchmark data and
//! fully reproducible from a `u64` seed.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from their full domain via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, as the real crate does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a `u64` uniformly from `[0, n)` (n > 0) without modulo bias worth
/// worrying about at benchmark scales (Lemire-style multiply-shift).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(i64, u64, usize, i32, u32, i16, u16, i8, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Extension methods over any `RngCore`, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(1..=20i64);
            assert!((1..=20).contains(&v));
            let u = rng.gen_range(0..13usize);
            assert!(u < 13);
            let f = rng.gen_range(1.0f64..1000.0);
            assert!((1.0..1000.0).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn bounded_draws_hit_all_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
