//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the subset of the API the bench suite uses — `benchmark_group`,
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!` / `criterion_main!`
//! — backed by a plain wall-clock sampler: warm up, then time individual
//! calls of the closure passed to `Bencher::iter` until the sample budget or
//! the measurement window runs out, and print min/median/mean per benchmark.
//!
//! `--test` on the command line (criterion's "test mode", used by CI smoke
//! runs) executes every benchmark closure exactly once without timing.
//! A positional argument acts as a substring filter on benchmark names.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to every bench function.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags criterion accepts that the stand-in can ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.to_string(), f);
        self
    }
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.qualify(id.into_benchmark_id());
        if self.skipped(&label) {
            return self;
        }
        let mut bencher = self.make_bencher();
        f(&mut bencher);
        report(&label, &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = self.qualify(id.into_benchmark_id());
        if self.skipped(&label) {
            return self;
        }
        let mut bencher = self.make_bencher();
        f(&mut bencher, input);
        report(&label, &bencher);
        self
    }

    pub fn finish(self) {}

    fn qualify(&self, id: BenchmarkId) -> String {
        if self.name.is_empty() {
            id.full
        } else {
            format!("{}/{}", self.name, id.full)
        }
    }

    fn skipped(&self, label: &str) -> bool {
        match &self.criterion.filter {
            Some(f) => !label.contains(f.as_str()),
            None => false,
        }
    }

    fn make_bencher(&self) -> Bencher {
        Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        }
    }
}

/// Accept both `&str`/`String` names and full `BenchmarkId`s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: run untimed until the warm-up window elapses.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: one sample per call, bounded by both the sample count
        // and the measurement window (always at least one sample).
        let window = Instant::now();
        while self.samples.len() < self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if window.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(label: &str, bencher: &Bencher) {
    if bencher.test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    if sorted.is_empty() {
        println!("{label}: no samples");
        return;
    }
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{label}: min {:.3?}  median {:.3?}  mean {:.3?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
