//! No-op `Serialize`/`Deserialize` derives for the vendored serde shim.
//!
//! The derives accept the usual `#[serde(...)]` helper attribute (so existing
//! annotations keep compiling) and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
